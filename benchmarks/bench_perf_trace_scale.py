"""Perf bench: columnar trace storage + cached metric pipeline at scale.

Two claims are measured and asserted:

1. **Columnar speedup** — ``compute_metrics`` on the structure-of-arrays
   :class:`~repro.core.records.TraceCollection` is >= 5x faster than the
   seed's list-of-dataclass implementation (reproduced verbatim below as
   :class:`SeedTraceCollection`) on a 10^6-record synthetic trace.  The
   memoised pipeline widens the gap further when several metrics of the
   same trace are requested (``bps``/``iops``/``bandwidth`` +
   ``compute_metrics`` share one union sweep).

2. **Parallel sweep equivalence** — ``run_sweep(parallel=True)`` returns
   metric sets bit-identical to the serial path for the same seeds.

Set ``REPRO_BENCH_SMOKE=1`` to run at reduced scale (CI smoke: the
speedup assertion relaxes to >= 2x at 10^5 records; the equivalence
assertion is always exact).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.metrics import bandwidth, bps, compute_metrics, iops
from repro.core.records import IORecord, TraceCollection
from repro.experiments.runner import ExperimentScale, SweepSpec, run_sweep
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.util.tables import TextTable

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: Trace sizes measured (records).  Full mode carries the acceptance
#: scale of 10^6; smoke mode stays fast enough for CI.
SCALES = (10**4, 10**5) if SMOKE else (10**5, 10**6)
#: Required compute_metrics speedup at the largest scale.
REQUIRED_SPEEDUP = 2.0 if SMOKE else 5.0


# -- the seed implementation, reproduced for an honest baseline -----------

class SeedTraceCollection:
    """The pre-columnar TraceCollection: a list of records, Python loops.

    Method bodies are copied from the seed so the baseline is the real
    shipped implementation, not a strawman.
    """

    def __init__(self, records=()):
        self._records = list(records)

    def __len__(self):
        return len(self._records)

    def filter(self, predicate):
        return SeedTraceCollection(
            r for r in self._records if predicate(r))

    def app_records(self):
        return self.filter(lambda r: r.layer == "app")

    def total_bytes(self):
        return sum(r.nbytes for r in self._records)

    def total_blocks(self, block_size=512):
        return sum(r.blocks(block_size) for r in self._records)

    def intervals(self):
        if not self._records:
            return np.empty((0, 2), dtype=float)
        out = np.empty((len(self._records), 2), dtype=float)
        for i, r in enumerate(self._records):
            out[i, 0] = r.start
            out[i, 1] = r.end
        return out

    def response_times(self):
        return np.array([r.duration for r in self._records], dtype=float)


def seed_union_io_time(trace):
    from repro.core.intervals import union_time
    return union_time(trace.intervals())


def seed_compute_metrics(trace, *, exec_time, fs_bytes, block_size=512):
    """The seed compute_metrics: one union sweep, loop-based aggregates."""
    app = trace.app_records()
    t = seed_union_io_time(app)
    app_bytes = app.total_bytes()
    return {
        "iops": len(app) / t,
        "bandwidth": fs_bytes / t,
        "arpt": float(app.response_times().mean()),
        "bps": app.total_blocks(block_size) / t,
        "union_io_time": t,
        "app_blocks": app.total_blocks(block_size),
        "app_bytes": app_bytes,
    }


def seed_four_metrics(trace, *, fs_bytes):
    """bps + iops + bandwidth + compute_metrics, seed style: each
    standalone call redoes the app filter and the union sweep."""
    app1 = trace.app_records()
    b = app1.total_blocks(512) / seed_union_io_time(app1)
    app2 = trace.app_records()
    i = len(app2) / seed_union_io_time(app2)
    app3 = trace.app_records()
    w = fs_bytes / seed_union_io_time(app3)
    m = seed_compute_metrics(trace, exec_time=1.0, fs_bytes=fs_bytes)
    return b, i, w, m


# -- synthetic trace ------------------------------------------------------

def synthesize_columns(n, *, processes=32, seed=20130520):
    """Overlapping read/write intervals for ``n`` records, vectorised."""
    rng = np.random.default_rng(seed)
    pid = rng.integers(0, processes, size=n)
    nbytes = rng.integers(0, 1 * MiB, size=n)
    start = np.sort(rng.uniform(0.0, n / 200.0, size=n))
    duration = rng.exponential(0.02, size=n)
    # A sprinkle of zero-length intervals keeps the edge case hot.
    duration[rng.random(n) < 0.01] = 0.0
    end = start + duration
    op = np.where(rng.random(n) < 0.7, "read", "write")
    return pid, nbytes, start, end, op


def build_columnar(cols):
    pid, nbytes, start, end, op = cols
    return TraceCollection.from_arrays(
        pid=pid, nbytes=nbytes, start=start, end=end, op=op)


def build_seed(cols):
    pid, nbytes, start, end, op = cols
    return SeedTraceCollection(
        IORecord(pid=int(p), op=str(o), nbytes=int(b),
                 start=float(s), end=float(e))
        for p, o, b, s, e in zip(pid, op, nbytes, start, end))


def best_of(runs, fn):
    timings = []
    for _ in range(runs):
        t0 = time.perf_counter()
        result = fn()
        timings.append(time.perf_counter() - t0)
    return min(timings), result


# -- benches --------------------------------------------------------------

def test_columnar_compute_metrics_speedup(artifact, artifact_json):
    table = TextTable(["records", "seed compute_metrics (s)",
                       "columnar compute_metrics (s)", "speedup",
                       "seed 4 metrics (s)", "columnar 4 metrics (s)",
                       "speedup (memoised)"])
    headline_speedup = None
    scales_out = []
    for n in SCALES:
        cols = synthesize_columns(n)
        seed_trace = build_seed(cols)
        fs_bytes = int(cols[1].sum())

        runs = 3 if n <= 10**5 else 2
        seed_time, seed_result = best_of(
            runs, lambda: seed_compute_metrics(
                seed_trace, exec_time=1.0, fs_bytes=fs_bytes))

        # Fresh collection per timing so memoisation can't flatter the
        # single-call comparison; array ingest itself is inside the
        # timed region.
        def columnar_once():
            trace = build_columnar(cols)
            return compute_metrics(trace, exec_time=1.0,
                                   fs_bytes=fs_bytes)
        col_time, col_result = best_of(runs, columnar_once)

        # Same numbers out of both pipelines.
        assert col_result.bps == _approx(seed_result["bps"])
        assert col_result.iops == _approx(seed_result["iops"])
        assert col_result.union_io_time == _approx(
            seed_result["union_io_time"])
        assert col_result.app_blocks == seed_result["app_blocks"]

        seed4_time, _ = best_of(
            runs, lambda: seed_four_metrics(seed_trace, fs_bytes=fs_bytes))

        def columnar_four():
            trace = build_columnar(cols)
            return (bps(trace), iops(trace),
                    bandwidth(trace, fs_bytes=fs_bytes),
                    compute_metrics(trace, exec_time=1.0,
                                    fs_bytes=fs_bytes))
        col4_time, _ = best_of(runs, columnar_four)

        speedup = seed_time / col_time
        speedup4 = seed4_time / col4_time
        headline_speedup = speedup
        scales_out.append({
            "records": n, "seed_s": seed_time, "columnar_s": col_time,
            "speedup": speedup, "seed4_s": seed4_time,
            "columnar4_s": col4_time, "speedup_memoised": speedup4,
        })
        table.add_row([f"{n:.0e}", f"{seed_time:.4f}", f"{col_time:.4f}",
                       f"{speedup:.1f}x", f"{seed4_time:.4f}",
                       f"{col4_time:.4f}", f"{speedup4:.1f}x"])

    mode = "smoke" if SMOKE else "full"
    text = (f"columnar metric pipeline vs seed list-of-dataclass "
            f"({mode} mode)\n" + table.render())
    artifact("perf_trace_scale", text)
    artifact_json("perf_trace_scale", {
        "bench": "columnar_compute_metrics_speedup",
        "mode": mode,
        "scales": scales_out,
        "headline": scales_out[-1],
        "floors": {"speedup": REQUIRED_SPEEDUP},
    })
    assert headline_speedup >= REQUIRED_SPEEDUP, (
        f"compute_metrics speedup {headline_speedup:.1f}x at "
        f"{SCALES[-1]:.0e} records is below the required "
        f"{REQUIRED_SPEEDUP}x"
    )


def _approx(value):
    import pytest
    return pytest.approx(value, rel=1e-9)


def _sweep_spec():
    from repro.workloads.iozone import IOzoneWorkload
    config = SystemConfig(kind="local", jitter_sigma=0.1)
    points = []
    for record in (64 * KiB, 128 * KiB, 256 * KiB):
        def make(_record=record):
            return IOzoneWorkload(file_size=1 * MiB, record_size=_record)
        points.append((str(record), make, config))
    return SweepSpec(knob="record", points=points)


def test_parallel_sweep_equivalence(artifact):
    scale = ExperimentScale(repetitions=2 if SMOKE else 3)

    t0 = time.perf_counter()
    serial = run_sweep(_sweep_spec(), scale, parallel=False)
    serial_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_sweep(_sweep_spec(), scale, parallel=True, workers=2)
    parallel_time = time.perf_counter() - t0

    serial_rows = _metric_rows(serial)
    parallel_rows = _metric_rows(parallel)
    assert serial_rows == parallel_rows, \
        "parallel sweep diverged from the serial path"

    table = TextTable(["path", "wall (s)", "points", "reps",
                       "identical metrics"])
    table.add_row(["serial", f"{serial_time:.3f}", "3",
                   str(scale.repetitions), "-"])
    table.add_row(["parallel x2", f"{parallel_time:.3f}", "3",
                   str(scale.repetitions), "yes (exact)"])
    artifact("perf_sweep_parallel",
             "serial vs parallel run_sweep (same seeds)\n" + table.render())


def _metric_rows(sweep):
    return [
        (label,
         m.iops, m.bandwidth, m.arpt, m.bps, m.exec_time,
         m.union_io_time, m.app_ops, m.app_bytes, m.app_blocks, m.fs_bytes)
        for label, reps in sweep._points for m in reps
    ]
