"""Ext. 1 — async queue-depth sweep (extension beyond the paper).

One process, random 4 KiB SSD reads, windowed async submission, queue
depth 1 → 32.  ARPT flips (deeper queues mean longer per-request waits
while the run completes sooner); IOPS/BW/BPS track overall performance.
BPS's union-time rule never asked where the overlap came from, so it
generalises from the paper's multi-process concurrency to asynchronous
single-process concurrency unchanged.
"""

from repro.experiments.set5 import run_set5

from conftest import BENCH_SCALE, run_once


def test_ext1(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set5(BENCH_SCALE))
    table = sweep.correlations()

    for name in ("IOPS", "BW", "BPS"):
        assert table[name].direction_correct, f"{name} flipped"
        assert table[name].normalized > 0.8
    assert not table["ARPT"].direction_correct

    times = sweep.series("exec_time")
    arpts = sweep.series("ARPT")
    assert times[-1] < times[0] / 3     # depth helps a lot
    assert arpts[-1] > 2 * arpts[0]     # ... while ARPT degrades

    artifact("ext1",
             sweep.render_cc_figure(
                 "Ext.1 — CC by metric, async queue-depth sweep")
             + "\n\n" + sweep.render_cc_table()
             + "\n\nextension (not in paper): BPS = "
             + f"{table['BPS'].normalized:+.3f}, "
             + f"ARPT = {table['ARPT'].normalized:+.3f}; exec time "
             + f"x{times[0] / times[-1]:.1f} down while ARPT "
             + f"x{arpts[-1] / arpts[0]:.1f} up")
