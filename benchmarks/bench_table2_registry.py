"""Table 2 — the four I/O access case sets.

Regenerates the experiment registry table and benchmarks one minimal
run of each registered workload family (the registry's claim is that
each row is executable).
"""

from repro.experiments.figures import FIGURES
from repro.middleware.sieving import SievingConfig
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads import HpioWorkload, IORWorkload, IOzoneWorkload

from conftest import run_once


def _one_run_of_each():
    results = []
    results.append(IOzoneWorkload(
        file_size=2 * MiB, record_size=64 * KiB,
    ).run(SystemConfig(kind="local")))
    results.append(IOzoneWorkload(
        file_size=2 * MiB, record_size=64 * KiB, nproc=2,
        mode="throughput", pin_files_to_servers=True,
    ).run(SystemConfig(kind="pfs", n_servers=2)))
    results.append(IORWorkload(
        file_size=2 * MiB, transfer_size=64 * KiB, nproc=2,
    ).run(SystemConfig(kind="pfs", n_servers=2)))
    results.append(HpioWorkload(
        region_count=256, region_size=256, region_spacing=256, nproc=2,
        sieving=SievingConfig(),
    ).run(SystemConfig(kind="pfs", n_servers=2)))
    return results


def test_table2(benchmark, artifact):
    results = run_once(benchmark, _one_run_of_each)
    assert len(results) == 4
    assert all(r.exec_time > 0 for r in results)
    artifact("table2", FIGURES["table2"].produce(None))
