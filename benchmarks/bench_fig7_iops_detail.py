"""Fig. 7 — IOPS vs execution time detail, HDD (Set 2 detail).

The paper's worked numbers: at 4 KB records IOPS is high and the run is
slow; at 64 KB IOPS collapses *and* the run got faster — IOPS points
exactly the wrong way.
"""

from repro.experiments.set2 import run_set2
from repro.util.tables import render_series

from conftest import BENCH_SCALE, run_once


def test_fig7(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set2("hdd", BENCH_SCALE))
    labels = sweep.labels
    iops_series = sweep.series("IOPS")
    time_series = sweep.series("exec_time")

    i4k = labels.index("4.0KiB")
    i64k = labels.index("64.0KiB")
    # Paper: IOPS 5156 -> 732 while time 809.6s -> 358.1s.
    assert iops_series[i64k] < iops_series[i4k] / 2
    assert time_series[i64k] < time_series[i4k]

    ratio_iops = iops_series[i4k] / iops_series[i64k]
    ratio_time = time_series[i4k] / time_series[i64k]
    artifact("fig7",
             render_series("I/O size", labels,
                           {"IOPS": iops_series,
                            "exec_time_s": time_series})
             + f"\n\npaper: 4KB->64KB IOPS shrinks 7.0x while exec time "
             + f"shrinks 2.3x; measured {ratio_iops:.1f}x and "
             + f"{ratio_time:.1f}x")
