"""Perf bench: the ``bps serve`` daemon under concurrent tenant load.

Measures the two service-level figures the daemon advertises
(DESIGN.md §13):

1. **Sustained ingest** — N concurrent TCP tenants streaming JSONL
   records flat-out; the figure is total records/second through decode
   + budget + MetricStream, with every tenant's finalized totals
   asserted exact (ops == records sent).
2. **Scrape latency under load** — GET ``/metrics`` is hammered while
   every tenant streams; the figure is the p50/p99 wall latency of the
   aggregated Prometheus exposition, which must stay bounded while
   ingest saturates a core.

The JSON artifact (``benchmarks/output/perf_serve_load.json``) carries
the measured figures and the floors, and CI's perf-regression gate
re-checks them from there.  Floors are deliberately conservative —
they exist to catch order-of-magnitude regressions (an accidental
per-record fsync, an O(n) scrape), not to race the hardware.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized variant.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import numpy as np

from repro.serve.registry import ServeConfig
from repro.serve.server import BpsServer
from repro.util.tables import TextTable

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

N_STREAMS = 4
RECORDS_PER_STREAM = 5_000 if SMOKE else 10_000
#: Floor on total sustained ingest across all tenants (records/s).
REQUIRED_RPS = 2_000.0 if SMOKE else 4_000.0
#: Floor on scrape latency under full ingest load (seconds).
REQUIRED_SCRAPE_P99 = 2.0


def _record_line(i: int, pid: int) -> bytes:
    return (json.dumps({
        "pid": pid, "op": "read" if i % 2 else "write",
        "nbytes": 4096, "start": i * 0.0005,
        "end": i * 0.0005 + 0.002,
    }) + "\n").encode()


async def _stream_tenant(server, name, n_records):
    host, port = server.addresses["tcp"]
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(json.dumps({"type": "hello", "tenant": name})
                 .encode() + b"\n")
    await writer.drain()
    await reader.readline()  # welcome
    pid = hash(name) % 64
    for i in range(n_records):
        writer.write(_record_line(i, pid))
        if i % 512 == 0:
            await writer.drain()
    writer.write(b'{"type": "end"}\n')
    await writer.drain()
    while True:  # acks precede the result line
        line = await reader.readline()
        obj = json.loads(line)
        if obj["type"] != "ack":
            break
    writer.close()
    return obj


async def _scrape_until(server, stop: asyncio.Event):
    host, port = server.addresses["http"]
    latencies = []
    while not stop.is_set():
        t0 = time.perf_counter()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        latencies.append(time.perf_counter() - t0)
        assert raw.startswith(b"HTTP/1.1 200"), raw[:60]
        await asyncio.sleep(0.02)
    return latencies


async def _scenario():
    server = BpsServer(ServeConfig(window=0.05),
                       tcp="127.0.0.1:0", http="127.0.0.1:0")
    await server.start()
    try:
        stop = asyncio.Event()
        scraper = asyncio.create_task(_scrape_until(server, stop))
        t0 = time.perf_counter()
        results = await asyncio.gather(*(
            _stream_tenant(server, f"bench-{i}", RECORDS_PER_STREAM)
            for i in range(N_STREAMS)))
        elapsed = time.perf_counter() - t0
        stop.set()
        latencies = await scraper
        return results, elapsed, latencies
    finally:
        await server.drain("bench done")


def test_serve_sustained_ingest_and_scrape(artifact, artifact_json):
    results, elapsed, latencies = asyncio.run(
        asyncio.wait_for(_scenario(), 300))

    # Exactness is the point of the daemon; the speed is only
    # interesting because every tenant's totals stay exact under load.
    for result in results:
        assert result["type"] == "result", result
        assert result["final"]["ops"] == RECORDS_PER_STREAM, result

    total = N_STREAMS * RECORDS_PER_STREAM
    rps = total / elapsed
    lat = np.asarray(latencies if latencies else [float("nan")])
    p50 = float(np.percentile(lat, 50))
    p99 = float(np.percentile(lat, 99))

    table = TextTable(["tenants", "records/tenant", "sustained rec/s",
                       "scrapes", "scrape p50", "scrape p99"])
    table.add_row([str(N_STREAMS), f"{RECORDS_PER_STREAM:,}",
                   f"{rps:,.0f}", str(len(latencies)),
                   f"{p50 * 1e3:.1f}ms", f"{p99 * 1e3:.1f}ms"])
    mode = "smoke" if SMOKE else "full"
    artifact("perf_serve_load",
             f"bps serve load ({mode} mode, {N_STREAMS} tenants)\n"
             + table.render())
    artifact_json("perf_serve_load", {
        "bench": "serve_sustained_ingest_and_scrape",
        "mode": mode,
        "tenants": N_STREAMS,
        "records_per_tenant": RECORDS_PER_STREAM,
        "sustained_rps": rps,
        "elapsed_s": elapsed,
        "scrapes": len(latencies),
        "scrape_p50_s": p50,
        "scrape_p99_s": p99,
        "floors": {
            "sustained_rps": REQUIRED_RPS,
            "scrape_p99_s": REQUIRED_SCRAPE_P99,
        },
    })

    assert len(latencies) >= 1, "the scraper never completed a scrape"
    assert rps >= REQUIRED_RPS, (
        f"sustained serve ingest {rps:,.0f} rec/s across {N_STREAMS} "
        f"tenants is below the {REQUIRED_RPS:,.0f} rec/s floor")
    assert p99 <= REQUIRED_SCRAPE_P99, (
        f"scrape p99 {p99:.3f}s under load is above the "
        f"{REQUIRED_SCRAPE_P99}s floor")
