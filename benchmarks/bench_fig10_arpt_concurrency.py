"""Fig. 10 — ARPT vs execution time across concurrency (Set 3a detail).

Paper: execution time collapses 35 s → ~5 s from 1 to 8 processes while
ARPT barely moves (slight rise) — ARPT misses the whole story.
"""

from repro.experiments.set3 import run_set3_pure
from repro.util.tables import render_series

from conftest import BENCH_SCALE, run_once


def test_fig10(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set3_pure(BENCH_SCALE))
    times = sweep.series("exec_time")
    arpts = sweep.series("ARPT")

    # Near-linear scaling: n=8 at least 4x faster than n=1.
    assert times[-1] < times[0] / 4
    # ARPT variation stays small relative to the exec-time collapse.
    assert max(arpts) / min(arpts) < 1.5

    artifact("fig10",
             render_series("concurrency", sweep.labels,
                           {"exec_time_s": times, "ARPT_s": arpts})
             + "\n\npaper: exec time 35s -> ~5s (7x) with near-flat "
             + f"ARPT; measured {times[0] / times[-1]:.1f}x with ARPT "
             + f"spread {max(arpts) / min(arpts):.2f}x")
