"""Fig. 6 — CC bars across I/O sizes on SSD (Set 2).

Same sweep as Fig. 5 on the PCI-E SSD: the IOPS/ARPT failure is a
property of the metrics, not of the device.
"""

from repro.experiments.set2 import run_set2

from conftest import BENCH_SCALE, run_once


def test_fig6(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set2("ssd", BENCH_SCALE))
    table = sweep.correlations()

    assert not table["IOPS"].direction_correct
    assert not table["ARPT"].direction_correct
    assert table["BW"].direction_correct and table["BW"].normalized > 0.8
    assert table["BPS"].direction_correct and table["BPS"].normalized > 0.8

    artifact("fig6",
             sweep.render_cc_figure(
                 "Fig.6 — CC by metric, record-size sweep (SSD)")
             + "\n\n" + sweep.render_cc_table()
             + "\n\npaper: BW/BPS ~ +0.90, IOPS & ARPT negative; "
             + f"measured BPS = {table['BPS'].normalized:+.3f}")
