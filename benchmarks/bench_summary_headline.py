"""Section IV.C.5 headline — BPS is the only metric right everywhere.

Runs all six CC sweeps (Figs. 4-6, 9, 11, 12) and checks the paper's
two headline claims:

- BPS keeps the Table 1 direction in every sweep, with high |CC|
  (the paper quotes an overall 0.91);
- every conventional metric flips in at least one sweep.
"""

from repro.experiments.summary import run_summary

from conftest import BENCH_SCALE, run_once


def test_summary_headline(benchmark, artifact):
    summary = run_once(benchmark, lambda: run_summary(BENCH_SCALE))

    assert summary.bps_always_correct()
    assert summary.only_bps_always_correct()

    means = summary.mean_normalized()
    assert means["BPS"] > 0.75  # paper: ~0.91

    artifact("summary",
             summary.render()
             + "\n\npaper: BPS overall |CC| ~ 0.91, only metric correct "
             + f"in all sets; measured mean BPS CC = {means['BPS']:+.3f}")
