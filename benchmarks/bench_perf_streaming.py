"""Perf bench: the streaming metrics engine at trace scale.

Three figures are measured on synthetic overlapping traces:

1. **Ingest throughput** — records/second through the live pipeline on
   each of its three paths: per-record :meth:`MetricStream.ingest`,
   vectorised chunked :meth:`MetricStream.push_chunk`, and sharded
   chunked ingest (:class:`~repro.live.shard.ShardedMetricStream`),
   plus a bare :class:`~repro.live.union.StreamingUnion` for scale.
   Every path is asserted **bit-identical** to the batch pipeline —
   the speed is only interesting because the answer is exact.  The
   chunked path must clear both an absolute floor (``REQUIRED_RPS``)
   and a relative one (``REQUIRED_SPEEDUP`` over per-record in the
   same run, so machine variance cancels).

2. **Per-window latency** — wall time from a window becoming settled to
   its ``window`` event reaching a sink, i.e. the cost of closing one
   window (clip-union + stats + emit), reported as mean/p99 over the
   run's windows.

Figures land in ``benchmarks/output/perf_streaming_ingest.{txt,json}``;
the JSON carries the measured rates *and* the floors, and CI's
perf-regression gate re-checks them from there.

Sharded throughput only beats single-process on multi-core hosts (the
per-chunk pickling is pure overhead on one core), so the shard speedup
assertion is guarded on ``os.cpu_count()``; the bit-identity assertion
runs everywhere.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized variant.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.intervals import union_time
from repro.core.metrics import compute_metrics
from repro.core.records import TraceCollection
from repro.live import (
    MetricStream,
    ShardedMetricStream,
    StreamingUnion,
    chunk_trace,
)
from repro.util.tables import TextTable
from repro.util.units import MiB

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

SCALES = (10**4, 10**5) if SMOKE else (10**5, 10**6)
CHUNK = 8192
SHARDS = min(4, os.cpu_count() or 1)
#: Absolute floor for *chunked* full-stream ingest at the largest scale
#: (records/second).  Deliberately conservative — CI boxes vary, and
#: the floor exists to catch order-of-magnitude regressions, not to
#: race the hardware.  The same number is exported in the JSON artifact
#: for the CI perf-regression gate.
REQUIRED_RPS = 150_000.0 if SMOKE else 250_000.0
#: Relative floor: chunked over per-record measured in the same run.
REQUIRED_SPEEDUP = 3.0 if SMOKE else 5.0
#: Legacy floor on the per-record path (kept as a secondary guard).
REQUIRED_PER_RECORD_RPS = 20_000.0


def synthesize(n, *, seed=20130520):
    """Near-sorted completion stream with realistic out-of-orderness."""
    rng = np.random.default_rng(seed)
    start = np.sort(rng.uniform(0.0, n / 2000.0, size=n))
    duration = rng.exponential(0.005, size=n)
    duration[rng.random(n) < 0.01] = 0.0
    end = start + duration
    pid = rng.integers(0, 16, size=n)
    nbytes = rng.integers(512, 1 * MiB, size=n)
    op = np.where(rng.random(n) < 0.7, "read", "write")
    trace = TraceCollection.from_arrays(pid=pid, nbytes=nbytes,
                                        start=start, end=end, op=op)
    # Delivery in completion order — what a live tracer produces.
    records = sorted(trace, key=lambda r: (r.end, r.start))
    return trace, records


class _LatencySink:
    """Timestamps every window event against a caller-held clock."""

    def __init__(self):
        self.marks = []
        self.t0 = 0.0

    def emit(self, event):
        if event.get("type") == "window":
            self.marks.append(time.perf_counter() - self.t0)


def _assert_exact(result, batch, trace, streamed_t, label):
    exact = (streamed_t == union_time(trace.intervals())
             and result.metrics.bps == batch.bps
             and result.metrics.union_io_time == batch.union_io_time
             and result.metrics.app_ops == batch.app_ops
             and result.metrics.app_blocks == batch.app_blocks)
    assert exact, f"{label} != batch"


def test_streaming_ingest_throughput(artifact, artifact_json):
    table = TextTable(["records", "union only (rec/s)",
                       "per-record (rec/s)", "chunked (rec/s)",
                       f"sharded x{SHARDS} (rec/s)", "speedup",
                       "== batch"])
    scales_out = []
    headline = {}
    for n in SCALES:
        trace, records = synthesize(n)
        intervals = [(r.start, r.end) for r in records]
        span = trace.span()
        window = (span[1] - span[0]) / 50

        t0 = time.perf_counter()
        union = StreamingUnion(reorder_capacity=4096)
        for s, e in intervals:
            union.add(s, e)
        streamed_t = union.finalize()
        union_rps = n / (time.perf_counter() - t0)

        stream = MetricStream(window=window, block_size=512,
                              origin=span[0])
        t0 = time.perf_counter()
        for record in records:
            stream.ingest(record)
        result = stream.finalize()
        per_record_rps = n / (time.perf_counter() - t0)

        batch = compute_metrics(trace,
                                exec_time=result.metrics.exec_time,
                                block_size=512)
        _assert_exact(result, batch, trace, streamed_t, "per-record")

        # Chunk construction is part of the measured cost: a real live
        # tap pays it too.
        chunked = MetricStream(window=window, block_size=512,
                               origin=span[0])
        t0 = time.perf_counter()
        for chunk in chunk_trace(trace, chunk_size=CHUNK,
                                 order="completion"):
            chunked.push_chunk(chunk)
        chunked_result = chunked.finalize()
        chunked_rps = n / (time.perf_counter() - t0)
        _assert_exact(chunked_result, batch, trace,
                      chunked_result.metrics.union_io_time, "chunked")

        sharded = ShardedMetricStream(window=window, shards=SHARDS,
                                      block_size=512, origin=span[0])
        t0 = time.perf_counter()
        for chunk in chunk_trace(trace, chunk_size=CHUNK,
                                 order="completion"):
            sharded.push_chunk(chunk)
        sharded_result = sharded.finalize()
        sharded_rps = n / (time.perf_counter() - t0)
        _assert_exact(sharded_result, batch, trace,
                      sharded_result.metrics.union_io_time,
                      f"sharded x{SHARDS}")

        speedup = chunked_rps / per_record_rps
        headline = {"records": n, "union_rps": union_rps,
                    "per_record_rps": per_record_rps,
                    "chunked_rps": chunked_rps,
                    "sharded_rps": sharded_rps,
                    "chunked_speedup": speedup}
        scales_out.append(dict(headline,
                               late=result.late_records,
                               windows=len(result.windows)))
        table.add_row([f"{n:.0e}", f"{union_rps:,.0f}",
                       f"{per_record_rps:,.0f}", f"{chunked_rps:,.0f}",
                       f"{sharded_rps:,.0f}", f"{speedup:.1f}x",
                       "yes (bit-identical)"])

    mode = "smoke" if SMOKE else "full"
    artifact("perf_streaming_ingest",
             f"streaming metrics ingest throughput ({mode} mode, "
             f"chunk={CHUNK}, shards={SHARDS})\n" + table.render())
    artifact_json("perf_streaming_ingest", {
        "bench": "streaming_ingest_throughput",
        "mode": mode,
        "chunk_size": CHUNK,
        "shards": SHARDS,
        "cpu_count": os.cpu_count(),
        "scales": scales_out,
        "headline": headline,
        "floors": {
            "chunked_rps": REQUIRED_RPS,
            "chunked_speedup": REQUIRED_SPEEDUP,
            "per_record_rps": REQUIRED_PER_RECORD_RPS,
        },
    })
    assert headline["per_record_rps"] >= REQUIRED_PER_RECORD_RPS, (
        f"per-record ingest {headline['per_record_rps']:,.0f} rec/s is "
        f"below the {REQUIRED_PER_RECORD_RPS:,.0f} rec/s floor")
    assert headline["chunked_rps"] >= REQUIRED_RPS, (
        f"chunked ingest {headline['chunked_rps']:,.0f} rec/s at "
        f"{SCALES[-1]:.0e} records is below the {REQUIRED_RPS:,.0f} "
        f"rec/s floor")
    assert headline["chunked_speedup"] >= REQUIRED_SPEEDUP, (
        f"chunked ingest is only {headline['chunked_speedup']:.1f}x "
        f"per-record; the floor is {REQUIRED_SPEEDUP}x")
    if (os.cpu_count() or 1) >= 2 * SHARDS and not SMOKE:
        # Only meaningful with real cores behind the shards; on 1-2
        # CPUs the per-chunk pickling is pure overhead.
        assert headline["sharded_rps"] >= headline["chunked_rps"], (
            f"sharded ingest {headline['sharded_rps']:,.0f} rec/s "
            f"regressed below single-process chunked "
            f"{headline['chunked_rps']:,.0f} rec/s on a "
            f"{os.cpu_count()}-core host")


def test_per_window_close_latency(artifact, artifact_json):
    n = SCALES[-1]
    trace, records = synthesize(n)
    span = trace.span()
    sink = _LatencySink()
    stream = MetricStream(window=(span[1] - span[0]) / 200,
                          block_size=512, origin=span[0],
                          sinks=[sink])
    closes = []
    for record in records:
        before = len(sink.marks)
        sink.t0 = time.perf_counter()
        stream.ingest(record)
        after = time.perf_counter() - sink.t0
        if len(sink.marks) > before:
            # This ingest closed >= 1 window; charge it the full call.
            closes.append(after)
    stream.finalize()

    assert closes, "no window ever closed mid-stream"
    arr = np.asarray(closes)
    table = TextTable(["records", "windows closed mid-stream",
                       "close latency mean", "p99", "max"])
    table.add_row([f"{n:.0e}", str(len(closes)),
                   f"{arr.mean() * 1e6:.0f}us",
                   f"{np.percentile(arr, 99) * 1e6:.0f}us",
                   f"{arr.max() * 1e3:.2f}ms"])
    mode = "smoke" if SMOKE else "full"
    artifact("perf_streaming_latency",
             f"per-window close latency ({mode} mode)\n" + table.render())
    artifact_json("perf_streaming_latency", {
        "bench": "per_window_close_latency",
        "mode": mode,
        "records": n,
        "closes": len(closes),
        "mean_s": float(arr.mean()),
        "p99_s": float(np.percentile(arr, 99)),
        "max_s": float(arr.max()),
        "floors": {"p99_s": 0.1},
    })
    # A window close must stay far below a window's own width in real
    # time — otherwise the "live" engine couldn't keep up with itself.
    assert np.percentile(arr, 99) < 0.1
