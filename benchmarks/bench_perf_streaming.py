"""Perf bench: the streaming metrics engine at trace scale.

Two figures are measured on synthetic overlapping traces:

1. **Ingest throughput** — records/second through a full
   :class:`~repro.live.stream.MetricStream` (union + windows + groups)
   and through a bare :class:`~repro.live.union.StreamingUnion`, at
   10^5 and 10^6 records (smoke: 10^4 and 10^5).  Streamed results are
   asserted bit-identical to the batch pipeline at every scale — the
   speed is only interesting because the answer is exact.

2. **Per-window latency** — wall time from a window becoming settled to
   its ``window`` event reaching a sink, i.e. the cost of closing one
   window (clip-union + stats + emit), reported as mean/p99 over the
   run's windows.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized variant.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.intervals import union_time
from repro.core.metrics import compute_metrics
from repro.core.records import TraceCollection
from repro.live import MetricStream, StreamingUnion
from repro.util.tables import TextTable
from repro.util.units import MiB

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

SCALES = (10**4, 10**5) if SMOKE else (10**5, 10**6)
#: Floor for full-stream ingest at the largest scale (records/second).
#: Deliberately conservative: CI boxes vary, and the assertion exists
#: to catch order-of-magnitude regressions, not to race the hardware.
REQUIRED_RPS = 20_000.0


def synthesize(n, *, seed=20130520):
    """Near-sorted completion stream with realistic out-of-orderness."""
    rng = np.random.default_rng(seed)
    start = np.sort(rng.uniform(0.0, n / 2000.0, size=n))
    duration = rng.exponential(0.005, size=n)
    duration[rng.random(n) < 0.01] = 0.0
    end = start + duration
    pid = rng.integers(0, 16, size=n)
    nbytes = rng.integers(512, 1 * MiB, size=n)
    op = np.where(rng.random(n) < 0.7, "read", "write")
    trace = TraceCollection.from_arrays(pid=pid, nbytes=nbytes,
                                        start=start, end=end, op=op)
    # Delivery in completion order — what a live tracer produces.
    records = sorted(trace, key=lambda r: (r.end, r.start))
    return trace, records


class _LatencySink:
    """Timestamps every window event against a caller-held clock."""

    def __init__(self):
        self.marks = []
        self.t0 = 0.0

    def emit(self, event):
        if event.get("type") == "window":
            self.marks.append(time.perf_counter() - self.t0)


def test_streaming_ingest_throughput(artifact):
    table = TextTable(["records", "union only (rec/s)",
                       "full stream (rec/s)", "windows",
                       "late", "== batch"])
    headline_rps = None
    for n in SCALES:
        trace, records = synthesize(n)
        intervals = [(r.start, r.end) for r in records]

        t0 = time.perf_counter()
        union = StreamingUnion(reorder_capacity=4096)
        for s, e in intervals:
            union.add(s, e)
        streamed_t = union.finalize()
        union_rps = n / (time.perf_counter() - t0)

        span = trace.span()
        stream = MetricStream(window=(span[1] - span[0]) / 50,
                              block_size=512, origin=span[0])
        t0 = time.perf_counter()
        for record in records:
            stream.ingest(record)
        result = stream.finalize()
        stream_rps = n / (time.perf_counter() - t0)

        batch = compute_metrics(trace,
                                exec_time=result.metrics.exec_time,
                                block_size=512)
        exact = (streamed_t == union_time(trace.intervals())
                 and result.metrics.bps == batch.bps
                 and result.metrics.union_io_time == batch.union_io_time)
        assert exact, f"streamed != batch at n={n}"

        headline_rps = stream_rps
        table.add_row([f"{n:.0e}", f"{union_rps:,.0f}",
                       f"{stream_rps:,.0f}", str(len(result.windows)),
                       str(result.late_records), "yes (bit-identical)"])

    mode = "smoke" if SMOKE else "full"
    artifact("perf_streaming_ingest",
             f"streaming metrics ingest throughput ({mode} mode)\n"
             + table.render())
    assert headline_rps >= REQUIRED_RPS, (
        f"full-stream ingest {headline_rps:,.0f} rec/s at "
        f"{SCALES[-1]:.0e} records is below the {REQUIRED_RPS:,.0f} "
        f"rec/s floor")


def test_per_window_close_latency(artifact):
    n = SCALES[-1]
    trace, records = synthesize(n)
    span = trace.span()
    sink = _LatencySink()
    stream = MetricStream(window=(span[1] - span[0]) / 200,
                          block_size=512, origin=span[0],
                          sinks=[sink])
    closes = []
    for record in records:
        before = len(sink.marks)
        sink.t0 = time.perf_counter()
        stream.ingest(record)
        after = time.perf_counter() - sink.t0
        if len(sink.marks) > before:
            # This ingest closed >= 1 window; charge it the full call.
            closes.append(after)
    stream.finalize()

    assert closes, "no window ever closed mid-stream"
    arr = np.asarray(closes)
    table = TextTable(["records", "windows closed mid-stream",
                       "close latency mean", "p99", "max"])
    table.add_row([f"{n:.0e}", str(len(closes)),
                   f"{arr.mean() * 1e6:.0f}us",
                   f"{np.percentile(arr, 99) * 1e6:.0f}us",
                   f"{arr.max() * 1e3:.2f}ms"])
    mode = "smoke" if SMOKE else "full"
    artifact("perf_streaming_latency",
             f"per-window close latency ({mode} mode)\n" + table.render())
    # A window close must stay far below a window's own width in real
    # time — otherwise the \"live\" engine couldn't keep up with itself.
    assert np.percentile(arr, 99) < 0.1
