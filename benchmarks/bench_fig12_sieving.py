"""Fig. 12 — CC bars under data sieving (Set 4).

Paper result: IOPS/ARPT/BPS correct (~0.92); **bandwidth flips** — the
file system moves sieve holes faster and faster while the application
only gets slower.  The defining BPS-vs-bandwidth experiment.
"""

from repro.experiments.set4 import run_set4

from conftest import BENCH_SCALE, run_once


def test_fig12(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set4(BENCH_SCALE))
    table = sweep.correlations()

    assert not table["BW"].direction_correct, \
        "bandwidth must be misled by sieved holes"
    for name in ("IOPS", "ARPT", "BPS"):
        assert table[name].direction_correct, f"{name} flipped"
        assert table[name].normalized > 0.7

    amplifications = [m.fs_amplification for m in sweep.averaged()]
    artifact("fig12",
             sweep.render_cc_figure(
                 "Fig.12 — CC by metric, region-spacing sweep")
             + "\n\n" + sweep.render_cc_table()
             + "\n\nfs amplification across spacing ladder: "
             + ", ".join(f"{a:.1f}x" for a in amplifications)
             + "\npaper: IOPS/ARPT/BPS ~ +0.92, BW negative; measured "
             + f"BPS = {table['BPS'].normalized:+.3f}, "
             + f"BW = {table['BW'].normalized:+.3f}")
