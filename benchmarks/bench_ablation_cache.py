"""Ablation — page cache and read-ahead on the local file system.

The paper flushes caches before every run precisely because caching
changes everything; this ablation quantifies "everything": re-read
speedup with a warm cache, and the cost/benefit of kernel read-ahead
for small sequential records.
"""

import pytest

from repro.devices.specs import paper_hdd
from repro.fs.cache import PageCache
from repro.fs.localfs import LocalFileSystem
from repro.sim.engine import Engine
from repro.util.units import KiB, MiB

from conftest import run_once

FILE_SIZE = 8 * MiB
RECORD = 16 * KiB


def sequential_read(cache_pages: int, readahead_pages: int,
                    *, warm: bool = False) -> float:
    engine = Engine()
    device = paper_hdd(engine)
    cache = PageCache(cache_pages) if cache_pages else None
    fs = LocalFileSystem(engine, device, page_cache=cache,
                         readahead_pages=readahead_pages)
    fs.create("data", FILE_SIZE)

    def scan(eng):
        offset = 0
        while offset < FILE_SIZE:
            yield fs.read("data", offset, RECORD)
            offset += RECORD

    passes = 2 if warm else 1
    start = 0.0
    for index in range(passes):
        if index == passes - 1:
            start = engine.now
        process = engine.spawn(scan(engine))
        engine.run()
        process.result()
    return engine.now - start


@pytest.mark.parametrize("cache_pages,readahead", [
    (0, 0), (4096, 0), (4096, 32),
], ids=["no-cache", "cache", "cache+readahead"])
def test_cold_sequential(benchmark, cache_pages, readahead):
    elapsed = run_once(
        benchmark, lambda: sequential_read(cache_pages, readahead))
    assert elapsed > 0


def test_warm_cache_speedup(artifact):
    cold = sequential_read(4096, 0)
    warm = sequential_read(4096, 0, warm=True)
    # The warm pass still pays the per-call FS software overhead, so
    # the speedup is bounded by overhead/IO ratio (~10x at 16KiB
    # records on this HDD), not infinite.
    assert warm < cold / 5, "warm re-read should be much faster"
    artifact("ablation_cache",
             f"cold pass {cold:.4f}s vs warm re-read {warm:.6f}s "
             f"({cold / warm:.0f}x) — why the paper flushes caches "
             f"before every run")


def test_readahead_helps_small_records():
    plain = sequential_read(4096, 0)
    readahead = sequential_read(4096, 32)
    assert readahead < plain, \
        "read-ahead should amortise per-request costs at 16KiB records"
