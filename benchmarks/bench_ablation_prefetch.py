"""Ablation — middleware prefetching: the win and the waste.

The paper names prefetching (with sieving) as a source of "additional
data movement".  Sequential scans win; random access with the
prefetcher left on fetches data nobody reads — visible as fs bytes
exceeding application bytes, exactly the amplification BPS is immune
to and bandwidth is fooled by.
"""

import pytest

from repro.devices.specs import paper_hdd
from repro.fs.localfs import LocalFileSystem
from repro.middleware.posix import PosixIO
from repro.middleware.prefetch import PrefetchConfig, SequentialPrefetcher
from repro.middleware.tracing import TraceRecorder
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import KiB, MiB

FILE_SIZE = 8 * MiB
RECORD = 64 * KiB


def run_scan(prefetch: bool, pattern: str):
    engine = Engine()
    device = paper_hdd(engine)
    fs = LocalFileSystem(engine, device, page_cache=None)
    fs.create("data", FILE_SIZE)
    recorder = TraceRecorder(engine)
    lib = PosixIO(engine, fs, recorder)
    handle = lib.open("data", 0)
    reader = SequentialPrefetcher(
        handle, PrefetchConfig(window_bytes=1 * MiB)) \
        if prefetch else handle

    if pattern == "sequential":
        offsets = list(range(0, FILE_SIZE, RECORD))
    else:
        rng = RngStream.from_seed(3)
        slots = FILE_SIZE // RECORD
        offsets = [rng.integers(0, slots) * RECORD for _ in range(64)]

    def scan(eng):
        for offset in offsets:
            yield reader.pread(offset, RECORD)

    process = engine.spawn(scan(engine))
    engine.run()
    process.result()
    app_bytes = recorder.app_trace.total_bytes()
    return engine.now, recorder.fs_bytes_moved, app_bytes


@pytest.mark.parametrize("prefetch,pattern", [
    (False, "sequential"), (True, "sequential"),
    (False, "random"), (True, "random"),
], ids=["seq-off", "seq-on", "rand-off", "rand-on"])
def test_scan(benchmark, prefetch, pattern):
    elapsed, _fs_bytes, _app = benchmark.pedantic(
        lambda: run_scan(prefetch, pattern), rounds=1, iterations=1)
    assert elapsed > 0


def test_prefetch_helps_sequential_not_random(artifact):
    seq_off, _b, _a = run_scan(False, "sequential")
    seq_on, fs_on, app_on = run_scan(True, "sequential")
    rand_off, _b2, _a2 = run_scan(False, "random")
    rand_on, fs_rand, app_rand = run_scan(True, "random")
    assert seq_on <= seq_off * 1.02
    # Random access must not be materially hurt, and must not amplify
    # traffic much (trigger_after=2 keeps the prefetcher quiet).
    assert rand_on <= rand_off * 1.3
    artifact("ablation_prefetch",
             f"sequential: off {seq_off:.4f}s on {seq_on:.4f}s "
             f"(fs/app = {fs_on / app_on:.2f}x)\n"
             f"random:     off {rand_off:.4f}s on {rand_on:.4f}s "
             f"(fs/app = {fs_rand / app_rand:.2f}x)")
