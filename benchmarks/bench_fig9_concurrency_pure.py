"""Fig. 9 — CC bars, pure concurrency (Set 3a).

Paper result: IOPS/BW/BPS correct and strong (~0.96); ARPT flips with
|CC| ~ 0.58 — average response time cannot see concurrency.
"""

from repro.experiments.set3 import run_set3_pure

from conftest import BENCH_SCALE, run_once


def test_fig9(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set3_pure(BENCH_SCALE))
    table = sweep.correlations()

    for name in ("IOPS", "BW", "BPS"):
        assert table[name].direction_correct, f"{name} flipped"
        assert table[name].normalized > 0.7
    assert not table["ARPT"].direction_correct

    artifact("fig9",
             sweep.render_cc_figure(
                 "Fig.9 — CC by metric, pure-concurrency sweep")
             + "\n\n" + sweep.render_cc_table()
             + "\n\npaper: IOPS/BW/BPS ~ +0.96, ARPT ~ -0.58; measured "
             + f"BPS = {table['BPS'].normalized:+.3f}, "
             + f"ARPT = {table['ARPT'].normalized:+.3f}")
