"""Fig. 8 — ARPT vs execution time detail, SSD (Set 2 detail).

Paper: from 4 KB to 4 MB records ARPT grows 0.14 ms → 22.35 ms (160x)
while the application only gets *faster* — ARPT inverts reality.
"""

from repro.experiments.set2 import RECORD_SIZES, run_set2
from repro.util.tables import render_series
from repro.util.units import format_size

from conftest import BENCH_SCALE, run_once


def test_fig8(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set2("ssd", BENCH_SCALE))
    labels = sweep.labels
    arpt_series = sweep.series("ARPT")
    time_series = sweep.series("exec_time")

    i4k = labels.index("4.0KiB")
    i4m = labels.index(format_size(4 * 1024 * 1024))
    assert arpt_series[i4m] > 10 * arpt_series[i4k]
    assert time_series[i4m] < time_series[i4k]

    artifact("fig8",
             render_series("I/O size", labels,
                           {"ARPT_s": arpt_series,
                            "exec_time_s": time_series})
             + "\n\npaper: ARPT x160 up, exec time down; measured ARPT "
             + f"x{arpt_series[i4m] / arpt_series[i4k]:.0f} up, exec "
             + f"time x{time_series[i4k] / time_series[i4m]:.1f} down")
