"""Fig. 5 — CC bars across I/O sizes on HDD (Set 2).

Paper result: BW and BPS correct and strong (~0.90); IOPS and ARPT flip
direction because they ignore how much data a request carries.
"""

from repro.experiments.set2 import run_set2

from conftest import BENCH_SCALE, run_once


def test_fig5(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set2("hdd", BENCH_SCALE))
    table = sweep.correlations()

    assert not table["IOPS"].direction_correct
    assert not table["ARPT"].direction_correct
    assert table["BW"].direction_correct and table["BW"].normalized > 0.8
    assert table["BPS"].direction_correct and table["BPS"].normalized > 0.8

    artifact("fig5",
             sweep.render_cc_figure(
                 "Fig.5 — CC by metric, record-size sweep (HDD)")
             + "\n\n" + sweep.render_cc_table()
             + "\n\npaper: BW/BPS ~ +0.90, IOPS & ARPT negative; "
             + f"measured BPS = {table['BPS'].normalized:+.3f}")
