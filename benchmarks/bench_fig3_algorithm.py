"""Fig. 3 — the union-time algorithm itself.

The paper claims O(n log n) (section III.C) and an "affordable"
computing overhead.  These benches measure both implementations on
realistic trace sizes and check the growth rate is sort-dominated.
"""

import numpy as np
import pytest

from repro.core.intervals import union_time, union_time_paper


def _random_intervals(n, seed=0):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, 1000.0, n)
    durations = rng.exponential(0.01, n)
    return np.column_stack((starts, starts + durations))


@pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
def test_union_time_numpy(benchmark, n):
    intervals = _random_intervals(n)
    result = benchmark(union_time, intervals)
    assert 0 < result <= 1001


@pytest.mark.parametrize("n", [1_000, 10_000])
def test_union_time_paper_port(benchmark, n):
    intervals = _random_intervals(n)
    result = benchmark(union_time_paper, intervals)
    assert result == pytest.approx(union_time(intervals))


def test_paper_overhead_claim(benchmark):
    """Section III.C: 65535 operations need ~3 MB of records and the
    O(n log n) pass is 'very affordable'.  Verify the full 65535-record
    computation completes in well under a second."""
    intervals = _random_intervals(65535)
    result = benchmark(union_time, intervals)
    assert result > 0
    if benchmark.stats is not None:  # absent under --benchmark-disable
        stats = benchmark.stats.stats
        assert stats.mean < 0.5, \
            "65535-record union time not 'affordable'"
