"""Ablation — independent tiny transfers vs one collective call.

The point of two-phase collective I/O is that the application hands the
middleware its *whole* access pattern in one call, and the middleware
picks the request sizes: cb_nodes aggregators each issue one large
contiguous read instead of the application's thousands of tiny ones.

This bench compares the paper-era worst case — many 4 KiB independent
transfers — against a single collective round covering the same bytes
(each rank requests its whole segment via ``read_at_all``).  Per-round
collective calls on an already-sequential pattern, by contrast, only
add barrier costs; ROMIO likewise only enables two-phase when the
aggregate pattern benefits — measured here as well, honestly labelled.
"""

import pytest

from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.ior import IORWorkload

from conftest import run_once

CONFIG = SystemConfig(kind="pfs", n_servers=4)
FILE_SIZE = 4 * MiB
NPROC = 8


def run_independent_tiny():
    workload = IORWorkload(file_size=FILE_SIZE, transfer_size=4 * KiB,
                           nproc=NPROC, access="strided")
    return workload.run(CONFIG)


def run_one_collective_call():
    # transfer == segment: every rank describes its whole access in a
    # single read_at_all; the middleware aggregates into domain reads.
    segment = FILE_SIZE // NPROC
    workload = IORWorkload(file_size=FILE_SIZE, transfer_size=segment,
                           nproc=NPROC, collective=True)
    return workload.run(CONFIG)


def run_per_transfer_collective():
    workload = IORWorkload(file_size=FILE_SIZE, transfer_size=4 * KiB,
                           nproc=NPROC, collective=True,
                           access="strided")
    return workload.run(CONFIG)


@pytest.mark.parametrize("mode", ["independent-4KiB", "collective-1call",
                                  "collective-per-transfer"])
def test_modes(benchmark, mode):
    runner = {
        "independent-4KiB": run_independent_tiny,
        "collective-1call": run_one_collective_call,
        "collective-per-transfer": run_per_transfer_collective,
    }[mode]
    measurement = run_once(benchmark, runner)
    assert measurement.exec_time > 0


def test_whole_pattern_collective_wins(artifact):
    independent = run_independent_tiny()
    collective = run_one_collective_call()
    per_transfer = run_per_transfer_collective()
    # One whole-pattern collective call beats a storm of 4KiB requests.
    assert collective.exec_time < independent.exec_time
    # Per-transfer collective rounds only add barriers on a pattern that
    # is already disk-sequential — two-phase is not a free lunch.
    assert per_transfer.exec_time > collective.exec_time
    artifact("ablation_collective",
             f"{NPROC} ranks, {FILE_SIZE // MiB}MiB over 4 servers:\n"
             f"independent 4KiB strided reads: "
             f"{independent.exec_time:.4f}s\n"
             f"one whole-pattern collective call: "
             f"{collective.exec_time:.4f}s "
             f"({independent.exec_time / collective.exec_time:.2f}x "
             f"faster)\n"
             f"per-transfer collective rounds: "
             f"{per_transfer.exec_time:.4f}s (barrier overhead only)")
