"""Fig. 4 — CC bars across storage devices (Set 1).

Paper result: all four metrics correlate correctly and strongly
(average |CC| ≈ 0.93) when only the storage configuration changes.
"""

from repro.core.correlation import average_strength
from repro.experiments.set1 import run_set1

from conftest import BENCH_SCALE, run_once


def test_fig4(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set1(BENCH_SCALE))
    table = sweep.correlations()

    # Paper shape: every metric correct, strong.
    for name, result in table.items():
        assert result.direction_correct, f"{name} flipped"
    assert average_strength(table) > 0.8

    artifact("fig4",
             sweep.render_cc_figure(
                 "Fig.4 — CC by metric, storage-device sweep")
             + "\n\n" + sweep.render_cc_table()
             + "\n\npaper: all correct, avg |CC| ~ 0.93; measured avg "
             + f"|CC| = {average_strength(table):.3f}")
