"""Table 1 — expected correlation directions of each I/O metric.

Regenerates the table and benchmarks the correlation-table computation
itself on a representative sweep-sized input.
"""

from dataclasses import replace

from repro.core.correlation import correlation_table
from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.experiments.figures import FIGURES

from conftest import run_once


def _sweep_points(n_points: int = 64):
    trace = TraceCollection([IORecord(0, "read", 512, 0.0, 1.0)])
    base = compute_metrics(trace, exec_time=1.0)
    points = []
    for i in range(1, n_points + 1):
        points.append(replace(
            base,
            iops=1000.0 / i, bandwidth=5e8 / i, arpt=0.001 * i,
            bps=1e6 / i, exec_time=float(i),
        ))
    return points


def test_table1(benchmark, artifact):
    points = _sweep_points()
    table = run_once(benchmark, lambda: correlation_table(points))
    # The synthetic sweep is perfectly well-behaved: all four correct.
    assert all(r.direction_correct for r in table.values())
    artifact("table1", FIGURES["table1"].produce(None))
