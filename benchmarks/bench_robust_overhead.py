"""Perf bench: what supervision + checkpointing cost over a plain pool.

The resilience layer (:mod:`repro.exec`) must be effectively free when
nothing goes wrong — a sweep that pays double for crash insurance it
rarely needs would just be run unsupervised.  This bench times the same
points × repetitions sweep grid three ways:

1. **plain pool** — ``ProcessPoolExecutor.map`` over the grid, the
   pre-supervision execution model (no per-job accounting, no retry,
   no journal);
2. **supervised** — :func:`~repro.exec.supervisor.run_supervised` with
   the default policy;
3. **supervised + checkpoint** — the same, with every completed job
   journalled (write + flush per job, group-committed fsync).

All three produce bit-identical measurement grids (asserted), and the
supervised runs must stay within the overhead budget of the plain
pool.  The budget is generous in smoke mode (CI boxes share cores and
fsync latency varies wildly on cloud disks); the full run asserts the
<5%% wall-clock figure recorded in ``benchmarks/output/``.

Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized variant.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

from repro.exec.supervisor import SupervisorPolicy, run_supervised
from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    _pool_job,
    _sweep_jobs,
)
from repro.system import SystemConfig
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB
from repro.workloads.iozone import IOzoneWorkload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: Supervised-vs-plain wall-clock overhead budget.  Full runs amortise
#: the fixed supervision cost over ~100 multi-second jobs, so <5% holds
#: with margin; smoke runs are seconds long on shared CI cores where
#: fixed costs dominate, so only an order-of-magnitude bound is useful.
OVERHEAD_BUDGET = 1.0 if SMOKE else 0.05

WORKERS = 4
REPS = 2 if SMOKE else 5
#: Full-size jobs are deliberately multi-hundred-ms: the supervision
#: budget is a claim about real sweeps, where per-job cost dwarfs the
#: journal's per-job fsync.
FILE_MIB = 2 if SMOKE else 64


def make_spec() -> SweepSpec:
    config = SystemConfig(kind="local", jitter_sigma=0.1)
    points = []
    for record in (64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB):
        def make(_record=record):
            return IOzoneWorkload(file_size=FILE_MIB * MiB,
                                  record_size=_record)
        points.append((str(record), make, config))
    return SweepSpec(knob="record size", points=points)


def measurement_key(measurement):
    return (measurement.exec_time, measurement.fs_bytes,
            len(measurement.trace))


def run_plain_pool(spec, jobs):
    """The pre-supervision model: ProcessPoolExecutor.map, fork start."""
    import multiprocessing
    ctx = multiprocessing.get_context("fork")
    runner_module._WORKER_SPEC = spec
    try:
        with ProcessPoolExecutor(max_workers=WORKERS,
                                 mp_context=ctx) as pool:
            return list(pool.map(_pool_job, jobs))
    finally:
        runner_module._WORKER_SPEC = None


def run_supervised_pool(spec, jobs, *, checkpoint=None):
    runner_module._WORKER_SPEC = spec
    try:
        if checkpoint is None:
            results, _ = run_supervised(jobs, _pool_job,
                                        workers=WORKERS,
                                        policy=SupervisorPolicy())
            return results
        from repro.exec.checkpoint import (
            CheckpointJournal,
            measurement_to_payload,
        )
        journal = CheckpointJournal(checkpoint, tag="bench",
                                    resume=False)
        try:
            results, _ = run_supervised(
                jobs, _pool_job, workers=WORKERS,
                policy=SupervisorPolicy(),
                on_result=lambda i, m: journal.record(
                    f"j{i}", measurement_to_payload(m)))
            journal.finalize()
        finally:
            journal.close()
        return results
    finally:
        runner_module._WORKER_SPEC = None


#: Wall-time rounds per flavour; the minimum is compared.  Shared CI
#: cores make single rounds noisy by tens of percent — the best-of
#: minimum is the standard estimator for "what this costs absent
#: interference".
ROUNDS = 1 if SMOKE else 3


def timed(fn):
    """(best wall seconds over ROUNDS, last result)."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_supervision_overhead(artifact, tmp_path):
    spec = make_spec()
    scale = ExperimentScale(repetitions=REPS)
    jobs = _sweep_jobs(spec, scale)

    # Warm-up: fork both pool flavours once so first-run costs (imports
    # in children, page-cache state) don't bias either side.
    run_plain_pool(spec, jobs[:2])
    run_supervised_pool(spec, jobs[:2])

    plain_s, plain = timed(lambda: run_plain_pool(spec, jobs))
    sup_s, supervised = timed(lambda: run_supervised_pool(spec, jobs))
    ckpt_s, checkpointed = timed(lambda: run_supervised_pool(
        spec, jobs, checkpoint=tmp_path / "bench.ckpt.jsonl"))

    # The insurance must not change the answer.
    assert [measurement_key(m) for m in supervised] == \
        [measurement_key(m) for m in plain]
    assert [measurement_key(m) for m in checkpointed] == \
        [measurement_key(m) for m in plain]

    sup_overhead = sup_s / plain_s - 1.0
    ckpt_overhead = ckpt_s / plain_s - 1.0
    table = TextTable(["execution model", "wall time", "overhead"])
    table.add_row(["plain ProcessPoolExecutor", f"{plain_s:.3f}s", "-"])
    table.add_row(["supervised pool", f"{sup_s:.3f}s",
                   f"{sup_overhead:+.1%}"])
    table.add_row(["supervised + checkpoint", f"{ckpt_s:.3f}s",
                   f"{ckpt_overhead:+.1%}"])
    text = (f"{len(jobs)} jobs on {WORKERS} workers "
            f"(smoke={SMOKE}, budget {OVERHEAD_BUDGET:.0%})\n"
            + table.render())
    artifact("robust_overhead", text)

    assert sup_overhead < OVERHEAD_BUDGET, (
        f"supervised pool overhead {sup_overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget")
    assert ckpt_overhead < OVERHEAD_BUDGET, (
        f"supervised+checkpoint overhead {ckpt_overhead:.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget")
