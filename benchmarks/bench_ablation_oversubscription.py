"""Ablation — switch oversubscription under the IOR workload.

A non-blocking fabric vs a backplane capped at 2 server-links' worth:
with 8 servers and 8 clients moving data concurrently, the
oversubscribed fabric caps aggregate throughput regardless of how many
servers are added — a dimension of "storage configuration" the paper's
testbed (one GigE switch) could not isolate.
"""

import pytest

from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.ior import IORWorkload

from conftest import run_once

FABRICS = {
    "non-blocking": None,
    "oversubscribed-2x": 250 * MiB,   # 2 x GigE across 8 servers
}


def run_ior(backplane):
    config = SystemConfig(
        kind="pfs", n_servers=8, backplane_bandwidth=backplane,
        device_overrides={"cache_segments": 32},
    )
    workload = IORWorkload(file_size=32 * MiB, transfer_size=256 * KiB,
                           nproc=8)
    return workload.run(config)


@pytest.mark.parametrize("fabric", sorted(FABRICS))
def test_fabric(benchmark, fabric):
    measurement = run_once(benchmark, lambda: run_ior(FABRICS[fabric]))
    assert measurement.exec_time > 0


def test_oversubscription_caps_aggregate(artifact):
    free = run_ior(None)
    capped = run_ior(250 * MiB)
    assert capped.exec_time > free.exec_time * 1.3
    free_rate = free.trace.total_bytes() / free.exec_time
    capped_rate = capped.trace.total_bytes() / capped.exec_time
    assert capped_rate < 300 * MiB  # near the 250 MiB/s fabric cap
    artifact("ablation_oversubscription",
             f"8 ranks x 8 servers, 32MiB: non-blocking "
             f"{free.exec_time:.4f}s ({free_rate / MiB:.0f} MiB/s) vs "
             f"2x-oversubscribed {capped.exec_time:.4f}s "
             f"({capped_rate / MiB:.0f} MiB/s)")
