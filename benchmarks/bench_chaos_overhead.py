"""Perf bench: what the wire-integrity layer costs when nothing fails.

The chaos PR hardened both distributed protocols with per-unit
checksums — CRC32 over every grid frame payload
(:mod:`repro.exec.backends.wire`) and an optional ``crc`` key on serve
lines (:mod:`repro.serve.protocol`).  Integrity must be cheap enough
to leave on unconditionally.  Three measurements back that up:

1. **Micro**: frame round-trips over a real ``socketpair`` and serve
   line encode/decode pairs, each against a checksum-free variant of
   the same framing.  This isolates the per-unit CRC cost in µs.
2. **Projection**: the per-unit delta scaled by a generous
   frames-per-cell allowance against the recorded socket sweep
   baseline (``benchmarks/output/perf_sweep_backends.json``, the
   pre-chaos PR's 57 cells/s figure).  Asserted < 5% always — this is
   the physically meaningful claim and is immune to machine noise.
3. **End-to-end**: the same Set 1 sweep that produced the baseline,
   re-run on the checksummed wire over both the fork and socket
   backends.  Raw cells/s drifts with machine load, so the asserted
   quantity is the machine-invariant socket/fork *ratio* against the
   baseline's recorded ``socket_overhead_vs_fork`` (5% budget full, a
   noise-tolerant 25% in smoke mode — single-round sweep timings
   wobble more than the CRC ever could).

Results land in ``benchmarks/output/perf_chaos_overhead.json`` for
CI's regression gate.  Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized
variant.
"""

from __future__ import annotations

import json
import os
import pathlib
import pickle
import socket
import subprocess
import sys
import time

from repro.core.records import IORecord
from repro.exec.backends.wire import _HEADER, _recv_exact, recv_frame, send_frame
from repro.experiments.runner import ExperimentScale
from repro.experiments.set1 import run_set1
from repro.serve.protocol import decode_wire_line, record_line
from repro.util.tables import TextTable

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: The chaos design's promise: checksummed framing costs the sweep
#: < 5%.  The projection assert uses this directly; the end-to-end
#: re-run gets noise headroom in smoke mode (shared CI cores move
#: sweep timings by more than the CRC ever could).
CHECKSUM_OVERHEAD_BUDGET = 0.05
END_TO_END_BUDGET = 0.25 if SMOKE else 0.05

#: Upper-bound allowance for wire frames one sweep cell costs end to
#: end (job + done + handshake share + heartbeat traffic).  Real cells
#: exchange ~a handful; 50 keeps the projection conservative.
FRAMES_PER_CELL = 50

FRAMES = 4_000 if SMOKE else 20_000
LINES = 10_000 if SMOKE else 50_000
ROUNDS = 3 if SMOKE else 5

#: Mirrors bench_sweep_backends' full mode — the baseline this bench
#: compares against was recorded at this exact configuration.  Two
#: rounds minimum: the first full-scale round doubles as the warm-up
#: (worker-side spec rebuild, page cache).
SWEEP_WORKERS = 2
SWEEP_SCALE = ExperimentScale(factor=1.0, repetitions=3)
SWEEP_ROUNDS = 2 if SMOKE else 3

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
BASELINE_PATH = OUTPUT_DIR / "perf_sweep_backends.json"
REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src")

#: A realistic grid unit: one cell's done-frame payload.
FRAME_PAYLOAD = {
    "kind": "done", "index": 7,
    "result": (123.4, 56.7, 0.0089, 4321.0, 1.25, 0.87, 1500, 3000,
               6_144_000),
    "blob": b"x" * 512,
}


def send_frame_unchecked(sock: socket.socket, obj) -> None:
    """The same framing with the checksum zeroed out (baseline)."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(data), 0) + data)


def recv_frame_unchecked(sock: socket.socket):
    length, _crc = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    return pickle.loads(_recv_exact(sock, length))


def time_frames(send, recv) -> float:
    a, b = socket.socketpair()
    try:
        a.settimeout(30.0)
        b.settimeout(30.0)
        best = float("inf")
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            for _ in range(FRAMES):
                send(a, FRAME_PAYLOAD)
                recv(b)
            best = min(best, time.perf_counter() - t0)
        return best
    finally:
        a.close()
        b.close()


def time_lines(checksum: bool) -> float:
    record = IORecord(pid=1, op="read", nbytes=4096,
                      start=0.25, end=0.262)
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        for seq in range(LINES):
            line = record_line(record, seq=seq, checksum=checksum)
            decode_wire_line(line.decode())
        best = min(best, time.perf_counter() - t0)
    return best


def spawn_workers(n):
    procs, addrs = [], []
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    for _ in range(n):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "grid-worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        banner = proc.stdout.readline().strip()
        assert "grid-worker listening on" in banner, banner
        procs.append(proc)
        addrs.append(banner.rsplit(" ", 1)[-1])
    return procs, ",".join(addrs)


def time_sweeps() -> tuple[dict[str, float], int]:
    """Best wall seconds for the fork and socket sweeps, and cells."""
    procs, addrs = spawn_workers(SWEEP_WORKERS)
    seconds = {"fork": float("inf"), "socket": float("inf")}
    try:
        # Warm-up sessions: child imports, worker-side spec rebuild.
        warm = ExperimentScale(factor=0.25, repetitions=1)
        run_set1(warm, backend="fork", parallel=True,
                 workers=SWEEP_WORKERS)
        run_set1(warm, backend="socket", grid_workers=addrs)
        for _ in range(SWEEP_ROUNDS):
            t0 = time.perf_counter()
            run_set1(SWEEP_SCALE, backend="fork", parallel=True,
                     workers=SWEEP_WORKERS)
            seconds["fork"] = min(seconds["fork"],
                                  time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_set1(SWEEP_SCALE, backend="socket", grid_workers=addrs)
            seconds["socket"] = min(seconds["socket"],
                                    time.perf_counter() - t0)
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)
    return seconds, 6 * SWEEP_SCALE.repetitions


def load_baseline() -> dict | None:
    try:
        payload = json.loads(BASELINE_PATH.read_text())
        return {
            "cells_per_sec": float(payload["cells_per_sec"]["socket"]),
            "socket_overhead_vs_fork":
                float(payload["socket_overhead_vs_fork"]),
        }
    except (OSError, KeyError, ValueError, TypeError):
        return None


def test_checksummed_framing_overhead(artifact, artifact_json):
    seconds = {
        "frames_crc": time_frames(send_frame, recv_frame),
        "frames_plain": time_frames(send_frame_unchecked,
                                    recv_frame_unchecked),
        "lines_crc": time_lines(True),
        "lines_plain": time_lines(False),
    }
    micro = {
        "frame_extra_us": (seconds["frames_crc"]
                           - seconds["frames_plain"]) / FRAMES * 1e6,
        "line_extra_us": (seconds["lines_crc"]
                          - seconds["lines_plain"]) / LINES * 1e6,
    }

    baseline = load_baseline()
    sweep_seconds, cells = time_sweeps()
    cells_per_sec = cells / sweep_seconds["socket"]
    ratio_now = sweep_seconds["socket"] / sweep_seconds["fork"]

    # The claim that matters: CRC cost per cell against the recorded
    # pre-chaos per-cell wall time.
    reference = (baseline["cells_per_sec"] if baseline
                 else cells_per_sec)
    projected = (FRAMES_PER_CELL * max(0.0, micro["frame_extra_us"])
                 / 1e6) * reference
    # Machine-invariant end-to-end check: the socket/fork ratio now
    # versus the ratio the baseline recorded on the pre-chaos wire.
    if baseline:
        ratio_base = 1.0 + baseline["socket_overhead_vs_fork"]
        end_to_end = ratio_now / ratio_base - 1.0
    else:
        end_to_end = 0.0

    table = TextTable(["measurement", "value"])
    table.add_row(["frame CRC cost (µs/frame)",
                   f"{micro['frame_extra_us']:.2f}"])
    table.add_row(["line crc cost (µs/line)",
                   f"{micro['line_extra_us']:.2f}"])
    table.add_row(["projected sweep overhead",
                   f"{projected:+.3%}"])
    table.add_row(["socket sweep (cells/s)", f"{cells_per_sec:.3f}"])
    table.add_row(["socket/fork ratio now", f"{ratio_now:.4f}"])
    table.add_row(["baseline socket/fork ratio",
                   f"{1.0 + baseline['socket_overhead_vs_fork']:.4f}"
                   if baseline else "(missing)"])
    table.add_row(["end-to-end vs baseline", f"{end_to_end:+.2%}"])
    text = (f"{FRAMES} frames / {LINES} lines per round, best of "
            f"{ROUNDS}; sweep best of {SWEEP_ROUNDS} (smoke={SMOKE}, "
            f"budgets {CHECKSUM_OVERHEAD_BUDGET:.0%} projected / "
            f"{END_TO_END_BUDGET:.0%} end-to-end)\n" + table.render())
    artifact("perf_chaos_overhead", text)
    artifact_json("perf_chaos_overhead", {
        "smoke": SMOKE,
        "frames": FRAMES,
        "lines": LINES,
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "micro_extra_us": {k: round(v, 3) for k, v in micro.items()},
        "frames_per_cell_allowance": FRAMES_PER_CELL,
        "sweep_cells_per_sec": round(cells_per_sec, 3),
        "socket_fork_ratio": round(ratio_now, 6),
        "baseline": baseline,
        "projected_sweep_overhead": round(projected, 6),
        "end_to_end_overhead": round(end_to_end, 6),
        "floors": {
            "projected_sweep_overhead": CHECKSUM_OVERHEAD_BUDGET,
            "end_to_end_overhead": END_TO_END_BUDGET,
        },
    })

    assert projected < CHECKSUM_OVERHEAD_BUDGET, (
        f"projected checksum overhead {projected:.3%} "
        f"({FRAMES_PER_CELL} frames/cell at "
        f"{micro['frame_extra_us']:.2f}µs) exceeds the "
        f"{CHECKSUM_OVERHEAD_BUDGET:.0%} budget")
    if baseline:
        assert end_to_end < END_TO_END_BUDGET, (
            f"socket/fork ratio {ratio_now:.4f} is {end_to_end:.1%} "
            f"above the baseline ratio "
            f"{1.0 + baseline['socket_overhead_vs_fork']:.4f} "
            f"(budget {END_TO_END_BUDGET:.0%})")
