"""Ablation — NumPy-vectorised vs paper-faithful union-time.

DESIGN.md keeps both implementations: the pure-Python port for
auditability, the vectorised one for hot paths.  This bench quantifies
the speedup that justifies maintaining two.
"""

import numpy as np
import pytest

from repro.core.intervals import union_time, union_time_paper

N = 50_000


@pytest.fixture(scope="module")
def intervals():
    rng = np.random.default_rng(1)
    starts = rng.uniform(0, 1000.0, N)
    return np.column_stack((starts, starts + rng.exponential(0.01, N)))


def test_numpy_impl(benchmark, intervals):
    result = benchmark(union_time, intervals)
    assert result > 0


def test_paper_impl(benchmark, intervals):
    result = benchmark(union_time_paper, intervals)
    assert result == pytest.approx(union_time(intervals))


def test_speedup_report(intervals, capsys):
    """Not a timing assertion (machines vary) — just records that both
    agree; the two benches above carry the numbers."""
    assert union_time(intervals) == pytest.approx(
        union_time_paper(intervals))
