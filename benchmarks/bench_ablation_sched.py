"""Ablation — FIFO vs elevator (C-LOOK) device scheduling.

With many concurrent random readers an elevator order cuts average seek
distance.  The experiments all use FIFO (PVFS2-era defaults); this
bench documents what the knob is worth.
"""

import pytest

from repro.devices.hdd import HDDModel
from repro.sim.engine import Engine
from repro.util.rng import RngStream
from repro.util.units import GiB, KiB

N_REQUESTS = 128
CONCURRENCY = 16


def random_storm(scheduler: str) -> float:
    engine = Engine()
    hdd = HDDModel(engine, capacity_bytes=100 * GiB,
                   scheduler=scheduler, cache_segments=1)
    rng = RngStream.from_seed(42)
    offsets = [rng.integers(0, 100 * GiB // (4 * KiB)) * 4 * KiB
               for _ in range(N_REQUESTS)]

    def reader(eng, chunk):
        for offset in chunk:
            yield hdd.access("read", offset, 4 * KiB)

    per_worker = N_REQUESTS // CONCURRENCY
    for worker in range(CONCURRENCY):
        chunk = offsets[worker * per_worker:(worker + 1) * per_worker]
        engine.spawn(reader(engine, chunk))
    engine.run()
    return engine.now


@pytest.mark.parametrize("scheduler", ["fifo", "elevator"])
def test_random_storm(benchmark, scheduler):
    elapsed = benchmark.pedantic(lambda: random_storm(scheduler),
                                 rounds=1, iterations=1)
    assert elapsed > 0


def test_elevator_beats_fifo(artifact):
    fifo = random_storm("fifo")
    elevator = random_storm("elevator")
    assert elevator < fifo, "offset-ordered service should cut seeks"
    artifact("ablation_sched",
             f"random 4KiB storm x{N_REQUESTS}: fifo {fifo:.3f}s vs "
             f"elevator {elevator:.3f}s "
             f"({fifo / elevator:.2f}x)")
