"""Perf bench: what each sweep backend costs on the same grid.

The backend abstraction (:mod:`repro.exec.backends`) must not tax the
sweep: the fork pool is the baseline, the in-process async backend
should track the serial path, and the socket dispatcher — TCP framing,
handshake, pickled results, liveness traffic — must stay within a
bounded dispatch overhead of the fork pool on the same host, or there
is no point dispatching locally at all.

This bench times the identical Set 1 grid four ways (serial, async,
fork pool, socket dispatch to two local ``bps grid-worker`` daemons),
asserts every flavour produces bit-identical measurements, prints the
cells/s table, and publishes the numbers plus the asserted floor as
JSON (``benchmarks/output/perf_sweep_backends.json``) for CI's
regression gate.

The overhead budget is generous in smoke mode (seconds-long cells on
shared CI cores mean fixed costs — handshake, spec rebuild on the
worker — dominate); the full run asserts the <10%% figure recorded in
``benchmarks/output/``.  Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized
variant.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.experiments.runner import ExperimentScale
from repro.experiments.set1 import run_set1
from repro.util.tables import TextTable

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: Socket-vs-fork wall-clock overhead budget on a local 2-worker run.
#: Full runs amortise the fixed dispatch cost over multi-second cells,
#: so <10% holds with margin; smoke cells are tens of milliseconds
#: where the TCP handshake and per-result pickling are comparable to
#: the work itself, so only an order-of-magnitude bound is useful.
SOCKET_OVERHEAD_BUDGET = 1.0 if SMOKE else 0.10

WORKERS = 2
SCALE = ExperimentScale(factor=0.25, repetitions=2) if SMOKE \
    else ExperimentScale(factor=1.0, repetitions=3)
ROUNDS = 1 if SMOKE else 3

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def metric_tuples(sweep):
    return [
        (m.iops, m.bandwidth, m.arpt, m.bps, m.exec_time,
         m.union_io_time, m.app_ops, m.app_blocks, m.fs_bytes)
        for _label, reps in sweep._points for m in reps
    ]


def timed(fn):
    """(best wall seconds over ROUNDS, last result)."""
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def spawn_workers(n):
    procs, addrs = [], []
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    for _ in range(n):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "grid-worker",
             "--listen", "127.0.0.1:0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        banner = proc.stdout.readline().strip()
        assert "grid-worker listening on" in banner, banner
        procs.append(proc)
        addrs.append(banner.rsplit(" ", 1)[-1])
    return procs, ",".join(addrs)


def test_backend_dispatch_overhead(artifact, artifact_json):
    procs, addrs = spawn_workers(WORKERS)
    try:
        flavours = {
            "serial": lambda: run_set1(SCALE, parallel=False),
            "async": lambda: run_set1(SCALE, backend="async"),
            "fork": lambda: run_set1(SCALE, backend="fork",
                                     parallel=True, workers=WORKERS),
            "socket": lambda: run_set1(SCALE, backend="socket",
                                       grid_workers=addrs),
        }
        # Warm-up (imports in children, page cache, a first TCP
        # session so the workers' spec rebuild doesn't bias round 1).
        warm = ExperimentScale(factor=0.25, repetitions=1)
        for name in ("fork", "socket"):
            if name == "fork":
                run_set1(warm, backend="fork", parallel=True,
                         workers=WORKERS)
            else:
                run_set1(warm, backend="socket", grid_workers=addrs)

        seconds, sweeps = {}, {}
        for name, fn in flavours.items():
            seconds[name], sweeps[name] = timed(fn)
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=10)

    # The transport must not change the answer.
    baseline = metric_tuples(sweeps["serial"])
    for name in ("async", "fork", "socket"):
        assert metric_tuples(sweeps[name]) == baseline, (
            f"{name} backend is not bit-identical to serial")

    cells = 6 * SCALE.repetitions
    socket_overhead = seconds["socket"] / seconds["fork"] - 1.0
    table = TextTable(["backend", "wall time", "cells/s",
                       "vs fork"])
    for name in ("serial", "async", "fork", "socket"):
        rel = seconds[name] / seconds["fork"] - 1.0
        table.add_row([name, f"{seconds[name]:.3f}s",
                       f"{cells / seconds[name]:.1f}",
                       f"{rel:+.1%}" if name != "fork" else "-"])
    text = (f"{cells} cells, {WORKERS} workers (smoke={SMOKE}, "
            f"socket budget {SOCKET_OVERHEAD_BUDGET:.0%} vs fork)\n"
            + table.render())
    artifact("perf_sweep_backends", text)
    artifact_json("perf_sweep_backends", {
        "smoke": SMOKE,
        "cells": cells,
        "workers": WORKERS,
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "cells_per_sec": {k: round(cells / v, 3)
                          for k, v in seconds.items()},
        "socket_overhead_vs_fork": round(socket_overhead, 6),
        "floors": {
            "socket_overhead_vs_fork": SOCKET_OVERHEAD_BUDGET,
        },
    })

    assert socket_overhead < SOCKET_OVERHEAD_BUDGET, (
        f"socket dispatch overhead {socket_overhead:.1%} vs fork "
        f"exceeds the {SOCKET_OVERHEAD_BUDGET:.0%} budget")
