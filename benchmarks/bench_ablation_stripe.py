"""Ablation — stripe size under the IOR workload.

PVFS2's default 64 KiB stripe matches IOR's 64 KiB transfers one-to-one
(each request hits one server).  Larger and smaller stripes shift the
parallelism-per-request / requests-per-server balance; this bench maps
the curve.
"""

import pytest

from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.ior import IORWorkload

from conftest import run_once

STRIPES = (16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB)


def run_ior(stripe_size: int):
    config = SystemConfig(kind="pfs", n_servers=4,
                          stripe_size=stripe_size,
                          device_overrides={"cache_segments": 32})
    workload = IORWorkload(file_size=8 * MiB, transfer_size=256 * KiB,
                           nproc=4)
    return workload.run(config)


@pytest.mark.parametrize("stripe", STRIPES,
                         ids=[f"stripe-{s // 1024}KiB" for s in STRIPES])
def test_stripe_sweep(benchmark, stripe):
    measurement = run_once(benchmark, lambda: run_ior(stripe))
    assert measurement.exec_time > 0


def test_striping_beats_no_striping(artifact):
    results = {stripe: run_ior(stripe).exec_time for stripe in STRIPES}
    # A 1 MiB stripe serialises each 256 KiB transfer onto one server;
    # 64 KiB spreads each transfer over all four.
    assert results[64 * KiB] < results[1 * MiB]
    lines = [f"stripe {stripe // 1024:4d}KiB: {elapsed:.4f}s"
             for stripe, elapsed in results.items()]
    artifact("ablation_stripe", "\n".join(lines))
