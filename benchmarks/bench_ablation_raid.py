"""Ablation — RAID arrays as another storage-configuration axis.

Extends Set 1's device variety: a single HDD, a 4-disk RAID-0, and a
2-disk mirror, under the same sequential read.  RAID-0 should approach
4x the single-disk rate for large records; RAID-1 reads land on one
mirror at a time (no striping win for a single stream).
"""

import pytest

from repro.system import SystemConfig
from repro.util.units import MiB
from repro.workloads.iozone import IOzoneWorkload

from conftest import run_once

SPECS = ("sata-hdd-7200", "raid0-hdd-4", "raid1-hdd-2")


def run_read(device_spec: str):
    workload = IOzoneWorkload(file_size=32 * MiB, record_size=4 * MiB)
    config = SystemConfig(kind="local", device_spec=device_spec)
    return workload.run(config)


@pytest.mark.parametrize("spec", SPECS)
def test_sequential_read(benchmark, spec):
    measurement = run_once(benchmark, lambda: run_read(spec))
    assert measurement.exec_time > 0


def test_raid0_scales_raid1_does_not(artifact):
    times = {spec: run_read(spec).exec_time for spec in SPECS}
    assert times["raid0-hdd-4"] < times["sata-hdd-7200"] / 2.5
    # A mirror serves a single stream from one member: no speedup.
    assert times["raid1-hdd-2"] > times["raid0-hdd-4"]
    artifact("ablation_raid", "\n".join(
        f"{spec:>15}: {elapsed:.4f}s" for spec, elapsed in times.items()))
