"""Perf bench: what always-on attribution costs the streaming path.

``--attribute`` rides the live ingest loop: every delivered record is
additionally folded into the :class:`~repro.diagnose.graph.TraceGraph`
bucket of its start window, and every closed window is popped and
either learned (healthy) or diffed (flagged).  The diagnose design's
promise is that this tax is small enough to leave attribution on
wherever a detector runs.  Three figures back that up:

1. **Micro**: per-record attribution cost in µs, measured as the
   wall-time delta between ``watch_trace`` replays of the same
   synthetic trace with and without ``attribute=True``.  Rounds are
   interleaved base/attr so CPU-frequency drift hits both sides
   equally.  Asserted against a generous absolute ceiling — the
   order-of-magnitude tripwire, immune to machine speed.
2. **Projection**: that per-record cost scaled by the live run's
   actual record rate — the fraction of a monitored run's wall time
   attribution consumes.  Asserted < 5% always; this is the
   operational claim (attribution must not slow the system it
   watches) and both factors come from the same machine, so the
   ratio is noise-robust.
3. **End-to-end**: the same simulated run observed by a
   :class:`~repro.live.tap.LiveTap` with and without attribution,
   interleaved best-of rounds.  A sub-second simulation's wall time
   swings +-20% with machine load — far more than attribution's real
   ~1% cost — so this figure is a wide sanity backstop, not the
   gate; the binding 5% assert is the projection above, whose two
   factors each come from long interleaved measurements.

Results land in ``benchmarks/output/perf_diagnose_overhead.json`` for
CI's regression gate.  Set ``REPRO_BENCH_SMOKE=1`` for the CI-sized
variant.
"""

from __future__ import annotations

import os
import random
import time

from repro.core.records import IORecord, TraceCollection
from repro.diagnose import stripe_server_of
from repro.live import BpsAnomalyDetector, LiveTap
from repro.live.replay import watch_trace
from repro.system import SystemConfig
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.synthetic import RandomAccessWorkload

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip() not in ("", "0")

#: The diagnose design's promise: attribution costs a monitored run
#: < 5% of wall time.  The projection assert uses this directly; the
#: end-to-end re-run only backstops it (same-machine repeat runs of
#: the simulation swing +-20% under load, so a tight assert there
#: would gate the machine, not the code).
ATTRIBUTION_OVERHEAD_BUDGET = 0.05
END_TO_END_BUDGET = 0.50

#: Absolute ceiling on the per-record graph-feed cost.  ~2-4 µs on a
#: stock core; 15 µs catches an accidental O(windows) scan or numpy
#: round-trip sneaking into the hot loop without racing the hardware.
MICRO_CEILING_US = 15.0

REPLAY_RECORDS = 20_000 if SMOKE else 60_000
REPLAY_ROUNDS = 3 if SMOKE else 5
LIVE_ROUNDS = 2 if SMOKE else 3
OPS_PER_PROC = 48 if SMOKE else 128
WINDOW = 0.02


def synthesize(n: int, *, seed: int = 7) -> TraceCollection:
    """Dense overlapping completion stream across 8 pids, 3 servers."""
    rng = random.Random(seed)
    records = []
    t = 0.0
    for i in range(n):
        duration = rng.uniform(0.002, 0.01)
        records.append(IORecord(pid=i % 8, op="read", nbytes=64 * KiB,
                                start=t, end=t + duration,
                                offset=(i % 24) * 64 * KiB))
        t += 0.0004
    return TraceCollection(records)


def time_replay(trace: TraceCollection, attribute: bool) -> float:
    detector = BpsAnomalyDetector()
    t0 = time.perf_counter()
    watch_trace(trace, window=0.05, detector=detector,
                attribute=attribute,
                server_of=stripe_server_of(3) if attribute else None)
    return time.perf_counter() - t0


def replay_micro() -> tuple[float, float]:
    """Best base/attr replay seconds over interleaved rounds."""
    trace = synthesize(REPLAY_RECORDS)
    time_replay(trace, False)
    time_replay(trace, True)
    base = attr = float("inf")
    for _ in range(REPLAY_ROUNDS):
        base = min(base, time_replay(trace, False))
        attr = min(attr, time_replay(trace, True))
    return base, attr


def time_live(attribute: bool) -> tuple[float, int]:
    """One healthy simulated run under a live tap; (seconds, records)."""
    workload = RandomAccessWorkload(file_size=8 * MiB, io_size=4 * KiB,
                                    ops_per_proc=OPS_PER_PROC, nproc=4)
    cfg = SystemConfig(kind="pfs", n_servers=3,
                       device_spec="sata-hdd-7200", replication=1,
                       seed=11)
    holder = {}
    records = []

    def attach(system):
        system.recorder.subscribe(records.append)
        holder["tap"] = LiveTap(
            system, window=WINDOW, heartbeat_s=WINDOW,
            detector=BpsAnomalyDetector(drop_factor=2.5, history=8,
                                        min_history=3),
            attribute=attribute)

    t0 = time.perf_counter()
    metrics = run_workload(workload, cfg, on_system=attach)
    holder["tap"].result(exec_time=metrics.exec_time)
    return time.perf_counter() - t0, len(records)


def live_overhead() -> tuple[float, float, int]:
    """Best base/attr live-run seconds (interleaved) and record count."""
    time_live(False)
    base = attr = float("inf")
    n_records = 0
    for _ in range(LIVE_ROUNDS):
        seconds, n_records = time_live(False)
        base = min(base, seconds)
        seconds, _ = time_live(True)
        attr = min(attr, seconds)
    return base, attr, n_records


def test_attribution_overhead(artifact, artifact_json):
    replay_base, replay_attr = replay_micro()
    micro_us = (replay_attr - replay_base) / REPLAY_RECORDS * 1e6
    replay_ratio = replay_attr / replay_base - 1.0

    live_base, live_attr, n_records = live_overhead()
    end_to_end = live_attr / live_base - 1.0
    # The operational claim: per-record graph-feed cost at the live
    # run's actual record rate, as a share of the run's wall time.
    projected = max(0.0, micro_us) * n_records / (live_base * 1e6)

    table = TextTable(["measurement", "value"])
    table.add_row(["graph feed cost (µs/record)", f"{micro_us:.2f}"])
    table.add_row(["replay overhead (offline)", f"{replay_ratio:+.2%}"])
    table.add_row(["live run records", f"{n_records}"])
    table.add_row(["live run base (s)", f"{live_base:.3f}"])
    table.add_row(["projected live overhead", f"{projected:+.3%}"])
    table.add_row(["end-to-end live overhead", f"{end_to_end:+.2%}"])
    text = (f"{REPLAY_RECORDS} records x {REPLAY_ROUNDS} interleaved "
            f"replay rounds, {LIVE_ROUNDS} interleaved live rounds "
            f"(smoke={SMOKE}, budgets "
            f"{ATTRIBUTION_OVERHEAD_BUDGET:.0%} projected / "
            f"{END_TO_END_BUDGET:.0%} end-to-end, micro ceiling "
            f"{MICRO_CEILING_US:.0f}µs)\n" + table.render())
    artifact("perf_diagnose_overhead", text)
    artifact_json("perf_diagnose_overhead", {
        "smoke": SMOKE,
        "replay_records": REPLAY_RECORDS,
        "replay_seconds": {"base": round(replay_base, 6),
                           "attribute": round(replay_attr, 6)},
        "replay_overhead": round(replay_ratio, 6),
        "micro_us_per_record": round(micro_us, 3),
        "live_records": n_records,
        "live_seconds": {"base": round(live_base, 6),
                         "attribute": round(live_attr, 6)},
        "projected_live_overhead": round(projected, 6),
        "end_to_end_overhead": round(end_to_end, 6),
        "floors": {
            "projected_live_overhead": ATTRIBUTION_OVERHEAD_BUDGET,
            "end_to_end_overhead": END_TO_END_BUDGET,
            "micro_us_per_record": MICRO_CEILING_US,
        },
    })

    assert micro_us < MICRO_CEILING_US, (
        f"graph feed costs {micro_us:.2f}µs/record "
        f"(ceiling {MICRO_CEILING_US:.0f}µs) — the attribution hot "
        f"path regressed by an order of magnitude")
    assert projected < ATTRIBUTION_OVERHEAD_BUDGET, (
        f"projected attribution overhead {projected:.3%} "
        f"({micro_us:.2f}µs x {n_records} records over "
        f"{live_base:.2f}s) exceeds the "
        f"{ATTRIBUTION_OVERHEAD_BUDGET:.0%} budget")
    assert end_to_end < END_TO_END_BUDGET, (
        f"live run with attribution is {end_to_end:.1%} slower "
        f"(budget {END_TO_END_BUDGET:.0%})")
