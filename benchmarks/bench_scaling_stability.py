"""Reproduction-quality check: conclusions are stable across scale.

The data sizes here are ~1000x smaller than the paper's; this bench
runs a representative sweep (Set 2 on HDD — the one with two metric
flips) at several scale factors and asserts the *qualitative pattern*
(who flips, who holds) never changes.  If conclusions depended on the
simulation scale, the whole reproduction would be suspect.
"""

import pytest

from repro.experiments.runner import ExperimentScale
from repro.experiments.set2 import run_set2
from repro.experiments.set4 import run_set4

from conftest import run_once

FACTORS = (0.25, 0.5, 1.0, 2.0)


def pattern_set2(factor):
    sweep = run_set2("hdd", ExperimentScale(factor=factor,
                                            repetitions=2))
    table = sweep.correlations()
    return {name: result.direction_correct
            for name, result in table.items()}


@pytest.mark.parametrize("factor", FACTORS)
def test_set2_at_scale(benchmark, factor):
    flips = run_once(benchmark, lambda: pattern_set2(factor))
    assert flips == {"IOPS": False, "BW": True,
                     "ARPT": False, "BPS": True}


def test_set4_bw_flip_is_scale_free(artifact):
    lines = []
    for factor in (0.25, 0.5, 1.0):
        sweep = run_set4(ExperimentScale(factor=factor, repetitions=2))
        table = sweep.correlations()
        assert not table["BW"].direction_correct, \
            f"BW flip vanished at factor {factor}"
        assert table["BPS"].direction_correct
        lines.append(
            f"factor {factor}: BW {table['BW'].normalized:+.3f}, "
            f"BPS {table['BPS'].normalized:+.3f}")
    artifact("scaling_stability", "\n".join(lines))
