"""Figs. 1-2 — the paper's definitional figures, regenerated.

These are concept figures (no testbed behind them in the paper either);
the bench recomputes them from the metric definitions and checks the
discriminations they illustrate.
"""

from repro.experiments.figures import FIGURES

from conftest import run_once


def test_fig1(benchmark, artifact):
    text = run_once(benchmark, lambda: FIGURES["fig1"].produce(None))
    # The three discriminations of Fig. 1:
    assert "IOPS ties them" in text
    assert "BW doubles" in text
    assert "ARPT ties them" in text
    artifact("fig1", text)


def test_fig2(benchmark, artifact):
    text = run_once(benchmark, lambda: FIGURES["fig2"].produce(None))
    assert "7.0" in text   # T = dt1 + dt2
    assert "11.0" in text  # the sum BPS does NOT use
    artifact("fig2", text)
