"""Shared fixtures for the benchmark harness.

Every ``bench_figN_*.py`` regenerates one paper artifact: it runs the
sweep under pytest-benchmark (one round — a sweep is already 5+
repetitions internally), asserts the paper's qualitative shape, prints
the artifact, and writes it to ``benchmarks/output/<name>.txt`` so the
text survives pytest's output capture.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.runner import ExperimentScale

#: Default scale for figure benches: full data-size scale, 3 repetitions
#: (the paper uses 5; 3 keeps the full harness under a minute while the
#: CC values remain stable to +-0.02).
BENCH_SCALE = ExperimentScale(factor=1.0, repetitions=3)

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def artifact():
    """Writer: artifact('fig4', text) → benchmarks/output/fig4.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        # Also print for -s runs / the tee'd bench log.
        print(f"\n=== {name} ===\n{text}")

    return write


@pytest.fixture
def artifact_json():
    """Writer: artifact_json('perf_x', payload) → output/perf_x.json.

    The machine-readable twin of ``artifact``: perf benches publish
    their measured figures (and the floors they assert) as JSON so CI's
    regression gate can re-check thresholds without parsing tables.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, payload: dict) -> None:
        path = OUTPUT_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")

    return write


def run_once(benchmark, func):
    """Benchmark a sweep exactly once (it's internally repeated)."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
