"""Ablation — data sieving on vs off under the Hpio workload.

Sieving is the Set 4 mechanism; this ablation shows both of its faces:
with small holes it *wins* (fewer, larger requests), and in both cases
bandwidth measured at the file system diverges from what the
application experiences.
"""

import pytest

from repro.middleware.sieving import SievingConfig
from repro.system import SystemConfig
from repro.util.units import KiB
from repro.workloads.hpio import HpioWorkload

from conftest import run_once

CONFIG = SystemConfig(kind="pfs", n_servers=4)


def run_hpio(enabled: bool, spacing: int):
    workload = HpioWorkload(
        region_count=1024, region_size=256, region_spacing=spacing,
        nproc=2,
        sieving=SievingConfig(enabled=enabled, max_hole=64 * KiB),
    )
    return workload.run(CONFIG)


@pytest.mark.parametrize("enabled", [True, False],
                         ids=["sieving-on", "sieving-off"])
def test_hpio_small_holes(benchmark, enabled):
    measurement = run_once(benchmark, lambda: run_hpio(enabled, 64))
    assert measurement.exec_time > 0


def test_sieving_wins_with_small_holes(artifact):
    on = run_hpio(True, 64)
    off = run_hpio(False, 64)
    assert on.exec_time < off.exec_time, \
        "sieving should win when holes are small"
    artifact("ablation_sieving",
             f"spacing=64B: sieving on {on.exec_time:.4f}s "
             f"(amplification {on.metrics().fs_amplification:.2f}x) vs "
             f"off {off.exec_time:.4f}s — "
             f"speedup {off.exec_time / on.exec_time:.2f}x")


def test_amplification_only_with_sieving():
    on = run_hpio(True, 1024)
    off = run_hpio(False, 1024)
    assert on.metrics().fs_amplification > 3.0
    assert off.metrics().fs_amplification == pytest.approx(1.0)
