"""Ablation — the write path: write-through vs write-back, and a
write-mode Set 2 check.

The paper's experiments are read-only; the reproduction's write path
deserves its own evidence: (a) write-back absorbs writes at memory
speed until eviction/flush; (b) the Set 2 metric pattern (IOPS/ARPT
flip, BW/BPS hold) also appears for writes, because nothing about the
argument is read-specific.
"""

import pytest

from repro.core.analysis import SweepAnalysis
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.iozone import IOzoneWorkload

from conftest import run_once


def run_write(policy: str, record=64 * KiB):
    workload = IOzoneWorkload(file_size=16 * MiB, record_size=record,
                              op="write")
    config = SystemConfig(kind="local", cache_policy=policy,
                          cache_pages=16384)
    return workload.run(config)


@pytest.mark.parametrize("policy", ["write-through", "write-back"])
def test_write_policy(benchmark, policy):
    measurement = run_once(benchmark, lambda: run_write(policy))
    assert measurement.exec_time > 0


def test_write_back_absorbs_writes(artifact):
    through = run_write("write-through")
    back = run_write("write-back")
    assert back.exec_time < through.exec_time / 5
    artifact("ablation_writes",
             f"16MiB of 64KiB writes: write-through "
             f"{through.exec_time:.4f}s vs write-back "
             f"{back.exec_time:.4f}s "
             f"({through.exec_time / back.exec_time:.1f}x)")


def test_set2_pattern_holds_for_writes():
    """IOPS and ARPT flip on a write record-size sweep too."""
    sweep = SweepAnalysis("record size (write)")
    for record in (4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB):
        measurements = []
        for seed in (1, 2):
            workload = IOzoneWorkload(file_size=8 * MiB,
                                      record_size=record, op="write")
            config = SystemConfig(kind="local",
                                  cache_policy="write-through",
                                  jitter_sigma=0.08, seed=seed)
            measurements.append(workload.run(config).metrics())
        sweep.add_point(str(record), measurements)
    table = sweep.correlations()
    assert not table["IOPS"].direction_correct
    assert not table["ARPT"].direction_correct
    assert table["BW"].direction_correct
    assert table["BPS"].direction_correct
