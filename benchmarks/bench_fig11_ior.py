"""Fig. 11 — CC bars, IOR shared file (Set 3b).

Paper result: in a real MPI-IO environment IOPS/BW/BPS stay good
(~0.91); ARPT has the wrong direction and is weak (~0.39).
"""

from repro.experiments.set3 import run_set3_ior

from conftest import BENCH_SCALE, run_once


def test_fig11(benchmark, artifact):
    sweep = run_once(benchmark, lambda: run_set3_ior(BENCH_SCALE))
    table = sweep.correlations()

    for name in ("IOPS", "BW", "BPS"):
        assert table[name].direction_correct, f"{name} flipped"
        assert table[name].normalized > 0.6
    assert not table["ARPT"].direction_correct

    artifact("fig11",
             sweep.render_cc_figure(
                 "Fig.11 — CC by metric, IOR concurrency sweep")
             + "\n\n" + sweep.render_cc_table()
             + "\n\npaper: IOPS/BW/BPS ~ +0.91, ARPT ~ -0.39; measured "
             + f"BPS = {table['BPS'].normalized:+.3f}, "
             + f"ARPT = {table['ARPT'].normalized:+.3f}")
