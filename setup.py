"""Legacy setup shim.

This environment lacks the ``wheel`` package, so PEP 517 editable installs
(`pip install -e .` with a [build-system] table) fail with
``invalid command 'bdist_wheel'``.  Keeping a setup.py and omitting the
[build-system] table lets pip use the legacy editable path, which needs
only setuptools.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
