"""ChaosSchedule / ChaosEvent / ChaosCursor semantics.

The determinism contract is the whole point of the chaos layer: the
same (seed, connection, direction) key must replay the same fault
decisions bit-identically, and timing jitter must never perturb them.
"""

import math

import pytest

from repro.chaos import (
    BANDWIDTH,
    CORRUPT,
    DUPLICATE,
    HALF_OPEN,
    LATENCY,
    PARTITION,
    REORDER,
    RESET,
    SLOW_LORIS,
    TRUNCATE,
    ChaosEvent,
    ChaosSchedule,
    random_chaos_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.errors import ChaosError
from repro.util.rng import RngStream


class TestEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos kind"):
            ChaosEvent("gremlins")

    def test_bad_direction_rejected(self):
        with pytest.raises(ChaosError, match="direction"):
            ChaosEvent(CORRUPT, direction="sideways")

    @pytest.mark.parametrize("connections", [(), (-1,), (0, -2)])
    def test_bad_connections_rejected(self, connections):
        with pytest.raises(ChaosError, match="connection indexes"):
            ChaosEvent(RESET, connections=connections)

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.5])
    def test_probability_outside_unit_interval(self, probability):
        with pytest.raises(ChaosError, match="probability"):
            ChaosEvent(CORRUPT, probability=probability)

    def test_negative_frame_window_rejected(self):
        with pytest.raises(ChaosError, match="frame_at"):
            ChaosEvent(CORRUPT, frame_at=-1)
        with pytest.raises(ChaosError, match="frame_count"):
            ChaosEvent(CORRUPT, frame_count=0)

    def test_infinite_partition_rejected(self):
        with pytest.raises(ChaosError, match="finite duration"):
            ChaosEvent(PARTITION, at=1.0)

    def test_bandwidth_needs_positive_rate(self):
        with pytest.raises(ChaosError, match="bytes_per_s"):
            ChaosEvent(BANDWIDTH, at=0.0, duration=1.0)

    def test_latency_rejects_negative_jitter(self):
        with pytest.raises(ChaosError, match="latency"):
            ChaosEvent(LATENCY, duration=1.0, latency_s=-0.1)

    def test_slow_loris_needs_sane_pacing(self):
        with pytest.raises(ChaosError, match="slow-loris"):
            ChaosEvent(SLOW_LORIS, duration=1.0, chunk_bytes=0)

    def test_timing_windows_reject_nonsense(self):
        with pytest.raises(ChaosError, match="window start"):
            ChaosEvent(LATENCY, at=-1.0, duration=1.0)
        with pytest.raises(ChaosError, match="duration"):
            ChaosEvent(LATENCY, at=0.0, duration=0.0)


class TestScheduleValidation:
    def test_seed_must_be_nonnegative_int(self):
        with pytest.raises(ChaosError, match="seed"):
            ChaosSchedule(seed=-1)
        with pytest.raises(ChaosError, match="seed"):
            ChaosSchedule(seed=True)

    def test_mode_must_be_frames_or_lines(self):
        with pytest.raises(ChaosError, match="mode"):
            ChaosSchedule(seed=0, mode="packets")

    def test_events_coerced_to_tuple_and_iterable(self):
        schedule = ChaosSchedule(
            seed=3, events=[ChaosEvent(CORRUPT, probability=0.5)])
        assert isinstance(schedule.events, tuple)
        assert len(schedule) == 1
        assert [e.kind for e in schedule] == [CORRUPT]


class TestWindows:
    def test_frame_window_bounds(self):
        event = ChaosEvent(CORRUPT, frame_at=5, frame_count=3,
                           probability=0.5)
        hits = [i for i in range(12) if event.frame_in_window(i)]
        assert hits == [5, 6, 7]

    def test_open_ended_frame_window(self):
        event = ChaosEvent(DUPLICATE, frame_at=4, probability=0.5)
        assert not event.frame_in_window(3)
        assert event.frame_in_window(4)
        assert event.frame_in_window(10 ** 6)

    def test_time_window_half_open(self):
        event = ChaosEvent(LATENCY, at=1.0, duration=2.0, latency_s=0.01)
        assert not event.time_in_window(0.999)
        assert event.time_in_window(1.0)
        assert not event.time_in_window(3.0)

    def test_applies_to_direction_and_connection(self):
        event = ChaosEvent(CORRUPT, direction="c2s", connections=(1, 3),
                           probability=0.5)
        assert event.applies_to(1, "c2s")
        assert not event.applies_to(1, "s2c")
        assert not event.applies_to(2, "c2s")

    def test_partition_until_reports_window_end(self):
        schedule = ChaosSchedule(seed=0, events=(
            ChaosEvent(PARTITION, at=1.0, duration=0.5),))
        assert schedule.partition_until(0.5) is None
        assert schedule.partition_until(1.2) == pytest.approx(1.5)
        assert schedule.partition_until(1.6) is None

    def test_timing_events_filters_domain_and_window(self):
        schedule = ChaosSchedule(seed=0, events=(
            ChaosEvent(CORRUPT, probability=0.5),
            ChaosEvent(LATENCY, at=0.0, duration=1.0, latency_s=0.01),
            ChaosEvent(BANDWIDTH, at=5.0, duration=1.0,
                       bytes_per_s=1000.0),))
        active = schedule.timing_events(0, "c2s", 0.5)
        assert [e.kind for e in active] == [LATENCY]


class TestCursorDeterminism:
    SCHEDULE = ChaosSchedule(seed=42, events=(
        ChaosEvent(CORRUPT, probability=0.3),
        ChaosEvent(DUPLICATE, probability=0.4),
        ChaosEvent(REORDER, frame_at=5, probability=0.4),))

    def test_same_key_replays_identically(self):
        cursors = [self.SCHEDULE.cursor(2, "s2c") for _ in range(2)]
        seqs = [[c.decide() for _ in range(80)] for c in cursors]
        assert seqs[0] == seqs[1]

    def test_directions_draw_independent_streams(self):
        c2s = self.SCHEDULE.cursor(0, "c2s")
        s2c = self.SCHEDULE.cursor(0, "s2c")
        a = [c2s.decide() for _ in range(80)]
        b = [s2c.decide() for _ in range(80)]
        assert a != b  # 80 independent Bernoulli draws; p(equal) ~ 0

    def test_jitter_never_perturbs_decisions(self):
        quiet = self.SCHEDULE.cursor(1, "c2s")
        noisy = self.SCHEDULE.cursor(1, "c2s")
        decisions_quiet, decisions_noisy = [], []
        for i in range(60):
            decisions_quiet.append(quiet.decide())
            noisy.jitter(0.5)  # timing draw between every decision
            decisions_noisy.append(noisy.decide())
            assert noisy.jitter(0.25) >= 0.0
        assert decisions_quiet == decisions_noisy

    def test_one_shot_fires_exactly_once(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(RESET, frame_at=3),
            ChaosEvent(HALF_OPEN, frame_at=6),
            ChaosEvent(TRUNCATE, frame_at=9),))
        cursor = schedule.cursor(0, "c2s")
        actions = [cursor.decide() for _ in range(15)]
        assert actions[3] == [RESET]
        assert actions[6] == [HALF_OPEN]
        assert actions[9] == [TRUNCATE]
        fired = [a for a in actions if a]
        assert len(fired) == 3

    def test_probability_one_always_fires(self):
        schedule = ChaosSchedule(seed=0, events=(
            ChaosEvent(DUPLICATE, probability=1.0),))
        cursor = schedule.cursor(0, "s2c")
        assert all(cursor.decide() == [DUPLICATE] for _ in range(20))

    def test_corrupt_offset_bounded_and_deterministic(self):
        a = self.SCHEDULE.cursor(0, "c2s")
        b = self.SCHEDULE.cursor(0, "c2s")
        offsets = [(a.corrupt_offset(64), b.corrupt_offset(64))
                   for _ in range(50)]
        assert all(x == y for x, y in offsets)
        assert all(0 <= x < 64 for x, _ in offsets)
        assert a.corrupt_offset(0) == 0

    def test_cursor_rejects_both_direction(self):
        with pytest.raises(ChaosError, match="c2s or s2c"):
            self.SCHEDULE.cursor(0, "both")


class TestDescribe:
    def test_event_lines_mention_kind_and_window(self):
        frame = ChaosEvent(CORRUPT, frame_at=3, frame_count=10,
                           probability=0.25)
        assert "corrupt" in frame.describe()
        assert "[3, 13)" in frame.describe()
        timing = ChaosEvent(PARTITION, at=1.0, duration=0.5)
        assert "partition" in timing.describe()
        assert math.isfinite(1.5)  # window end rendered below
        assert "1.5" in timing.describe()

    def test_schedule_describe_includes_seed_and_mode(self):
        schedule = ChaosSchedule(seed=9, mode="lines", events=(
            ChaosEvent(RESET, frame_at=2),))
        text = schedule.describe()
        assert "seed=9" in text
        assert "mode=lines" in text
        assert "reset" in text
        assert ChaosSchedule(seed=0).describe() == \
            "(empty chaos schedule)"


class TestDictRoundTrip:
    def test_round_trip_preserves_schedule(self):
        schedule = ChaosSchedule(seed=17, mode="lines", events=(
            ChaosEvent(CORRUPT, direction="c2s", frame_at=2,
                       frame_count=50, probability=0.1),
            ChaosEvent(RESET, connections=(0, 2), frame_at=9),
            ChaosEvent(PARTITION, at=0.5, duration=0.25),
            ChaosEvent(LATENCY, at=0.0, duration=2.0,
                       latency_s=0.01, jitter_s=0.005),))
        rebuilt = schedule_from_dict(schedule_to_dict(schedule))
        assert rebuilt == schedule

    def test_dict_is_json_safe_and_sparse(self):
        import json

        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(DUPLICATE, probability=0.5),))
        payload = schedule_to_dict(schedule)
        json.dumps(payload)  # must not raise
        # Defaulted fields are omitted, keeping authored files small.
        assert payload["events"][0] == \
            {"kind": "duplicate", "probability": 0.5}

    def test_unknown_schedule_key_rejected(self):
        with pytest.raises(ChaosError, match="unknown schedule keys"):
            schedule_from_dict({"seed": 0, "evnets": []})

    def test_unknown_event_key_rejected(self):
        with pytest.raises(ChaosError, match="unknown keys"):
            schedule_from_dict(
                {"seed": 0,
                 "events": [{"kind": "corrupt", "probablity": 0.5}]})

    def test_non_dict_rejected(self):
        with pytest.raises(ChaosError, match="JSON object"):
            schedule_from_dict([1, 2, 3])

    def test_connections_list_becomes_tuple(self):
        schedule = schedule_from_dict(
            {"seed": 0,
             "events": [{"kind": "reset", "connections": [1, 2]}]})
        assert schedule.events[0].connections == (1, 2)


class TestRandomSchedule:
    def test_same_stream_draws_same_schedule(self):
        a = random_chaos_schedule(RngStream.from_seed(5, "chaos"))
        b = random_chaos_schedule(RngStream.from_seed(5, "chaos"))
        assert a == b

    def test_mode_and_knobs_flow_through(self):
        schedule = random_chaos_schedule(
            RngStream.from_seed(1, "chaos"), mode="lines",
            partitions=2, resets=3)
        assert schedule.mode == "lines"
        kinds = [e.kind for e in schedule]
        assert kinds.count(PARTITION) == 2
        assert kinds.count(RESET) == 3

    def test_severity_scales_probabilities(self):
        mild = random_chaos_schedule(
            RngStream.from_seed(2, "chaos"), severity=0.1)
        harsh = random_chaos_schedule(
            RngStream.from_seed(2, "chaos"), severity=5.0)
        prob = {s: [e.probability for e in s
                    if e.kind in (CORRUPT, DUPLICATE, REORDER)]
                for s in (mild, harsh)}
        assert sum(prob[harsh]) > sum(prob[mild])

    def test_bad_knobs_rejected(self):
        with pytest.raises(ChaosError, match="severity"):
            random_chaos_schedule(
                RngStream.from_seed(0, "chaos"), severity=0.0)
        with pytest.raises(ChaosError, match="horizon"):
            random_chaos_schedule(
                RngStream.from_seed(0, "chaos"), horizon_frames=5)
