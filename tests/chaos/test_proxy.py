"""ChaosProxy fault injection against a live TCP collector.

Each test points the proxy at a local collector server speaking the
real protocols (grid wire frames or serve JSON lines) and checks that
the injected fault is visible exactly where the hardened receivers
would see it — a CRC mismatch, a duplicated unit, a reset — and that
``stats()`` accounts for what the schedule did.
"""

import json
import socket
import threading
import time

import pytest

from repro.chaos import (
    CORRUPT,
    DUPLICATE,
    HALF_OPEN,
    LATENCY,
    PARTITION,
    REORDER,
    RESET,
    SLOW_LORIS,
    TRUNCATE,
    ChaosEvent,
    ChaosProxy,
    ChaosSchedule,
)
from repro.errors import ChaosError, FrameCorruptionError, TraceFormatError
from repro.exec.backends.wire import recv_frame, send_frame
from repro.serve.protocol import line_checksum, verify_checksum


def wait_until(predicate, timeout=8.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class Collector:
    """Accepts proxied connections and records every protocol unit."""

    def __init__(self, mode):
        self.mode = mode
        self.units = []       # decoded frames / raw line bytes
        self.errors = []      # exceptions hit while receiving
        self._stop = threading.Event()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(8)
        self._server.settimeout(0.1)
        self.address = "{}:{}".format(*self._server.getsockname()[:2])
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True)
        self._thread.start()

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                conn, _peer = self._server.accept()
            except (TimeoutError, socket.timeout):
                continue
            except OSError:
                return
            threading.Thread(target=self._serve, args=(conn,),
                             daemon=True).start()

    def _serve(self, conn):
        conn.settimeout(10.0)
        try:
            if self.mode == "frames":
                while True:
                    self.units.append(recv_frame(conn))
            else:
                buf = b""
                while True:
                    data = conn.recv(1 << 16)
                    if not data:
                        return
                    buf += data
                    while b"\n" in buf:
                        end = buf.index(b"\n") + 1
                        self.units.append(buf[:end])
                        buf = buf[end:]
        except EOFError:
            pass
        except (FrameCorruptionError, OSError) as exc:
            self.errors.append(exc)
        finally:
            conn.close()

    def close(self):
        self._stop.set()
        self._server.close()
        self._thread.join(timeout=5.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def connect(proxy):
    host, port = proxy.address
    sock = socket.create_connection((host, port), timeout=10.0)
    sock.settimeout(10.0)
    return sock


class TestFramesMode:
    def test_empty_schedule_is_a_clean_passthrough(self):
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, ChaosSchedule(seed=0)) as proxy:
            sock = connect(proxy)
            payloads = [{"i": i, "blob": "x" * 300} for i in range(5)]
            for obj in payloads:
                send_frame(sock, obj)
            sock.close()
            assert wait_until(lambda: len(sink.units) == 5)
            assert sink.units == payloads
            assert not sink.errors
        stats = proxy.stats()
        assert stats["connections"] == 1
        assert stats["forwarded"] == 5
        assert stats["corrupted"] == 0

    def test_corruption_is_caught_by_the_frame_crc(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(CORRUPT, direction="c2s"),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            send_frame(sock, {"poison": "p" * 500})
            assert wait_until(lambda: sink.errors)
            sock.close()
            assert sink.units == []
            assert isinstance(sink.errors[0], FrameCorruptionError)
            assert "checksum mismatch" in str(sink.errors[0])
            assert proxy.stats()["corrupted"] == 1

    def test_duplicate_forwards_the_frame_twice(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(DUPLICATE, direction="c2s"),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            for i in range(3):
                send_frame(sock, {"i": i})
            sock.close()
            assert wait_until(lambda: len(sink.units) == 6)
            assert sink.units == [{"i": 0}, {"i": 0}, {"i": 1},
                                  {"i": 1}, {"i": 2}, {"i": 2}]
            assert proxy.stats()["duplicated"] == 3

    def test_reorder_holds_a_frame_until_the_next(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(REORDER, direction="c2s"),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            for i in range(3):
                send_frame(sock, {"i": i})
            sock.close()
            # Frame 0 held until 1 arrives; 2 held, flushed at EOF.
            assert wait_until(lambda: len(sink.units) == 3)
            assert sink.units == [{"i": 1}, {"i": 0}, {"i": 2}]
            assert proxy.stats()["reordered"] == 2

    def test_reset_cuts_the_connection_at_the_indexed_frame(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(RESET, direction="c2s", frame_at=2),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            with pytest.raises(OSError):
                for i in range(50):
                    send_frame(sock, {"i": i, "pad": "x" * 2000})
                    time.sleep(0.01)
                # The RST may land after every send succeeded; force
                # the error surface by reading the dead socket.
                sock.settimeout(5.0)
                while True:
                    if sock.recv(1024) == b"":
                        raise ConnectionResetError("peer closed")
            sock.close()
            assert wait_until(
                lambda: proxy.stats()["resets"] == 1)
            assert len(sink.units) <= 2

    def test_half_open_silently_swallows_frames(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(HALF_OPEN, direction="c2s", frame_at=1),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            for i in range(4):
                send_frame(sock, {"i": i})  # never raises: socket is up
            assert wait_until(
                lambda: proxy.stats()["dropped"] == 3)
            sock.close()
            assert sink.units == [{"i": 0}]
            assert not sink.errors

    def test_truncate_delivers_a_partial_frame_then_resets(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(TRUNCATE, direction="c2s"),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            send_frame(sock, {"big": "y" * 5000})
            assert wait_until(lambda: sink.errors)
            sock.close()
            assert sink.units == []
            stats = proxy.stats()
            assert stats["truncated"] == 1
            assert stats["resets"] == 1

    def test_timing_faults_never_change_payloads(self):
        schedule = ChaosSchedule(seed=1, events=(
            ChaosEvent(LATENCY, at=0.0, duration=60.0,
                       latency_s=0.01, jitter_s=0.01),
            ChaosEvent(SLOW_LORIS, at=0.0, duration=60.0,
                       chunk_bytes=64, delay_s=0.001),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            payloads = [{"i": i, "blob": "z" * 400} for i in range(3)]
            for obj in payloads:
                send_frame(sock, obj)
            sock.close()
            assert wait_until(lambda: len(sink.units) == 3)
            assert sink.units == payloads
            assert not sink.errors


class TestLinesMode:
    @staticmethod
    def checksummed_line(**obj):
        obj["crc"] = line_checksum(obj)
        return (json.dumps(obj, sort_keys=True) + "\n").encode()

    def test_line_corruption_fails_the_line_checksum(self):
        schedule = ChaosSchedule(seed=2, mode="lines", events=(
            ChaosEvent(CORRUPT, direction="c2s"),))
        with Collector("lines") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            line = self.checksummed_line(op="read", nbytes=4096,
                                         start=0.0, end=0.01)
            sock.sendall(line)
            sock.close()
            assert wait_until(lambda: len(sink.units) == 1)
            received = sink.units[0]
            assert received != line
            assert received.endswith(b"\n")  # newline spared: framing intact
            # However the flipped byte lands — undecodable bytes,
            # broken JSON, or still-valid JSON with a stale crc — the
            # line must never be believed.
            with pytest.raises((TraceFormatError, UnicodeDecodeError,
                                json.JSONDecodeError)):
                verify_checksum(json.loads(received))
            assert proxy.stats()["corrupted"] == 1

    def test_duplicate_and_reorder_operate_on_whole_lines(self):
        schedule = ChaosSchedule(seed=2, mode="lines", events=(
            ChaosEvent(DUPLICATE, direction="c2s", frame_at=0,
                       frame_count=1),
            ChaosEvent(REORDER, direction="c2s", frame_at=1,
                       frame_count=1),))
        with Collector("lines") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)
            lines = [json.dumps({"seq": i}).encode() + b"\n"
                     for i in range(3)]
            for line in lines:
                sock.sendall(line)
            sock.close()
            # line0 duplicated; line1 held and released when line2 lands.
            assert wait_until(lambda: len(sink.units) == 4)
            assert sink.units == [lines[0], lines[0],
                                  lines[2], lines[1]]


class TestLifecycle:
    def test_partition_refuses_then_heals(self):
        schedule = ChaosSchedule(seed=3, events=(
            ChaosEvent(PARTITION, at=0.0, duration=0.6),))
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, schedule) as proxy:
            sock = connect(proxy)  # accepted, then refused mid-partition
            assert sock.recv(1024) == b""  # proxy closed it
            sock.close()
            assert wait_until(
                lambda: proxy.stats()["rejected"] >= 1)
            time.sleep(0.7)  # outlive the partition window
            sock = connect(proxy)
            send_frame(sock, {"healed": True})
            sock.close()
            assert wait_until(lambda: sink.units == [{"healed": True}])

    def test_double_start_is_an_error(self):
        with Collector("frames") as sink:
            proxy = ChaosProxy(sink.address, ChaosSchedule(seed=0))
            proxy.start()
            try:
                with pytest.raises(ChaosError, match="already started"):
                    proxy.start()
            finally:
                proxy.stop()

    def test_stats_is_a_snapshot_copy(self):
        with Collector("frames") as sink, \
                ChaosProxy(sink.address, ChaosSchedule(seed=0)) as proxy:
            snapshot = proxy.stats()
            snapshot["forwarded"] = 999
            assert proxy.stats()["forwarded"] == 0
