"""The ``bps chaos`` invariant runner end-to-end.

These are the expensive tests in the chaos suite: they stand up real
daemons (grid workers / the serve daemon) behind live chaos proxies
and assert the hardened protocols keep results bit-identical. The
schedules here are the defaults the CI smoke job replays.
"""

import pytest

from repro.chaos import (
    ChaosEvent,
    ChaosSchedule,
    default_grid_schedule,
    default_serve_schedule,
    run_chaos,
    run_grid_check,
    run_serve_check,
    synthetic_records,
)
from repro.core.metrics import compute_metrics
from repro.core.records import TraceCollection
from repro.errors import ChaosError
from repro.experiments import ExperimentScale


class TestHelpers:
    def test_synthetic_records_are_deterministic(self):
        a = synthetic_records(50)
        b = synthetic_records(50)
        assert a == b
        assert len(a) == 50
        metrics = compute_metrics(TraceCollection(a),
                                  exec_time=a[-1].end)
        assert metrics.app_ops == 50
        assert metrics.bps > 0

    def test_default_schedules_have_the_right_modes(self):
        assert default_grid_schedule(1).mode == "frames"
        assert default_serve_schedule(1).mode == "lines"
        # Same seed, same schedule: the CI job replays by seed alone.
        assert default_grid_schedule(9) == default_grid_schedule(9)
        assert default_serve_schedule(9) == default_serve_schedule(9)


class TestModeValidation:
    def test_grid_check_rejects_a_lines_schedule(self):
        with pytest.raises(ChaosError, match="frames"):
            run_grid_check(ChaosSchedule(seed=0, mode="lines"))

    def test_serve_check_rejects_a_frames_schedule(self):
        with pytest.raises(ChaosError, match="lines"):
            run_serve_check(ChaosSchedule(seed=0, mode="frames"))

    def test_run_chaos_rejects_unknown_check_names(self):
        with pytest.raises(ChaosError, match="unknown chaos check"):
            run_chaos(checks=("grid", "smoke"))


class TestServeInvariant:
    def test_reconnecting_tenant_is_bit_identical_to_batch(self):
        report = run_serve_check(seed=7, records=300)
        assert report["passed"], report
        assert report["records"] == 300
        tenant = report["tenant"]
        assert tenant["records_admitted"] == 300
        # The run must have actually been chaotic, not a quiet pass:
        # the schedule resets connections, so the client reconnected
        # and the replayed prefixes were deduplicated by seq.
        assert report["client"]["connects"] >= 2
        assert tenant["resumed_sessions"] >= 1
        assert tenant["duplicate_records"] >= 1

    def test_quiet_schedule_passes_without_degradation(self):
        quiet = ChaosSchedule(seed=0, mode="lines")
        report = run_serve_check(quiet, records=100)
        assert report["passed"], report
        assert report["client"]["connects"] == 1
        # The finalize pass reattaches with the resume token (one
        # resumed session by design); nothing was ever replayed.
        assert report["tenant"]["duplicate_records"] == 0
        assert report["tenant"]["quarantined_lines"] == 0


class TestGridInvariant:
    def test_chaotic_socket_sweep_matches_serial(self):
        report = run_grid_check(
            seed=11, workers=2,
            scale=ExperimentScale(factor=0.25, repetitions=2))
        assert report["passed"], report
        assert report["mismatched_cells"] == 0
        assert report["cells"] > 0
        # Degradation lands in the accounting, never in the results.
        supervision = report["supervision"]
        assert supervision["jobs"] == report["cells"]
        stats = report["proxies"]
        assert sum(s["connections"] for s in stats) >= 2

    def test_grid_check_survives_an_aggressive_duplicate_storm(self):
        schedule = ChaosSchedule(seed=5, events=(
            ChaosEvent("duplicate", direction="s2c", frame_at=1),))
        report = run_grid_check(
            schedule, workers=1,
            scale=ExperimentScale(factor=0.25, repetitions=1))
        assert report["passed"], report
        assert report["supervision"]["duplicate_results"] >= 1
