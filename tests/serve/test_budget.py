"""Ingest budgets and the load-shedding ladder (deterministic clock)."""

import pytest

from repro.errors import ServeError
from repro.serve.budget import (
    SHED_LADDER,
    IngestMeter,
    TenantBudget,
    clamp_positive,
    resolve_serve_ingest,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTenantBudget:
    def test_defaults_are_unlimited(self):
        budget = TenantBudget()
        assert budget.unlimited
        assert budget.max_pending == 4096

    @pytest.mark.parametrize("kwargs", [
        {"max_bytes_per_sec": 0},
        {"max_bytes_per_sec": -1},
        {"max_records_per_sec": 0.0},
        {"max_pending": 0},
        {"burst_seconds": 0.0},
        {"shed_factor": 0.5},
        {"evict_after_sheds": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ServeError):
            TenantBudget(**kwargs)

    def test_ladder_names(self):
        assert SHED_LADDER == ("exact", "throttle", "force", "shed",
                               "evict")


class TestIngestMeter:
    def test_unlimited_admits_everything(self):
        meter = IngestMeter(TenantBudget(), clock=FakeClock())
        for _ in range(1000):
            assert meter.admit(1 << 20).admitted
        assert meter.records_admitted == 1000
        assert meter.rung == 0
        assert meter.counters()["rung_name"] == "exact"

    def test_within_budget_is_exact(self):
        clock = FakeClock()
        budget = TenantBudget(max_records_per_sec=10, burst_seconds=1.0)
        meter = IngestMeter(budget, clock=clock)
        # Bucket capacity is 10 records; 10 instant admits are free.
        for _ in range(10):
            out = meter.admit(100)
            assert out.action == "admit" and out.delay == 0.0
        assert meter.rung == 0

    def test_throttle_rung_owes_delay(self):
        clock = FakeClock()
        budget = TenantBudget(max_records_per_sec=10, burst_seconds=1.0)
        meter = IngestMeter(budget, clock=clock)
        for _ in range(10):
            meter.admit(0)
        out = meter.admit(0)  # level -1: owes 0.1s at 10 rec/s
        assert out.action == "admit"
        assert out.rung == 1
        assert out.delay == pytest.approx(0.1)
        assert meter.rung == 1
        assert meter.throttled_seconds == pytest.approx(0.1)
        assert meter.records_admitted == 11

    def test_refill_restores_exactness(self):
        clock = FakeClock()
        budget = TenantBudget(max_records_per_sec=10, burst_seconds=1.0)
        meter = IngestMeter(budget, clock=clock)
        for _ in range(11):
            meter.admit(0)
        clock.advance(10.0)  # fully refilled (capped at capacity)
        assert meter.admit(0).delay == 0.0

    def test_shed_rung_accounts_exactly(self):
        clock = FakeClock()
        budget = TenantBudget(max_records_per_sec=10, burst_seconds=1.0,
                              shed_factor=2.0)
        meter = IngestMeter(budget, clock=clock)
        outcomes = [meter.admit(64) for _ in range(100)]
        sheds = [o for o in outcomes if o.action == "shed"]
        admits = [o for o in outcomes if o.admitted]
        assert sheds and all(o.rung == 3 for o in sheds)
        assert meter.records_shed == len(sheds)
        assert meter.bytes_shed == 64 * len(sheds)
        assert meter.records_admitted == len(admits)
        assert meter.records_admitted + meter.records_shed == 100
        # Arrears are bounded: level never dives past shed_factor
        # depths, so the worst throttle delay is bounded too.
        assert max(o.delay for o in admits) <= \
            budget.shed_factor * budget.burst_seconds + 0.1

    def test_evict_rung_after_shed_budget(self):
        clock = FakeClock()
        budget = TenantBudget(max_records_per_sec=10, burst_seconds=1.0,
                              shed_factor=1.0, evict_after_sheds=5)
        meter = IngestMeter(budget, clock=clock)
        last = None
        for _ in range(200):
            last = meter.admit(0)
            if last.action == "evict":
                break
        assert last is not None and last.action == "evict"
        assert last.rung == 4
        assert meter.evicted
        assert meter.records_shed == budget.evict_after_sheds + 1
        # Once evicted, everything is refused.
        assert meter.admit(0).action == "evict"
        assert meter.counters()["rung_name"] == "evict"

    def test_bytes_budget_axis(self):
        clock = FakeClock()
        budget = TenantBudget(max_bytes_per_sec=1000, burst_seconds=1.0,
                              shed_factor=1.0)
        meter = IngestMeter(budget, clock=clock)
        assert meter.admit(1000).delay == 0.0  # spends the full bucket
        out = meter.admit(3000)  # arrears 3 depths > shed_factor
        assert out.action == "shed"
        assert meter.bytes_shed == 3000
        assert meter.bytes_admitted == 1000


class TestClamping:
    def test_clamp_garbage_warns_and_defaults(self):
        with pytest.warns(RuntimeWarning, match="must be an integer"):
            assert clamp_positive("knob", "banana", 7) == 7

    def test_clamp_below_minimum_warns(self):
        with pytest.warns(RuntimeWarning, match="clamping"):
            assert clamp_positive("knob", -3, 7, minimum=1) == 1

    def test_valid_value_is_silent(self):
        assert clamp_positive("knob", "12", 7) == 12

    def test_resolve_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_CHUNK_SIZE", raising=False)
        monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
        assert resolve_serve_ingest(None, None) == (0, 0)

    def test_resolve_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CHUNK_SIZE", "512")
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "0")
        assert resolve_serve_ingest(None, None) == (512, 0)

    def test_resolve_garbage_env_never_crashes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CHUNK_SIZE", "lots")
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "-4")
        with pytest.warns(RuntimeWarning):
            chunk, workers = resolve_serve_ingest(None, None)
        assert (chunk, workers) == (0, 0)

    def test_resolve_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_CHUNK_SIZE", "512")
        assert resolve_serve_ingest(128, 0) == (128, 0)

    def test_workers_imply_chunked_ingest(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        chunk, workers = resolve_serve_ingest(0, 2)
        assert workers == 2
        assert chunk == 4096  # sharding rides on chunked ingest

    def test_single_worker_collapses_to_inline(self):
        assert resolve_serve_ingest(0, 1) == (0, 0)

    def test_workers_clamped_to_cores(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        with pytest.warns(RuntimeWarning, match="cpu core"):
            chunk, workers = resolve_serve_ingest(256, 64)
        assert workers == 4
        assert chunk == 256

    def test_unreasonable_chunk_clamped(self):
        with pytest.warns(RuntimeWarning, match="unreasonable"):
            chunk, _ = resolve_serve_ingest(1 << 24, 0)
        assert chunk == 1 << 20
