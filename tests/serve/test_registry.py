"""Registry: bounded rosters, idle eviction, aggregated views."""

import json

import pytest

from repro.core.records import IORecord
from repro.errors import ServeError
from repro.live.sinks import format_prometheus
from repro.serve.registry import ServeConfig, TenantRegistry
from repro.serve.tenant import ACTIVE, DRAINED


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_registry(clock=None, **kwargs):
    return TenantRegistry(ServeConfig(**kwargs),
                          clock=clock or FakeClock())


def feed(tenant, n=20):
    for i in range(n):
        tenant.feed_record(IORecord(
            pid=1, op="read", nbytes=4096,
            start=i * 0.01, end=i * 0.01 + 0.02))


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"window": 0.0},
        {"max_tenants": 0},
        {"idle_timeout": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ServeError):
            ServeConfig(**kwargs)


class TestCreation:
    def test_get_or_create_is_idempotent(self):
        registry = make_registry()
        a = registry.get_or_create("a")
        assert registry.get_or_create("a") is a
        assert registry.tenants_created == 1

    def test_invalid_name_rejected(self):
        registry = make_registry()
        with pytest.raises(ServeError, match="invalid tenant name"):
            registry.get_or_create("../etc/passwd")

    def test_fleet_bound_refuses_new_tenants(self):
        registry = make_registry(max_tenants=2)
        registry.get_or_create("a")
        registry.get_or_create("b")
        with pytest.raises(ServeError, match="tenant limit"):
            registry.get_or_create("c")
        assert registry.rejected_creates == 1
        # Existing tenants still resolve.
        assert registry.get_or_create("a").name == "a"

    def test_terminal_tenants_free_their_slot(self):
        registry = make_registry(max_tenants=1)
        a = registry.get_or_create("a")
        a.end()
        registry.note_terminal(a)
        assert registry.get_or_create("b").name == "b"


class TestIdleEviction:
    def test_idle_tenant_evicted_with_final_flush(self):
        clock = FakeClock()
        registry = make_registry(clock=clock, idle_timeout=10.0)
        tenant = registry.get_or_create("a")
        feed(tenant)
        clock.advance(11.0)
        evicted = registry.evict_idle()
        assert [t.name for t in evicted] == ["a"]
        assert tenant.state == DRAINED
        assert tenant.result is not None
        assert "idle" in tenant.state_reason
        assert registry.tenants_evicted_idle == 1

    def test_active_tenant_survives(self):
        clock = FakeClock()
        registry = make_registry(clock=clock, idle_timeout=10.0)
        tenant = registry.get_or_create("a")
        feed(tenant)
        clock.advance(5.0)
        assert registry.evict_idle() == []
        assert tenant.state == ACTIVE

    def test_no_timeout_means_no_eviction(self):
        clock = FakeClock()
        registry = make_registry(clock=clock, idle_timeout=None)
        registry.get_or_create("a")
        clock.advance(1e9)
        assert registry.evict_idle() == []


class TestTerminalRoster:
    def test_oldest_terminal_dropped_past_cap(self):
        registry = make_registry(max_terminal=2)
        for name in ("a", "b", "c"):
            tenant = registry.get_or_create(name)
            tenant.end()
            registry.note_terminal(tenant)
        assert registry.tenants_dropped == 1
        assert "a" not in registry.tenants
        assert set(registry.tenants) == {"b", "c"}

    def test_drain_all_finalizes_everything(self):
        registry = make_registry()
        for name in ("a", "b"):
            feed(registry.get_or_create(name))
        drained = registry.drain_all("test drain")
        assert {t.name for t in drained} == {"a", "b"}
        for tenant in drained:
            assert tenant.state == DRAINED
            assert tenant.result is not None


class TestAggregatedViews:
    def test_prometheus_text_has_one_label_set_per_tenant(self):
        registry = make_registry()
        for name in ("a", "b"):
            feed(registry.get_or_create(name))
        text = registry.prometheus_text()
        assert 'repro_live_bps{tenant="a",scope="cumulative"}' in text
        assert 'repro_live_bps{tenant="b",scope="cumulative"}' in text
        assert 'repro_live_anomalies_total{tenant="a"} 0' in text

    def test_file_and_scrape_expositions_identical(self, tmp_path):
        prom = tmp_path / "serve.prom"
        registry = make_registry(prom_out=str(prom))
        for name in ("a", "b"):
            feed(registry.get_or_create(name))
        text = registry.prometheus_text()
        registry.write_prom_file()
        # Identical by construction: both render through
        # format_prometheus over the same tenant states.
        assert prom.read_text() == registry.prometheus_text()
        assert text == format_prometheus(
            [registry.tenants[n].prom_state() for n in ("a", "b")])

    def test_statuses_payload_is_json_clean(self):
        registry = make_registry()
        feed(registry.get_or_create("a"))
        payload = registry.statuses()
        parsed = json.loads(json.dumps(payload))
        assert parsed["counters"]["tenants_created"] == 1
        assert parsed["counters"]["tenants_active"] == 1
        assert parsed["tenants"][0]["tenant"] == "a"

    def test_out_dir_gets_per_tenant_jsonl(self, tmp_path):
        out = tmp_path / "events"
        registry = make_registry(out_dir=str(out))
        tenant = registry.get_or_create("a")
        feed(tenant)
        tenant.end()
        lines = [json.loads(line) for line in
                 (out / "a.jsonl").read_text().splitlines()]
        assert lines[-1]["type"] == "final"
        assert lines[-1]["ops"] == 20
