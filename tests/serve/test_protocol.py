"""Wire protocol: JSONL stream lines and the minimal HTTP layer."""

import asyncio
import json

import pytest

from repro.core.records import IORecord
from repro.errors import ServeError, TraceFormatError
from repro.serve.protocol import (
    MAX_HTTP_BODY_BYTES,
    HttpError,
    control_line,
    decode_stream_line,
    http_response,
    json_response,
    read_http_request,
    record_line,
    validate_tenant_name,
)


class TestStreamLines:
    def test_record_line_round_trips(self):
        record = IORecord(pid=3, op="write", nbytes=8192, start=1.5,
                          end=1.75)
        kind, decoded = decode_stream_line(
            record_line(record).decode())
        assert kind == "record"
        assert (decoded.pid, decoded.op, decoded.nbytes) == \
            (3, "write", 8192)
        assert (decoded.start, decoded.end) == (1.5, 1.75)

    def test_control_lines(self):
        kind, payload = decode_stream_line(
            '{"type": "hello", "tenant": "a"}')
        assert kind == "control" and payload["tenant"] == "a"
        kind, payload = decode_stream_line('{"type": "end"}')
        assert kind == "control"

    def test_blanks_and_comments_are_none(self):
        assert decode_stream_line("") is None
        assert decode_stream_line("   \n") is None
        assert decode_stream_line("# comment\n") is None

    def test_malformed_json_raises_format_error(self):
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            decode_stream_line("{nope")

    def test_missing_keys_raise_format_error(self):
        with pytest.raises(TraceFormatError, match="missing keys"):
            decode_stream_line('{"pid": 1}')

    def test_unknown_control_type_is_a_bad_record(self):
        # Only hello/end are control words; anything else must hold
        # record keys or be rejected.
        with pytest.raises(TraceFormatError):
            decode_stream_line('{"type": "restart"}')

    def test_server_control_line_shape(self):
        line = control_line("ack", tenant="a", records=7)
        obj = json.loads(line.decode())
        assert obj == {"type": "ack", "tenant": "a", "records": 7}
        assert line.endswith(b"\n")


class TestTenantNames:
    @pytest.mark.parametrize("name", ["a", "job-1", "ns:rank0",
                                      "A.b_c-9", "x" * 64])
    def test_valid(self, name):
        assert validate_tenant_name(name) == name

    @pytest.mark.parametrize("name", ["", "..", "../etc", "a/b",
                                      "a b", "-lead", ".hidden",
                                      "x" * 65, 7, None])
    def test_invalid(self, name):
        with pytest.raises(ServeError, match="invalid tenant name"):
            validate_tenant_name(name)


def parse(payload: bytes):
    """Feed raw bytes to a StreamReader and parse one request."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await read_http_request(reader)
    return asyncio.run(run())


class TestHttp:
    def test_get_round_trip(self):
        request = parse(b"GET /metrics HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/metrics"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_body_via_content_length(self):
        body = b'{"pid": 1}\n'
        request = parse(b"POST /ingest/a HTTP/1.1\r\n"
                        b"Content-Length: %d\r\n\r\n%s"
                        % (len(body), body))
        assert request.method == "POST"
        assert request.body == body

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_truncated_request_raises_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET /metrics HTTP/1.1\r\n")
        assert err.value.status == 400

    def test_bad_request_line_raises_400(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400

    def test_oversize_body_raises_413(self):
        with pytest.raises(HttpError) as err:
            parse(b"POST /ingest/a HTTP/1.1\r\n"
                  b"Content-Length: %d\r\n\r\n"
                  % (MAX_HTTP_BODY_BYTES + 1))
        assert err.value.status == 413

    def test_response_shape(self):
        raw = http_response(200, "ok", content_type="text/plain")
        assert raw.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2\r\n" in raw
        assert b"Connection: close\r\n" in raw
        assert raw.endswith(b"\r\n\r\nok")

    def test_json_response_parses_back(self):
        raw = json_response(404, {"error": "nope"})
        body = raw.split(b"\r\n\r\n", 1)[1]
        assert json.loads(body) == {"error": "nope"}
