"""Tenant lifecycle: exactness, salvage, crash isolation, budgets."""

import json

import pytest

from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.live import MemorySink
from repro.serve.budget import TenantBudget
from repro.serve.tenant import (
    ACTIVE,
    DRAINED,
    EVICTED,
    QUARANTINED,
    Tenant,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def steady_records(n=200, gap=0.005, dur=0.012, nbytes=4096):
    return [
        IORecord(pid=i % 3, op="read" if i % 2 else "write",
                 nbytes=nbytes, start=i * gap, end=i * gap + dur)
        for i in range(n)
    ]


def record_json(record):
    return json.dumps({"pid": record.pid, "op": record.op,
                       "nbytes": record.nbytes, "start": record.start,
                       "end": record.end})


def make_tenant(**kwargs):
    kwargs.setdefault("window", 0.1)
    kwargs.setdefault("clock", FakeClock())
    return Tenant("t", **kwargs)


class TestExactness:
    @pytest.mark.parametrize("chunk_size", [0, 64])
    def test_final_metrics_bit_identical_to_batch(self, chunk_size):
        records = steady_records()
        tenant = make_tenant(chunk_size=chunk_size)
        for record in records:
            assert tenant.feed_record(record).kind == "ok"
        result = tenant.end()
        assert tenant.state == DRAINED
        batch = compute_metrics(TraceCollection(records),
                                exec_time=result.metrics.exec_time)
        assert result.metrics.bps == batch.bps
        assert result.metrics.union_io_time == batch.union_io_time
        assert result.metrics.app_ops == batch.app_ops

    def test_windows_match_a_plain_stream(self):
        from repro.live import MetricStream
        records = steady_records(n=120)
        tenant = make_tenant()
        for record in records:
            tenant.feed_record(record)
        result = tenant.end()
        reference = MetricStream(window=0.1)
        for record in records:
            reference.ingest(record)
        expected = reference.finalize()
        assert len(result.windows) == len(expected.windows)
        for got, want in zip(result.windows, expected.windows):
            assert (got.index, got.ops, got.blocks) == \
                (want.index, want.ops, want.blocks)
            assert got.io_time == want.io_time
            assert got.bps == want.bps

    def test_sharded_workers_bit_identical(self):
        records = steady_records(n=600)
        tenant = make_tenant(workers=2, chunk_size=100)
        for record in records:
            assert tenant.feed_record(record).kind == "ok"
        result = tenant.end()
        assert result is not None
        batch = compute_metrics(TraceCollection(records),
                                exec_time=result.metrics.exec_time)
        assert result.metrics.bps == batch.bps
        assert result.metrics.union_io_time == batch.union_io_time

    def test_workers_force_chunked_ingest(self):
        tenant = make_tenant(workers=2, chunk_size=0)
        assert tenant.chunk_size > 0  # sharded engine is chunk-only


class TestFeedLines:
    def test_feed_line_decodes_and_ingests(self):
        tenant = make_tenant()
        out = tenant.feed_line(record_json(steady_records(1)[0]))
        assert out.kind == "ok"
        assert tenant.stream.ops == 1

    def test_blank_and_comment_lines_are_free(self):
        tenant = make_tenant()
        assert tenant.feed_line("") is None
        assert tenant.feed_line("# note") is None
        assert tenant._session.report.lines_seen == 0

    def test_control_passthrough(self):
        tenant = make_tenant()
        out = tenant.feed_line('{"type": "end"}')
        assert out.kind == "control"
        assert out.control["type"] == "end"
        assert tenant.state == ACTIVE  # the server decides, not the feed


class TestSalvage:
    def test_garbage_stream_quarantines(self):
        tenant = make_tenant(max_error_ratio=0.25)
        last = None
        for i in range(200):
            last = tenant.feed_line(f"garbage {i}")
            if last.kind == "quarantined":
                break
        assert last.kind == "quarantined"
        assert tenant.state == QUARANTINED
        assert "budget" in tenant.state_reason
        # Terminal: further lines are refused, not crashed on.
        assert tenant.feed_line("more garbage").kind == "closed"

    def test_occasional_garbage_is_salvaged(self):
        records = steady_records(n=90)
        tenant = make_tenant(max_error_ratio=0.25)
        for i, record in enumerate(records):
            tenant.feed_record(record)
            if i % 10 == 0:
                out = tenant.feed_line("{bad json")
                assert out.kind == "bad-line"
        assert tenant.state == ACTIVE
        result = tenant.end()
        assert result.metrics.app_ops == len(records)
        assert tenant.quarantine_report.skipped == 9

    def test_strict_mode_quarantines_on_first_bad_line(self):
        tenant = make_tenant(error_mode="strict")
        out = tenant.feed_line("nonsense")
        assert out.kind == "quarantined"
        assert tenant.state == QUARANTINED


class TestCrashIsolation:
    def test_internal_crash_quarantines_not_raises(self):
        tenant = make_tenant()

        def boom(record):
            raise RuntimeError("kaboom")

        tenant.stream.ingest = boom
        out = tenant.feed_record(steady_records(1)[0])
        assert out.kind == "quarantined"
        assert tenant.state == QUARANTINED
        assert "kaboom" in tenant.crash_error
        assert "kaboom" in tenant.status()["crash_error"]

    def test_terminate_swallows_finalize_failures(self):
        tenant = make_tenant()
        tenant.feed_record(steady_records(1)[0])

        def boom(**kwargs):
            raise RuntimeError("settle failed")

        tenant.stream.finalize = boom
        result = tenant.end()  # must not raise
        assert result is None
        assert tenant.state == DRAINED
        assert "settle failed" in tenant.crash_error


class TestBudgets:
    def test_shed_records_never_reach_the_stream(self):
        clock = FakeClock()
        budget = TenantBudget(max_records_per_sec=10,
                              burst_seconds=1.0, shed_factor=1.0)
        tenant = make_tenant(budget=budget, clock=clock)
        outcomes = [tenant.feed_record(r)
                    for r in steady_records(n=100)]
        sheds = sum(1 for o in outcomes if o.kind == "shed")
        oks = sum(1 for o in outcomes if o.kind == "ok")
        assert sheds > 0
        assert tenant.stream.ops == oks
        assert tenant.meter.records_shed == sheds
        status = tenant.status()
        assert status["budget"]["records_shed"] == sheds
        assert status["records"] == oks

    def test_shed_budget_exhaustion_evicts_with_flush(self):
        clock = FakeClock()
        sink = MemorySink()
        budget = TenantBudget(max_records_per_sec=10,
                              burst_seconds=1.0, shed_factor=1.0,
                              evict_after_sheds=3)
        tenant = make_tenant(budget=budget, clock=clock, sinks=[sink])
        last = None
        for record in steady_records(n=500):
            last = tenant.feed_record(record)
            if last.kind == "evicted":
                break
        assert last.kind == "evicted"
        assert tenant.state == EVICTED
        # The admitted totals were finalized and flushed on the way out.
        finals = sink.of_type("final")
        assert len(finals) == 1
        assert finals[0]["ops"] == tenant.meter.records_admitted
        assert tenant.result is not None


class TestLifecycle:
    def test_end_is_idempotent(self):
        tenant = make_tenant()
        tenant.feed_record(steady_records(1)[0])
        first = tenant.end()
        assert tenant.end() is first

    def test_empty_tenant_drains_without_result(self):
        sink = MemorySink()
        tenant = make_tenant(sinks=[sink])
        assert tenant.end() is None
        assert tenant.state == DRAINED
        assert sink.closed  # sinks still settle

    def test_idle_seconds_tracks_clock(self):
        clock = FakeClock()
        tenant = make_tenant(clock=clock)
        tenant.feed_record(steady_records(1)[0])
        clock.advance(42.0)
        assert tenant.idle_seconds == pytest.approx(42.0)

    def test_status_and_prom_state_shape(self):
        tenant = make_tenant()
        for record in steady_records(n=30):
            tenant.feed_record(record)
        tenant.refresh_snapshot()
        labels, latest, _window, anomalies, last_severity = \
            tenant.prom_state()
        assert labels == {"tenant": "t"}
        assert latest["ops"] == 30
        assert anomalies == 0
        assert last_severity is None
        status = tenant.status()
        assert status["state"] == ACTIVE
        assert status["records"] == 30
        assert status["max_pending"] == 4096
        tenant.end()
        status = tenant.status()
        assert status["state"] == DRAINED
        assert status["final"]["ops"] == 30
        assert status["final"]["bps"] > 0
