"""Daemon end-to-end: isolation under chaos, drain, HTTP surface.

No pytest-asyncio in this toolkit: every test drives its own event
loop through ``run_async``, which also wraps the whole scenario in an
``asyncio.wait_for`` so a hung daemon fails the test inside the
timeout instead of hanging the suite.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys

import pytest

from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.serve.budget import TenantBudget
from repro.serve.registry import ServeConfig
from repro.serve.server import BpsServer
from repro.serve.tenant import ACTIVE, DRAINED, EVICTED, QUARANTINED

TIMEOUT = 45.0


def run_async(coro):
    """asyncio-safe timeout wrapper: a hung scenario fails, fast."""
    async def bounded():
        return await asyncio.wait_for(coro, TIMEOUT)
    return asyncio.run(bounded())


def steady_records(n, gap=0.005, dur=0.012, nbytes=4096, pid=1):
    return [
        IORecord(pid=pid, op="read" if i % 2 else "write",
                 nbytes=nbytes, start=i * gap, end=i * gap + dur)
        for i in range(n)
    ]


def record_json(record):
    return json.dumps({"pid": record.pid, "op": record.op,
                       "nbytes": record.nbytes, "start": record.start,
                       "end": record.end}) + "\n"


async def start_server(**config_kwargs) -> BpsServer:
    server = BpsServer(ServeConfig(**config_kwargs),
                       tcp="127.0.0.1:0", http="127.0.0.1:0")
    await server.start()
    return server


async def open_stream(server):
    host, port = server.addresses["tcp"]
    return await asyncio.open_connection(host, port)


async def hello(server, name):
    reader, writer = await open_stream(server)
    writer.write(json.dumps({"type": "hello", "tenant": name})
                 .encode() + b"\n")
    await writer.drain()
    welcome = json.loads(await reader.readline())
    assert welcome["type"] == "welcome", welcome
    return reader, writer


async def stream_records(writer, records):
    for record in records:
        writer.write(record_json(record).encode())
    await writer.drain()


async def end_stream(reader, writer):
    writer.write(b'{"type": "end"}\n')
    await writer.drain()
    while True:  # skip acks; the result line closes the stream
        line = await reader.readline()
        obj = json.loads(line)
        if obj["type"] != "ack":
            return obj


async def http_request(server, method, path, body=b""):
    host, port = server.addresses["http"]
    reader, writer = await asyncio.open_connection(host, port)
    head = (f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
            f"Content-Length: {len(body)}\r\n\r\n")
    writer.write(head.encode() + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    payload = raw.split(b"\r\n\r\n", 1)[1]
    return status, payload


class TestStreamProtocol:
    def test_hello_stream_end_is_bit_identical_to_batch(self):
        records = steady_records(300)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer = await hello(server, "jobA")
                await stream_records(writer, records)
                result = await end_stream(reader, writer)
                writer.close()
                return result
            finally:
                await server.drain()

        result = run_async(scenario())
        assert result["type"] == "result"
        assert result["state"] == "drained"
        final = result["final"]
        batch = compute_metrics(TraceCollection(records),
                                exec_time=final["exec_time"])
        assert final["bps"] == batch.bps
        assert final["union_io_time"] == batch.union_io_time
        assert final["ops"] == len(records)

    def test_auto_named_tenant_without_hello(self):
        records = steady_records(50)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer = await open_stream(server)
                await stream_records(writer, records)
                result = await end_stream(reader, writer)
                writer.close()
                return result
            finally:
                await server.drain()

        result = run_async(scenario())
        assert result["tenant"].startswith("conn-")
        assert result["final"]["ops"] == len(records)

    def test_oversized_first_line_is_rejected_cleanly(self):
        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer = await open_stream(server)
                writer.write(b"x" * (2 << 20) + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())
            finally:
                await server.drain()

        reply = run_async(scenario())
        assert reply["type"] == "error"
        assert "line bound" in reply["error"]

    def test_tenant_limit_refused_over_the_wire(self):
        async def scenario():
            server = await start_server(window=0.1, max_tenants=1)
            try:
                await hello(server, "a")
                reader, writer = await open_stream(server)
                writer.write(b'{"type": "hello", "tenant": "b"}\n')
                await writer.drain()
                return json.loads(await reader.readline())
            finally:
                await server.drain()

        reply = run_async(scenario())
        assert reply["type"] == "error"
        assert "tenant limit" in reply["error"]


class TestIsolationUnderChaos:
    """The acceptance scenario: three misbehaving neighbours, one
    clean tenant whose numbers must come out bit-identical anyway."""

    def test_clean_tenant_is_unaffected_by_chaos(self, tmp_path):
        clean_records = steady_records(30)
        flood_records = steady_records(2000, gap=0.001, pid=7)
        prom_path = tmp_path / "serve.prom"
        budget = TenantBudget(max_records_per_sec=2000,
                              burst_seconds=0.02, shed_factor=1.0,
                              evict_after_sheds=40)

        async def scrape(server):
            status, body = await http_request(server, "GET", "/metrics")
            assert status == 200
            return body.decode()

        async def scenario():
            server = await start_server(
                window=0.1, budget=budget, error_mode="salvage",
                max_error_ratio=0.25, prom_out=str(prom_path),
                out_dir=str(tmp_path / "events"), write_timeout=5.0)
            try:
                # Tenant 1: the flooder — one giant HTTP burst the
                # handler cannot pace mid-body, so the token bucket
                # runs into arrears, sheds, and finally evicts.
                flood_body = "".join(
                    record_json(r) for r in flood_records).encode()
                flood_task = asyncio.create_task(http_request(
                    server, "POST", "/ingest/flooder", flood_body))

                # Tenant 2: 100% garbage until quarantined.
                g_reader, g_writer = await hello(server, "garbage")
                for i in range(80):
                    g_writer.write(f"not json {i}\n".encode())
                await g_writer.drain()

                # Tenant 3: killed mid-stream, no end, no goodbye.
                k_reader, k_writer = await hello(server, "killed")
                await stream_records(k_writer, steady_records(25))
                k_writer.transport.abort()

                # The clean tenant streams while all of that burns.
                c_reader, c_writer = await hello(server, "clean")
                mid = len(clean_records) // 2
                await stream_records(c_writer, clean_records[:mid])
                assert 'tenant="clean"' in await scrape(server)
                await stream_records(c_writer, clean_records[mid:])

                garbage_reply = json.loads(await g_reader.readline())
                flood_status, flood_raw = await flood_task
                flood_reply = (flood_status, json.loads(flood_raw))

                result = await end_stream(c_reader, c_writer)
                scrape_text = await scrape(server)
                return server, result, garbage_reply, flood_reply, \
                    scrape_text
            finally:
                await server.drain()

        server, result, garbage_reply, flood_reply, scrape_text = \
            run_async(scenario())

        # The clean tenant: finalized cumulative metrics bit-identical
        # to the batch pipeline over the same records.
        final = result["final"]
        batch = compute_metrics(TraceCollection(clean_records),
                                exec_time=final["exec_time"])
        assert final["bps"] == batch.bps
        assert final["union_io_time"] == batch.union_io_time
        assert final["ops"] == len(clean_records)
        assert result["budget"]["records_shed"] == 0
        assert result["quarantined_lines"] == 0

        # ...and its finalized windows match an isolated stream.
        from repro.live import MetricStream
        reference = MetricStream(window=0.1)
        for record in clean_records:
            reference.ingest(record)
        expected = reference.finalize()
        got = server.registry.tenants["clean"].result
        assert len(got.windows) == len(expected.windows)
        for g, w in zip(got.windows, expected.windows):
            assert g.io_time == w.io_time
            assert g.bps == w.bps
            assert g.ops == w.ops

        # The neighbours met their documented fates.
        assert garbage_reply["type"] == "error"
        assert garbage_reply["state"] == QUARANTINED
        assert flood_reply[0] == 410  # gone: evicted mid-body
        assert flood_reply[1]["state"] == EVICTED
        assert flood_reply[1]["shed"] == 40  # the 41st shed evicts
        flooder = server.registry.tenants["flooder"]
        assert flooder.meter.records_shed > 40
        assert flooder.meter.throttle_delays > 0  # rung 1 then rung 3/4
        killed = server.registry.tenants["killed"]
        assert killed.state == DRAINED  # drain settled the orphan
        assert killed.result is not None
        assert killed.result.metrics.app_ops == 25

        # The scrape stayed up throughout and shows every tenant.
        for name in ("clean", "flooder", "garbage", "killed"):
            assert f'tenant="{name}"' in scrape_text
        # The drain-time prom file uses the same formatter as /metrics.
        assert 'tenant="clean"' in prom_path.read_text()


class TestGracefulDrain:
    def test_drain_finalizes_flushes_and_settles(self, tmp_path):
        records = steady_records(60)
        prom_path = tmp_path / "serve.prom"

        async def scenario():
            server = await start_server(window=0.1,
                                        prom_out=str(prom_path))
            reader, writer = await hello(server, "jobA")
            await stream_records(writer, records)
            await server.drain("test SIGTERM")
            assert server.server_status()["draining"]
            return server

        server = run_async(scenario())
        tenant = server.registry.tenants["jobA"]
        assert tenant.state == DRAINED
        assert "SIGTERM" in tenant.state_reason
        assert tenant.result is not None
        assert tenant.result.metrics.app_ops == len(records)
        assert 'tenant="jobA"' in prom_path.read_text()

    def test_sigterm_daemon_exits_zero(self, tmp_path):
        """The real daemon: SIGTERM -> finalize, flush, exit 0."""
        prom_path = tmp_path / "serve.prom"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH", ""),) if p]
            + [os.path.join(os.getcwd(), "src")])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--tcp", "127.0.0.1:0", "--prom-out", str(prom_path)],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            banner = proc.stdout.readline()
            host, port = banner.strip().rsplit(" ", 1)[1].split(":")

            async def stream():
                reader, writer = await asyncio.open_connection(
                    host, int(port))
                writer.write(b'{"type": "hello", "tenant": "a"}\n')
                for record in steady_records(40):
                    writer.write(record_json(record).encode())
                await writer.drain()
                await reader.readline()  # welcome: records are in

            run_async(stream())
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, out
        assert "exiting cleanly" in out
        assert 'tenant="a"' in prom_path.read_text()


class TestHttpSurface:
    def test_ingest_query_end_round_trip(self):
        records = steady_records(40)
        body = "".join(record_json(r) for r in records)
        body += "# comment\n\n"

        async def scenario():
            server = await start_server(window=0.1,
                                        error_mode="salvage")
            try:
                status, raw = await http_request(
                    server, "POST", "/ingest/web", body.encode())
                ingest = (status, json.loads(raw))
                status, raw = await http_request(
                    server, "GET", "/tenants/web")
                detail = (status, json.loads(raw))
                status, raw = await http_request(server, "GET",
                                                 "/tenants")
                roster = (status, json.loads(raw))
                status, raw = await http_request(
                    server, "POST", "/tenants/web/end")
                ended = (status, json.loads(raw))
                return ingest, detail, roster, ended
            finally:
                await server.drain()

        ingest, detail, roster, ended = run_async(scenario())
        assert ingest[0] == 200
        assert ingest[1]["accepted"] == len(records)
        assert ingest[1]["bad_lines"] == 0
        assert detail[0] == 200 and detail[1]["records"] == len(records)
        assert roster[0] == 200
        assert roster[1]["counters"]["tenants_active"] == 1
        assert roster[1]["server"]["http_requests"] >= 2
        assert ended[0] == 200
        assert ended[1]["state"] == "drained"
        assert ended[1]["final"]["ops"] == len(records)

    def test_http_errors_are_scoped(self):
        async def scenario():
            server = await start_server(window=0.1)
            try:
                missing = await http_request(server, "GET",
                                             "/tenants/nope")
                bad_route = await http_request(server, "GET", "/what")
                bad_method = await http_request(server, "PUT",
                                                "/metrics")
                bad_name = await http_request(
                    server, "POST", "/ingest/..%2fetc", b"")
                ingest_after_end = None
                await http_request(server, "POST", "/ingest/a",
                                   record_json(
                                       steady_records(1)[0]).encode())
                await http_request(server, "POST", "/tenants/a/end")
                ingest_after_end = await http_request(
                    server, "POST", "/ingest/a",
                    record_json(steady_records(1)[0]).encode())
                return (missing, bad_route, bad_method, bad_name,
                        ingest_after_end)
            finally:
                await server.drain()

        missing, bad_route, bad_method, bad_name, after_end = \
            run_async(scenario())
        assert missing[0] == 404
        assert bad_route[0] == 404
        assert bad_method[0] == 405
        assert bad_name[0] == 400
        assert after_end[0] == 410  # gone: the stream is settled

    def test_scrape_matches_prom_file_byte_for_byte(self, tmp_path):
        prom_path = tmp_path / "serve.prom"
        records = steady_records(30)

        async def scenario():
            server = await start_server(window=0.1,
                                        prom_out=str(prom_path))
            try:
                reader, writer = await hello(server, "a")
                await stream_records(writer, records)
                await end_stream(reader, writer)
                status, scrape_body = await http_request(
                    server, "GET", "/metrics")
                assert status == 200
                return scrape_body.decode(), prom_path.read_text()
            finally:
                await server.drain()

        scrape_text, file_text = run_async(scenario())
        # Satellite guarantee: the HTTP scrape and the textfile sink
        # render through the same format_prometheus call.
        assert scrape_text == file_text
        assert 'repro_live_bps{tenant="a",scope="cumulative"}' \
            in scrape_text
