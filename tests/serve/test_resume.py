"""Session resume, seq-based exactly-once admission, and line CRCs.

The resume protocol's contract: a client that reconnects mid-stream
with the welcome's resume token and rewinds to the acked ``next_seq``
loses no records and double-counts none, and every server line carries
a CRC so a corrupted ack can never be believed.
"""

import asyncio
import json

from repro.core.metrics import compute_metrics
from repro.core.records import TraceCollection
from repro.serve.protocol import record_line, verify_checksum
from tests.serve.test_server import (
    end_stream,
    open_stream,
    run_async,
    start_server,
    steady_records,
)


async def hello(server, name, resume=None):
    """Open a stream and bind it; returns (reader, writer, welcome)."""
    reader, writer = await open_stream(server)
    obj = {"type": "hello", "tenant": name}
    if resume is not None:
        obj["resume"] = resume
    writer.write(json.dumps(obj).encode() + b"\n")
    await writer.drain()
    reply = json.loads(await reader.readline())
    return reader, writer, reply


async def send_seq_records(writer, records, start=0, stop=None):
    for seq in range(start, len(records) if stop is None else stop):
        writer.write(record_line(records[seq], seq=seq, checksum=True))
    await writer.drain()


async def sync(reader, writer):
    writer.write(b'{"type": "sync"}\n')
    await writer.drain()
    return json.loads(await reader.readline())


class TestSeqAdmission:
    def test_resent_prefix_is_deduplicated(self):
        records = steady_records(40)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer, _welcome = await hello(server, "jobA")
                await send_seq_records(writer, records)
                # A paranoid client replays the last 15 records.
                await send_seq_records(writer, records, start=25)
                return await end_stream(reader, writer)
            finally:
                await server.drain()

        result = run_async(scenario())
        assert result["final"]["ops"] == 40
        assert result["records_admitted"] == 40
        assert result["duplicate_records"] == 15

    def test_sync_acks_immediately_with_the_resume_point(self):
        records = steady_records(7)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer, welcome = await hello(server, "jobB")
                await send_seq_records(writer, records)
                ack = await sync(reader, writer)
                await end_stream(reader, writer)
                return welcome, ack
            finally:
                await server.drain()

        welcome, ack = run_async(scenario())
        assert welcome["next_seq"] == 0
        assert ack["type"] == "ack"
        assert ack["records"] == 7
        assert ack["next_seq"] == 7

    def test_out_of_order_arrival_still_admits_each_once(self):
        records = steady_records(6)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer, _welcome = await hello(server, "jobC")
                for seq in (0, 2, 1, 4, 5, 3, 2, 0):
                    writer.write(record_line(records[seq], seq=seq,
                                             checksum=True))
                await writer.drain()
                return await end_stream(reader, writer)
            finally:
                await server.drain()

        result = run_async(scenario())
        assert result["final"]["ops"] == 6
        assert result["duplicate_records"] == 2
        assert result["next_seq"] == 6


class TestLineChecksums:
    def test_corrupted_record_line_is_quarantined_not_counted(self):
        records = steady_records(10)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer, _welcome = await hello(server, "jobD")
                await send_seq_records(writer, records)
                poisoned = json.loads(
                    record_line(records[0], seq=99,
                                checksum=True).decode())
                poisoned["nbytes"] += 1  # stale crc now lies
                writer.write(json.dumps(poisoned).encode() + b"\n")
                await writer.drain()
                return await end_stream(reader, writer)
            finally:
                await server.drain()

        result = run_async(scenario())
        assert result["final"]["ops"] == 10
        assert result["quarantined_lines"] == 1
        assert result["next_seq"] == 10  # seq 99 was never believed

    def test_every_server_line_carries_a_verifiable_crc(self):
        records = steady_records(5)

        async def scenario():
            server = await start_server(window=0.1)
            reader, writer, welcome_obj = await hello(server, "jobE")
            try:
                raw_lines = []
                await send_seq_records(writer, records)
                writer.write(b'{"type": "sync"}\n')
                writer.write(b'{"type": "end"}\n')
                await writer.drain()
                while True:
                    line = await reader.readline()
                    raw_lines.append(json.loads(line))
                    if raw_lines[-1]["type"] == "result":
                        return welcome_obj, raw_lines
            finally:
                await server.drain()

        welcome_obj, raw_lines = run_async(scenario())
        for obj in [welcome_obj] + raw_lines:
            assert "crc" in obj, obj
            verify_checksum(dict(obj))  # must not raise
        kinds = [obj["type"] for obj in raw_lines]
        assert "ack" in kinds and "result" in kinds


class TestResumeTokens:
    def test_reconnect_with_token_resumes_from_next_seq(self):
        records = steady_records(60)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                reader, writer, welcome = await hello(server, "jobF")
                token = welcome["resume"]
                await send_seq_records(writer, records, stop=35)
                ack = await sync(reader, writer)
                writer.close()  # simulate a dropped connection

                reader, writer, welcome2 = await hello(
                    server, "jobF", resume=token)
                # Rewind a little before the acked point, as a real
                # client would after losing in-flight acks.
                resume_from = max(0, welcome2["next_seq"] - 5)
                await send_seq_records(writer, records,
                                       start=resume_from)
                result = await end_stream(reader, writer)
                return ack, welcome2, result
            finally:
                await server.drain()

        ack, welcome2, result = run_async(scenario())
        assert ack["next_seq"] == 35
        assert welcome2["next_seq"] == 35
        assert welcome2["records"] == 35
        assert result["final"]["ops"] == 60
        assert result["resumed_sessions"] == 1
        assert result["duplicate_records"] == 5

    def test_wrong_token_is_a_protocol_error(self):
        async def scenario():
            server = await start_server(window=0.1)
            try:
                _reader, writer, welcome = await hello(server, "jobG")
                writer.close()
                _reader, _writer, reply = await hello(
                    server, "jobG", resume="0000000000000000")
                assert welcome["resume"] != "0000000000000000"
                return reply
            finally:
                await server.drain()

        reply = run_async(scenario())
        assert reply["type"] == "error"
        assert "bad resume token" in reply["error"]

    def test_resuming_an_unknown_tenant_is_rejected(self):
        async def scenario():
            server = await start_server(window=0.1)
            try:
                _reader, _writer, reply = await hello(
                    server, "ghost", resume="deadbeefdeadbeef")
                return reply
            finally:
                await server.drain()

        reply = run_async(scenario())
        assert reply["type"] == "error"
        assert "cannot resume unknown tenant" in reply["error"]

    def test_two_reconnects_are_bit_identical_to_batch(self):
        records = steady_records(150)

        async def scenario():
            server = await start_server(window=0.1)
            try:
                token = None
                cursor = 0
                result = None
                for stop in (55, 110, None):
                    reader, writer, welcome = await hello(
                        server, "jobH", resume=token)
                    token = welcome["resume"]
                    cursor = welcome["next_seq"]
                    # Replay a few already-acked records every session.
                    await send_seq_records(
                        writer, records,
                        start=max(0, cursor - 3), stop=stop)
                    if stop is None:
                        result = await end_stream(reader, writer)
                    else:
                        await sync(reader, writer)
                        writer.close()
                return result
            finally:
                await server.drain()

        result = run_async(scenario())
        final = result["final"]
        assert result["resumed_sessions"] == 2
        assert result["duplicate_records"] == 6
        assert final["ops"] == 150
        batch = compute_metrics(TraceCollection(records),
                                exec_time=final["exec_time"])
        assert final["bps"] == batch.bps
        assert final["iops"] == batch.iops
        assert final["bandwidth"] == batch.bandwidth
        assert final["union_io_time"] == batch.union_io_time
