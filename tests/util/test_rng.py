"""RNG streams: determinism, independence, draw helpers."""

import numpy as np
import pytest

from repro.util.rng import RngStream, spawn_rng


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RngStream.from_seed(7)
        b = RngStream.from_seed(7)
        assert [a.uniform() for _ in range(10)] == \
               [b.uniform() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngStream.from_seed(7)
        b = RngStream.from_seed(8)
        assert [a.uniform() for _ in range(5)] != \
               [b.uniform() for _ in range(5)]

    def test_children_are_deterministic(self):
        a = RngStream.from_seed(7).spawn("dev")
        b = RngStream.from_seed(7).spawn("dev")
        assert a.uniform() == b.uniform()

    def test_children_independent_of_parent_consumption(self):
        a = RngStream.from_seed(7)
        a.uniform()  # consume from the parent
        child_after = a.spawn("dev")
        child_fresh = RngStream.from_seed(7).spawn("dev")
        assert child_after.uniform() == child_fresh.uniform()

    def test_sibling_streams_differ(self):
        root = RngStream.from_seed(7)
        kids = root.spawn_many("worker", 3)
        draws = [k.uniform() for k in kids]
        assert len(set(draws)) == 3


class TestDrawHelpers:
    def test_uniform_range(self):
        stream = RngStream.from_seed(1)
        draws = [stream.uniform(2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= d < 3.0 for d in draws)

    def test_lognormal_factor_median_near_one(self):
        stream = RngStream.from_seed(1)
        draws = [stream.lognormal_factor(0.3) for _ in range(2000)]
        assert 0.9 < float(np.median(draws)) < 1.1
        assert all(d > 0 for d in draws)

    def test_lognormal_factor_zero_sigma_is_exactly_one(self):
        stream = RngStream.from_seed(1)
        assert stream.lognormal_factor(0.0) == 1.0

    def test_lognormal_factor_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            RngStream.from_seed(1).lognormal_factor(-0.1)

    def test_integers_range(self):
        stream = RngStream.from_seed(1)
        draws = [stream.integers(5, 8) for _ in range(100)]
        assert set(draws) <= {5, 6, 7}

    def test_choice(self):
        stream = RngStream.from_seed(1)
        assert stream.choice([42]) == 42
        assert stream.choice("abc") in "abc"

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RngStream.from_seed(1).choice([])

    def test_exponential_positive(self):
        stream = RngStream.from_seed(1)
        assert all(stream.exponential(0.5) > 0 for _ in range(50))

    def test_shuffle_is_permutation(self):
        stream = RngStream.from_seed(1)
        items = list(range(20))
        shuffled = items.copy()
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestSpawnRng:
    def test_yields_named_streams(self):
        dev, net = spawn_rng(42, "device", "network")
        assert "device" in dev.name
        assert "network" in net.name
        assert dev.uniform() != net.uniform()

    def test_generator_access(self):
        (only,) = spawn_rng(42, "x")
        assert isinstance(only.generator, np.random.Generator)
