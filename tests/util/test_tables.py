"""Text rendering: tables, CC bar charts, series."""

import pytest

from repro.util.tables import TextTable, render_bar_chart, render_series


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["a", "b"])
        table.add_row([1, "xy"])
        out = table.render()
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert "xy" in lines[2]

    def test_column_width_follows_longest_cell(self):
        table = TextTable(["h"])
        table.add_row(["wide-cell-content"])
        header_line = table.render().splitlines()[0]
        assert len(header_line) == len("wide-cell-content")

    def test_row_length_mismatch_raises(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_str_equals_render(self):
        table = TextTable(["a"])
        table.add_row(["x"])
        assert str(table) == table.render()


class TestBarChart:
    def test_positive_and_negative_bars(self):
        out = render_bar_chart(["up", "down"], [0.8, -0.8], width=20)
        lines = out.splitlines()
        assert "+0.800" in lines[0]
        assert "-0.800" in lines[1]
        # The negative bar must extend left of the zero axis.
        zero_column = lines[0].index("|")
        assert "#" in lines[1][:zero_column]
        assert "#" in lines[0][zero_column:]

    def test_title_included(self):
        out = render_bar_chart(["x"], [0.5], title="Fig")
        assert out.splitlines()[0] == "Fig"

    def test_values_clipped_to_range(self):
        out = render_bar_chart(["big"], [5.0], width=10)
        assert "+5.000" in out  # label shows the raw value

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [0.1, 0.2])

    def test_bad_range_raises(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [0.1], vmin=1.0, vmax=-1.0)


class TestSeries:
    def test_renders_all_columns(self):
        out = render_series("n", [1, 2], {"t": [0.5, 0.25],
                                          "v": [1.0, 2.0]})
        assert "n" in out and "t" in out and "v" in out
        assert "0.25" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_series("n", [1, 2], {"t": [0.5]})

    def test_custom_format(self):
        out = render_series("n", [1], {"t": [0.123456]},
                            float_fmt="{:.2f}")
        assert "0.12" in out
