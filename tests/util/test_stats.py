"""Statistics helpers, especially the Pearson CC (paper Eq. 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import AnalysisError
from repro.util.stats import (
    coefficient_of_variation,
    geomean,
    harmonic_mean,
    mean,
    pearson,
    summarize,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(AnalysisError):
            mean([])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_requires_positive(self):
        with pytest.raises(AnalysisError):
            geomean([1.0, 0.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean([40.0, 60.0]) == pytest.approx(48.0)

    def test_harmonic_mean_requires_positive(self):
        with pytest.raises(AnalysisError):
            harmonic_mean([2.0, -1.0])

    def test_mean_ordering_inequality(self):
        values = [2.0, 8.0, 32.0]
        assert harmonic_mean(values) <= geomean(values) <= mean(values)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_uncorrelated_symmetric(self):
        x = [1, 2, 3, 4]
        y = [1, -1, -1, 1]
        assert pearson(x, y) == pytest.approx(0.0, abs=1e-12)

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=50)
        y = 0.3 * x + rng.normal(size=50)
        assert pearson(x, y) == pytest.approx(
            float(np.corrcoef(x, y)[0, 1]))

    def test_length_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            pearson([1, 2], [1, 2, 3])

    def test_single_point_raises(self):
        with pytest.raises(AnalysisError):
            pearson([1], [1])

    def test_zero_variance_raises(self):
        with pytest.raises(AnalysisError):
            pearson([1, 1, 1], [1, 2, 3])

    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_self_correlation_is_one(self, xs):
        try:
            cc = pearson(xs, xs)
        except AnalysisError:
            return  # zero variance: undefined
        assert cc == pytest.approx(1.0)

    @given(st.lists(st.tuples(finite_floats, finite_floats),
                    min_size=2, max_size=40))
    def test_bounded_and_symmetric(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        try:
            cc = pearson(xs, ys)
        except AnalysisError:
            return  # zero variance (possibly by float underflow)
        assert -1.0 <= cc <= 1.0
        assert cc == pytest.approx(pearson(ys, xs))

    @given(st.lists(st.tuples(finite_floats, finite_floats),
                    min_size=2, max_size=40),
           st.floats(min_value=0.001, max_value=1000,
                     allow_nan=False),
           finite_floats)
    def test_invariant_under_affine_transform(self, pairs, scale, shift):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        transformed = [scale * x + shift for x in xs]
        try:
            original = pearson(xs, ys)
            shifted = pearson(transformed, ys)
        except AnalysisError:
            return  # degenerate variance (possibly by float underflow)
        assert shifted == pytest.approx(original, abs=1e-6)


class TestSummary:
    def test_summarize_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.std == pytest.approx(1.0)

    def test_single_sample_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            summarize([])

    def test_str_contains_values(self):
        text = str(summarize([1.0, 3.0]))
        assert "n=2" in text and "mean=2" in text

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([10.0, 10.0]) == 0.0
        with pytest.raises(AnalysisError):
            coefficient_of_variation([1.0, -1.0])
