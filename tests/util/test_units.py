"""Units: block arithmetic, size parsing, formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    BLOCK_SIZE,
    GiB,
    KiB,
    MiB,
    align_down,
    align_up,
    blocks_to_bytes,
    bytes_to_blocks,
    format_rate,
    format_seconds,
    format_size,
    is_power_of_two,
    next_power_of_two,
    parse_size,
)


class TestBlockArithmetic:
    def test_exact_block(self):
        assert bytes_to_blocks(512) == 1

    def test_partial_block_rounds_up(self):
        assert bytes_to_blocks(513) == 2

    def test_one_byte_is_one_block(self):
        assert bytes_to_blocks(1) == 1

    def test_zero_bytes_zero_blocks(self):
        assert bytes_to_blocks(0) == 0

    def test_default_block_size_is_paper_512(self):
        assert BLOCK_SIZE == 512

    def test_custom_block_size(self):
        assert bytes_to_blocks(4096, block_size=4096) == 1
        assert bytes_to_blocks(4097, block_size=4096) == 2

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_blocks(-1)

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_blocks(100, block_size=0)

    def test_blocks_to_bytes_roundtrip_exact(self):
        assert blocks_to_bytes(7) == 7 * 512

    def test_blocks_to_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            blocks_to_bytes(-3)

    @given(st.integers(min_value=0, max_value=10**12),
           st.integers(min_value=1, max_value=1 << 20))
    def test_round_trip_covers(self, nbytes, block_size):
        blocks = bytes_to_blocks(nbytes, block_size)
        covered = blocks_to_bytes(blocks, block_size)
        assert covered >= nbytes
        assert covered - nbytes < block_size


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("512", 512),
        ("64KB", 64 * KiB),
        ("64kb", 64 * KiB),
        ("64 KiB", 64 * KiB),
        ("8MiB", 8 * MiB),
        ("8M", 8 * MiB),
        ("2GB", 2 * GiB),
        ("1.5KB", 1536),
        ("0", 0),
    ])
    def test_examples(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("lots of bytes")

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("0.3B")

    def test_format_parse_roundtrip(self):
        for size in (0, 1, 512, 64 * KiB, 3 * MiB, 7 * GiB):
            assert parse_size(format_size(size)) == size


class TestFormatting:
    def test_format_size_bytes(self):
        assert format_size(100) == "100B"

    def test_format_size_kib(self):
        assert format_size(4 * KiB) == "4.0KiB"

    def test_format_size_negative(self):
        assert format_size(-512) == "-512B"

    def test_format_rate(self):
        assert format_rate(2 * MiB) == "2.0MiB/s"

    def test_format_seconds_scales(self):
        assert format_seconds(2e-9).endswith("ns")
        assert format_seconds(2e-6).endswith("us")
        assert format_seconds(2e-3).endswith("ms")
        assert format_seconds(2.0) == "2.000s"

    def test_format_seconds_zero_and_negative(self):
        assert format_seconds(0) == "0s"
        assert format_seconds(-0.5) == "-500.000ms"

    def test_format_seconds_nan(self):
        assert format_seconds(float("nan")) == "nan"


class TestAlignment:
    def test_align_down(self):
        assert align_down(4097, 4096) == 4096
        assert align_down(4096, 4096) == 4096
        assert align_down(1, 4096) == 0

    def test_align_up(self):
        assert align_up(4097, 4096) == 8192
        assert align_up(4096, 4096) == 4096
        assert align_up(0, 4096) == 0

    def test_bad_granularity(self):
        with pytest.raises(ValueError):
            align_down(100, 0)
        with pytest.raises(ValueError):
            align_up(100, -1)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_alignment_brackets_value(self, value, granularity):
        down = align_down(value, granularity)
        up = align_up(value, granularity)
        assert down <= value <= up
        assert down % granularity == 0
        assert up % granularity == 0
        assert up - down in (0, granularity)


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(4096) == 4096
        assert next_power_of_two(4097) == 8192

    def test_next_power_of_two_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)
