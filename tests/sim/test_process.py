"""Processes: composition, results, error propagation, kill."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import ProcessKilled


class TestBasics:
    def test_return_value_is_result(self, engine):
        def proc(eng):
            yield eng.timeout(1.0)
            return 42
        process = engine.spawn(proc(engine))
        engine.run()
        assert process.result() == 42
        assert process.finished

    def test_processes_are_waitable(self, engine):
        def child(eng):
            yield eng.timeout(2.0)
            return "child-result"

        def parent(eng):
            value = yield eng.spawn(child(eng))
            return value, eng.now

        process = engine.spawn(parent(engine))
        engine.run()
        assert process.result() == ("child-result", 2.0)

    def test_spawn_requires_generator(self, engine):
        def not_a_generator():
            return 42
        with pytest.raises(SimulationError):
            engine.spawn(not_a_generator)

    def test_yielding_non_waitable_fails_process(self, engine):
        def bad(eng):
            yield "nonsense"
        process = engine.spawn(bad(engine))
        engine.run()
        with pytest.raises(SimulationError):
            process.result()

    def test_process_cannot_wait_on_itself(self, engine):
        holder = {}

        def selfish(eng):
            yield holder["me"]
        process = engine.spawn(selfish(engine))
        holder["me"] = process
        engine.run()
        with pytest.raises(SimulationError):
            process.result()

    def test_anonymous_names_are_unique(self, engine):
        def proc(eng):
            yield eng.timeout(0.0)
        a = engine.spawn(proc(engine))
        b = engine.spawn(proc(engine))
        engine.run()
        assert a.name != b.name


class TestErrorPropagation:
    def test_exception_becomes_result_error(self, engine):
        def failing(eng):
            yield eng.timeout(1.0)
            raise ValueError("inner")
        process = engine.spawn(failing(engine))
        engine.run()
        with pytest.raises(ValueError, match="inner"):
            process.result()

    def test_child_failure_propagates_to_parent(self, engine):
        def child(eng):
            yield eng.timeout(1.0)
            raise RuntimeError("child broke")

        def parent(eng):
            try:
                yield eng.spawn(child(eng))
            except RuntimeError as exc:
                return f"handled: {exc}"

        process = engine.spawn(parent(engine))
        engine.run()
        assert process.result() == "handled: child broke"

    def test_unhandled_child_failure_fails_parent(self, engine):
        def child(eng):
            yield eng.timeout(1.0)
            raise RuntimeError("boom")

        def parent(eng):
            yield eng.spawn(child(eng))

        process = engine.spawn(parent(engine))
        engine.run()
        with pytest.raises(RuntimeError):
            process.result()

    def test_immediate_exception_before_first_yield(self, engine):
        def broken(eng):
            raise KeyError("early")
            yield  # pragma: no cover
        process = engine.spawn(broken(engine))
        engine.run()
        with pytest.raises(KeyError):
            process.result()


class TestKill:
    def test_kill_interrupts_waiting_process(self, engine):
        def sleeper(eng):
            yield eng.timeout(100.0)
        process = engine.spawn(sleeper(engine))
        engine.call_later(1.0, process.kill)
        engine.run(detect_deadlock=False)
        assert process.finished
        with pytest.raises(ProcessKilled):
            process.result()

    def test_killed_process_can_clean_up(self, engine):
        cleaned = []

        def sleeper(eng):
            try:
                yield eng.timeout(100.0)
            except ProcessKilled:
                cleaned.append(eng.now)
                return "cleaned"
        process = engine.spawn(sleeper(engine))
        engine.call_later(2.0, process.kill)
        engine.run(detect_deadlock=False)
        assert cleaned == [2.0]
        assert process.result() == "cleaned"

    def test_kill_before_start(self, engine):
        def proc(eng):
            yield eng.timeout(1.0)
            return "ran"
        process = engine.spawn(proc(engine))
        process.kill()  # still at t=0, before the first step
        engine.run()
        with pytest.raises(ProcessKilled):
            process.result()

    def test_kill_finished_process_is_noop(self, engine):
        def proc(eng):
            yield eng.timeout(1.0)
            return "done"
        process = engine.spawn(proc(engine))
        engine.run()
        process.kill()
        assert process.result() == "done"

    def test_live_process_count(self, engine):
        def proc(eng):
            yield eng.timeout(1.0)
        engine.spawn(proc(engine))
        engine.spawn(proc(engine))
        assert engine.live_processes == 2
        engine.run()
        assert engine.live_processes == 0
