"""Monitors and utilization tracking."""

import pytest

from repro.sim.monitor import Monitor, UtilizationTracker


class TestMonitor:
    def test_records_samples_with_time(self, engine):
        monitor = Monitor(engine, "queue")
        engine.call_later(1.0, monitor.record, 3)
        engine.call_later(2.0, monitor.record, 5)
        engine.run()
        assert [(s.time, s.value) for s in monitor.samples] == \
            [(1.0, 3.0), (2.0, 5.0)]
        assert len(monitor) == 2

    def test_as_arrays(self, engine):
        monitor = Monitor(engine, "m")
        monitor.record(1.0)
        times, values = monitor.as_arrays()
        assert times.tolist() == [0.0]
        assert values.tolist() == [1.0]

    def test_time_average_step_function(self, engine):
        monitor = Monitor(engine, "depth")
        monitor.record(0.0)                       # 0 during [0, 1)
        engine.call_later(1.0, monitor.record, 4)  # 4 during [1, 3)
        engine.call_later(3.0, lambda: None)       # advance clock to 3
        engine.run()
        assert monitor.time_average() == pytest.approx((0 * 1 + 4 * 2) / 3)

    def test_time_average_empty_raises(self, engine):
        with pytest.raises(ValueError):
            Monitor(engine).time_average()

    def test_maximum(self, engine):
        monitor = Monitor(engine)
        for v in (1.0, 9.0, 3.0):
            monitor.record(v)
        assert monitor.maximum() == 9.0

    def test_maximum_empty_raises(self, engine):
        with pytest.raises(ValueError):
            Monitor(engine).maximum()


class TestUtilizationTracker:
    def test_single_busy_interval(self, engine):
        tracker = UtilizationTracker(engine)
        engine.call_later(1.0, tracker.busy)
        engine.call_later(3.0, tracker.idle)
        engine.call_later(4.0, lambda: None)
        engine.run()
        assert tracker.busy_time == pytest.approx(2.0)
        assert tracker.utilization() == pytest.approx(0.5)

    def test_nested_busy_counts_once(self, engine):
        tracker = UtilizationTracker(engine)
        # Two overlapping units of work: [1, 4) and [2, 3).
        engine.call_later(1.0, tracker.busy)
        engine.call_later(2.0, tracker.busy)
        engine.call_later(3.0, tracker.idle)
        engine.call_later(4.0, tracker.idle)
        engine.run()
        assert tracker.busy_time == pytest.approx(3.0)

    def test_idle_without_busy_raises(self, engine):
        with pytest.raises(ValueError):
            UtilizationTracker(engine).idle()

    def test_in_flight_busy_counted(self, engine):
        tracker = UtilizationTracker(engine)
        engine.call_later(1.0, tracker.busy)
        engine.call_later(5.0, lambda: None)
        engine.run()
        assert tracker.busy_time == pytest.approx(4.0)

    def test_zero_elapsed_utilization(self, engine):
        assert UtilizationTracker(engine).utilization() == 0.0
