"""Monitors and utilization tracking."""

import pytest

from repro.sim.monitor import Monitor, Sample, UtilizationTracker


class TestSample:
    def test_fields(self):
        sample = Sample(1.5, 3.0)
        assert sample.time == 1.5
        assert sample.value == 3.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Sample(0.0, 0.0).value = 1.0

    def test_equality(self):
        assert Sample(1.0, 2.0) == Sample(1.0, 2.0)
        assert Sample(1.0, 2.0) != Sample(1.0, 3.0)


class TestMonitor:
    def test_records_samples_with_time(self, engine):
        monitor = Monitor(engine, "queue")
        engine.call_later(1.0, monitor.record, 3)
        engine.call_later(2.0, monitor.record, 5)
        engine.run()
        assert [(s.time, s.value) for s in monitor.samples] == \
            [(1.0, 3.0), (2.0, 5.0)]
        assert len(monitor) == 2

    def test_as_arrays(self, engine):
        monitor = Monitor(engine, "m")
        monitor.record(1.0)
        times, values = monitor.as_arrays()
        assert times.tolist() == [0.0]
        assert values.tolist() == [1.0]

    def test_time_average_step_function(self, engine):
        monitor = Monitor(engine, "depth")
        monitor.record(0.0)                       # 0 during [0, 1)
        engine.call_later(1.0, monitor.record, 4)  # 4 during [1, 3)
        engine.call_later(3.0, lambda: None)       # advance clock to 3
        engine.run()
        assert monitor.time_average() == pytest.approx((0 * 1 + 4 * 2) / 3)

    def test_time_average_empty_raises(self, engine):
        with pytest.raises(ValueError):
            Monitor(engine).time_average()

    def test_maximum(self, engine):
        monitor = Monitor(engine)
        for v in (1.0, 9.0, 3.0):
            monitor.record(v)
        assert monitor.maximum() == 9.0

    def test_maximum_empty_raises(self, engine):
        with pytest.raises(ValueError):
            Monitor(engine).maximum()


class TestBoundedMonitor:
    def test_unbounded_mode_keeps_everything(self, engine):
        monitor = Monitor(engine)
        for v in range(1000):
            monitor.record(v)
        assert len(monitor) == 1000
        assert monitor.dropped == 0
        assert monitor.stride == 1

    def test_cap_never_exceeded(self, engine):
        monitor = Monitor(engine, max_samples=16)
        for v in range(10_000):
            monitor.record(v)
        assert len(monitor) <= 16

    def test_decimation_keeps_uniform_spacing(self, engine):
        monitor = Monitor(engine, max_samples=8)
        for v in range(1000):
            monitor.record(v)
        values = [s.value for s in monitor.samples]
        assert values[0] == 0.0
        gaps = {values[k + 1] - values[k]
                for k in range(len(values) - 1)}
        assert len(gaps) == 1           # evenly spaced
        assert gaps == {float(monitor.stride)}

    def test_stride_doubles_at_each_cap_hit(self, engine):
        monitor = Monitor(engine, max_samples=4)
        assert monitor.stride == 1
        for v in range(4):
            monitor.record(v)
        assert monitor.stride == 2
        for v in range(4, 12):
            monitor.record(v)
        assert monitor.stride == 4

    def test_accounting_is_exact(self, engine):
        monitor = Monitor(engine, max_samples=8)
        for v in range(997):            # not a power of two
            monitor.record(v)
        assert monitor.total_records == 997
        assert len(monitor) + monitor.dropped == 997

    def test_below_cap_identical_to_unbounded(self, engine):
        bounded = Monitor(engine, max_samples=64)
        free = Monitor(engine)
        for v in (3.0, 1.0, 4.0, 1.0, 5.0):
            bounded.record(v)
            free.record(v)
        assert bounded.samples == free.samples
        assert bounded.dropped == 0

    def test_derived_stats_still_work_when_decimated(self, engine):
        monitor = Monitor(engine, max_samples=8)
        engine.run()
        for v in range(100):
            monitor.record(v)
        assert monitor.maximum() <= 99.0
        monitor.time_average()          # no crash on decimated series

    def test_cap_below_two_rejected(self, engine):
        with pytest.raises(ValueError):
            Monitor(engine, max_samples=1)


class TestUtilizationTracker:
    def test_single_busy_interval(self, engine):
        tracker = UtilizationTracker(engine)
        engine.call_later(1.0, tracker.busy)
        engine.call_later(3.0, tracker.idle)
        engine.call_later(4.0, lambda: None)
        engine.run()
        assert tracker.busy_time == pytest.approx(2.0)
        assert tracker.utilization() == pytest.approx(0.5)

    def test_nested_busy_counts_once(self, engine):
        tracker = UtilizationTracker(engine)
        # Two overlapping units of work: [1, 4) and [2, 3).
        engine.call_later(1.0, tracker.busy)
        engine.call_later(2.0, tracker.busy)
        engine.call_later(3.0, tracker.idle)
        engine.call_later(4.0, tracker.idle)
        engine.run()
        assert tracker.busy_time == pytest.approx(3.0)

    def test_idle_without_busy_raises(self, engine):
        with pytest.raises(ValueError):
            UtilizationTracker(engine).idle()

    def test_in_flight_busy_counted(self, engine):
        tracker = UtilizationTracker(engine)
        engine.call_later(1.0, tracker.busy)
        engine.call_later(5.0, lambda: None)
        engine.run()
        assert tracker.busy_time == pytest.approx(4.0)

    def test_zero_elapsed_utilization(self, engine):
        assert UtilizationTracker(engine).utilization() == 0.0
