"""Waitables: completions, timeouts, combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Completion, Timeout


class TestCompletion:
    def test_trigger_delivers_value(self, engine):
        done = engine.completion()

        def waiter(eng):
            value = yield done
            return value

        process = engine.spawn(waiter(engine))
        engine.call_later(1.0, done.trigger, "payload")
        engine.run()
        assert process.result() == "payload"

    def test_double_trigger_raises(self, engine):
        done = engine.completion()
        done.trigger(1)
        with pytest.raises(SimulationError):
            done.trigger(2)

    def test_fail_raises_in_waiter(self, engine):
        done = engine.completion()

        def waiter(eng):
            try:
                yield done
            except ValueError as exc:
                return f"caught {exc}"

        process = engine.spawn(waiter(engine))
        engine.call_later(0.5, done.fail, ValueError("boom"))
        engine.run()
        assert process.result() == "caught boom"

    def test_fail_requires_exception(self, engine):
        done = engine.completion()
        with pytest.raises(TypeError):
            done.fail("not an exception")

    def test_subscribe_after_fired_still_fires(self, engine):
        done = engine.completion()
        done.trigger(7)
        seen = []
        done.subscribe(lambda w: seen.append(w.value))
        engine.run()
        assert seen == [7]

    def test_result_before_fired_raises(self, engine):
        done = engine.completion()
        with pytest.raises(SimulationError):
            done.result()

    def test_result_reraises_exception(self, engine):
        done = engine.completion()
        done.fail(RuntimeError("bad"))
        with pytest.raises(RuntimeError):
            done.result()


class TestTimeout:
    def test_fires_after_delay(self, engine):
        times = []
        timeout = engine.timeout(2.5)
        timeout.subscribe(lambda w: times.append(engine.now))
        engine.run()
        assert times == [2.5]

    def test_carries_value(self, engine):
        def waiter(eng):
            value = yield eng.timeout(1.0, value="v")
            return value
        process = engine.spawn(waiter(engine))
        engine.run()
        assert process.result() == "v"

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_zero_delay_ok(self, engine):
        timeout = engine.timeout(0.0)
        engine.run()
        assert timeout.fired


class TestAllOf:
    def test_waits_for_all(self, engine):
        def waiter(eng):
            values = yield eng.all_of([eng.timeout(1.0, "a"),
                                       eng.timeout(3.0, "b")])
            return eng.now, values
        process = engine.spawn(waiter(engine))
        engine.run()
        assert process.result() == (3.0, ["a", "b"])

    def test_empty_fires_immediately(self, engine):
        def waiter(eng):
            values = yield eng.all_of([])
            return values
        process = engine.spawn(waiter(engine))
        engine.run()
        assert process.result() == []

    def test_values_preserve_child_order(self, engine):
        def waiter(eng):
            # second child completes first, order must not change
            values = yield eng.all_of([eng.timeout(2.0, "slow"),
                                       eng.timeout(1.0, "fast")])
            return values
        process = engine.spawn(waiter(engine))
        engine.run()
        assert process.result() == ["slow", "fast"]

    def test_propagates_first_child_failure(self, engine):
        bad = engine.completion()
        engine.call_later(1.0, bad.fail, KeyError("x"))

        def waiter(eng):
            try:
                yield eng.all_of([eng.timeout(2.0), bad])
            except KeyError:
                return "failed"
        process = engine.spawn(waiter(engine))
        engine.run()
        assert process.result() == "failed"


class TestAnyOf:
    def test_first_wins(self, engine):
        def waiter(eng):
            index, value = yield eng.any_of([eng.timeout(5.0, "slow"),
                                             eng.timeout(1.0, "fast")])
            return eng.now, index, value
        process = engine.spawn(waiter(engine))
        engine.run(detect_deadlock=False)
        assert process.result() == (1.0, 1, "fast")

    def test_empty_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.any_of([])

    def test_later_firings_ignored(self, engine):
        first = engine.completion()
        second = engine.completion()
        combined = engine.any_of([first, second])
        first.trigger("one")
        second.trigger("two")
        engine.run()
        assert combined.value == (0, "one")
