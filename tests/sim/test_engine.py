"""Engine scheduling: ordering, determinism, deadlock detection."""

import math

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_time_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_call_later_advances_time(self, engine):
        seen = []
        engine.call_later(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]
        assert engine.now == 1.5

    def test_events_run_in_time_order(self, engine):
        order = []
        engine.call_later(2.0, order.append, "late")
        engine.call_later(1.0, order.append, "early")
        engine.run()
        assert order == ["early", "late"]

    def test_fifo_tie_breaking_at_equal_times(self, engine):
        order = []
        for i in range(5):
            engine.call_later(1.0, order.append, i)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_call_soon_runs_at_current_time(self, engine):
        times = []
        engine.call_later(1.0, lambda: engine.call_soon(
            lambda: times.append(engine.now)))
        engine.run()
        assert times == [1.0]

    def test_call_at_absolute_time(self, engine):
        times = []
        engine.call_at(3.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_call_at_past_raises(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.call_later(-0.1, lambda: None)

    def test_nan_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.call_later(float("nan"), lambda: None)

    def test_args_passed_through(self, engine):
        seen = []
        engine.call_later(0.0, seen.append, 42)
        engine.run()
        assert seen == [42]


class TestRun:
    def test_run_until_stops_early(self, engine):
        seen = []
        engine.call_later(1.0, seen.append, "a")
        engine.call_later(5.0, seen.append, "b")
        engine.run(until=2.0)
        assert seen == ["a"]
        assert engine.now == 2.0
        engine.run()
        assert seen == ["a", "b"]

    def test_step_runs_one_event(self, engine):
        seen = []
        engine.call_later(1.0, seen.append, 1)
        engine.call_later(2.0, seen.append, 2)
        assert engine.step()
        assert seen == [1]
        assert engine.step()
        assert not engine.step()

    def test_pending_events_counter(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.call_later(2.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0

    def test_reentrant_run_rejected(self, engine):
        def reenter():
            with pytest.raises(SimulationError):
                engine.run()
        engine.call_later(0.0, reenter)
        engine.run()

    def test_empty_run_is_noop(self, engine):
        engine.run()
        assert engine.now == 0.0


class TestDeadlockDetection:
    def test_waiting_process_raises_deadlock(self, engine):
        def waiter(eng):
            yield eng.completion()  # nobody will trigger this
        engine.spawn(waiter(engine))
        with pytest.raises(DeadlockError):
            engine.run()

    def test_deadlock_detection_can_be_disabled(self, engine):
        def waiter(eng):
            yield eng.completion()
        engine.spawn(waiter(engine))
        engine.run(detect_deadlock=False)  # completes without raising

    def test_no_deadlock_when_all_processes_finish(self, engine):
        def worker(eng):
            yield eng.timeout(1.0)
        engine.spawn(worker(engine))
        engine.run()
        assert engine.live_processes == 0


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build_and_run():
            eng = Engine()
            log = []

            def worker(eng, i, delay):
                yield eng.timeout(delay)
                log.append((eng.now, i))
                yield eng.timeout(delay / 2)
                log.append((eng.now, i))

            for i, delay in enumerate((0.3, 0.1, 0.2)):
                eng.spawn(worker(eng, i, delay))
            eng.run()
            return log

        assert build_and_run() == build_and_run()
