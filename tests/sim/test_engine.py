"""Engine scheduling: ordering, determinism, deadlock detection."""

import math

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_time_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_call_later_advances_time(self, engine):
        seen = []
        engine.call_later(1.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]
        assert engine.now == 1.5

    def test_events_run_in_time_order(self, engine):
        order = []
        engine.call_later(2.0, order.append, "late")
        engine.call_later(1.0, order.append, "early")
        engine.run()
        assert order == ["early", "late"]

    def test_fifo_tie_breaking_at_equal_times(self, engine):
        order = []
        for i in range(5):
            engine.call_later(1.0, order.append, i)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_call_soon_runs_at_current_time(self, engine):
        times = []
        engine.call_later(1.0, lambda: engine.call_soon(
            lambda: times.append(engine.now)))
        engine.run()
        assert times == [1.0]

    def test_call_at_absolute_time(self, engine):
        times = []
        engine.call_at(3.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_call_at_past_raises(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.call_later(-0.1, lambda: None)

    def test_nan_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.call_later(float("nan"), lambda: None)

    def test_args_passed_through(self, engine):
        seen = []
        engine.call_later(0.0, seen.append, 42)
        engine.run()
        assert seen == [42]


class TestRun:
    def test_run_until_stops_early(self, engine):
        seen = []
        engine.call_later(1.0, seen.append, "a")
        engine.call_later(5.0, seen.append, "b")
        engine.run(until=2.0)
        assert seen == ["a"]
        assert engine.now == 2.0
        engine.run()
        assert seen == ["a", "b"]

    def test_step_runs_one_event(self, engine):
        seen = []
        engine.call_later(1.0, seen.append, 1)
        engine.call_later(2.0, seen.append, 2)
        assert engine.step()
        assert seen == [1]
        assert engine.step()
        assert not engine.step()

    def test_pending_events_counter(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.call_later(2.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0

    def test_reentrant_run_rejected(self, engine):
        def reenter():
            with pytest.raises(SimulationError):
                engine.run()
        engine.call_later(0.0, reenter)
        engine.run()

    def test_empty_run_is_noop(self, engine):
        engine.run()
        assert engine.now == 0.0


class TestDeadlockDetection:
    def test_waiting_process_raises_deadlock(self, engine):
        def waiter(eng):
            yield eng.completion()  # nobody will trigger this
        engine.spawn(waiter(engine))
        with pytest.raises(DeadlockError):
            engine.run()

    def test_deadlock_detection_can_be_disabled(self, engine):
        def waiter(eng):
            yield eng.completion()
        engine.spawn(waiter(engine))
        engine.run(detect_deadlock=False)  # completes without raising

    def test_no_deadlock_when_all_processes_finish(self, engine):
        def worker(eng):
            yield eng.timeout(1.0)
        engine.spawn(worker(engine))
        engine.run()
        assert engine.live_processes == 0


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build_and_run():
            eng = Engine()
            log = []

            def worker(eng, i, delay):
                yield eng.timeout(delay)
                log.append((eng.now, i))
                yield eng.timeout(delay / 2)
                log.append((eng.now, i))

            for i, delay in enumerate((0.3, 0.1, 0.2)):
                eng.spawn(worker(eng, i, delay))
            eng.run()
            return log

        assert build_and_run() == build_and_run()


class TestStepInvariants:
    def test_step_runs_one_event(self, engine):
        log = []
        engine.call_later(1.0, log.append, "a")
        engine.call_later(2.0, log.append, "b")
        assert engine.step() is True
        assert (log, engine.now) == (["a"], 1.0)
        assert engine.step() is True
        assert engine.step() is False
        assert (log, engine.now) == (["a", "b"], 2.0)

    def test_step_guards_against_time_going_backwards(self, engine):
        # Force a corrupt heap entry (no public API can create one) and
        # check step() enforces the same invariant run() does.
        import heapq
        engine.now = 5.0
        heapq.heappush(engine._heap, (1.0, 0, lambda: None, ()))
        with pytest.raises(SimulationError):
            engine.step()

    def test_step_respects_until(self, engine):
        log = []
        engine.call_later(3.0, log.append, "late")
        assert engine.step(until=2.0) is False
        # Clock clamps forward to `until`, event stays queued.
        assert engine.now == 2.0
        assert engine.pending_events == 1
        assert log == []
        assert engine.step() is True
        assert engine.now == 3.0

    def test_step_until_never_moves_time_backwards(self, engine):
        engine.call_later(10.0, lambda: None)
        engine.run(until=6.0)
        assert engine.now == 6.0
        assert engine.step(until=2.0) is False
        assert engine.now == 6.0  # clamp is monotonic

    def test_step_after_run_until_continues_forward(self, engine):
        log = []
        engine.call_later(1.0, log.append, "early")
        engine.call_later(4.0, log.append, "late")
        engine.run(until=2.0)
        assert (engine.now, log) == (2.0, ["early"])
        assert engine.step() is True
        assert (engine.now, log) == (4.0, ["early", "late"])

    def test_rerun_with_smaller_until_keeps_time_monotonic(self, engine):
        engine.call_later(10.0, lambda: None)
        engine.run(until=6.0)
        engine.run(until=3.0)  # must NOT rewind the clock
        assert engine.now == 6.0
