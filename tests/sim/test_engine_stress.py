"""Engine stress properties: random process graphs always terminate
consistently.

Hypothesis drives random trees of processes (spawn / timeout / resource
use / completions) and checks global invariants: time never runs
backwards, every process finishes, resources end balanced, and a replay
produces the identical timeline.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sim.resources import Resource

# A "program" is a list of actions per process; actions reference
# bounded resources and delays so everything terminates.
action = st.sampled_from(["timeout", "acquire", "spawn_child"])
program = st.lists(
    st.tuples(action,
              st.floats(min_value=0.0, max_value=2.0, allow_nan=False)),
    min_size=0, max_size=8)
programs = st.lists(program, min_size=1, max_size=6)


def run_program(progs, capacity):
    engine = Engine()
    resource = Resource(engine, capacity=capacity)
    timeline: list[tuple[float, int, int]] = []

    def worker(eng, my_program, ident, depth=0):
        for index, (kind, delay) in enumerate(my_program):
            timeline.append((eng.now, ident, index))
            if kind == "timeout":
                yield eng.timeout(delay)
            elif kind == "acquire":
                grant = resource.acquire()
                yield grant
                try:
                    yield eng.timeout(delay)
                finally:
                    resource.release()
            elif kind == "spawn_child" and depth < 2:
                child = eng.spawn(worker(eng, my_program[index + 1:],
                                         ident * 100 + index,
                                         depth + 1))
                yield child
        return ident

    processes = [engine.spawn(worker(engine, prog, ident))
                 for ident, prog in enumerate(progs)]
    engine.run()
    return engine, processes, timeline, resource


class TestEngineStress:
    @given(programs, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_always_terminates_cleanly(self, progs, capacity):
        engine, processes, timeline, resource = run_program(progs,
                                                            capacity)
        # All processes finished with their own id as result.
        for ident, process in enumerate(processes):
            assert process.finished
            assert process.result() == ident
        assert engine.live_processes == 0
        # Resource fully released.
        assert resource.in_use == 0
        assert resource.queue_length == 0
        # Observed times never decrease.
        times = [t for t, _pid, _idx in timeline]
        assert times == sorted(times)

    @given(programs, st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_replay_identical(self, progs, capacity):
        first = run_program(progs, capacity)
        second = run_program(progs, capacity)
        assert first[2] == second[2]          # identical timelines
        assert first[0].now == second[0].now  # identical end times


class TestEngineScale:
    def test_many_processes(self):
        engine = Engine()
        resource = Resource(engine, capacity=4)

        def worker(eng, i):
            grant = resource.acquire()
            yield grant
            try:
                yield eng.timeout(0.001)
            finally:
                resource.release()
            return i

        processes = [engine.spawn(worker(engine, i)) for i in range(500)]
        engine.run()
        assert [p.result() for p in processes] == list(range(500))
        # 500 holds of 1ms through 4 slots: 125ms total.
        assert engine.now == pytest.approx(0.125)
