"""Engine failure paths: deadlock detection and completion/timeout races."""

import pytest

from repro.errors import DeadlockError
from repro.sim.engine import Engine


class TestDeadlockDetection:
    def test_waiting_on_untriggered_completion_raises(self, engine):
        never = engine.completion()

        def proc():
            yield never
        engine.spawn(proc(), name="stuck")
        with pytest.raises(DeadlockError, match="still waiting"):
            engine.run()

    def test_deadlock_message_names_time(self, engine):
        never = engine.completion()

        def proc():
            yield engine.timeout(2.5)
            yield never
        engine.spawn(proc(), name="stuck-later")
        with pytest.raises(DeadlockError, match="t=2.5"):
            engine.run()

    def test_triggered_completion_is_not_a_deadlock(self, engine):
        done = engine.completion()
        engine.call_at(1.0, done.trigger, "value")

        def proc():
            got = yield done
            return got
        process = engine.spawn(proc(), name="fine")
        engine.run()
        assert process.result() == "value"


class TestTimeoutCompletionRace:
    def run_race(self, completion_at, timeout_after):
        engine = Engine()
        done = engine.completion()
        engine.call_at(completion_at, done.trigger, "payload")
        holder = {}

        def proc():
            holder["fired"] = yield engine.any_of(
                [done, engine.timeout(timeout_after)])
        engine.spawn(proc(), name="race")
        engine.run()
        return engine, holder["fired"]

    def test_completion_wins_when_earlier(self):
        engine, (index, value) = self.run_race(0.01, 0.05)
        assert (index, value) == (0, "payload")

    def test_timeout_wins_when_earlier(self):
        engine, (index, value) = self.run_race(0.05, 0.01)
        assert index == 1

    def test_loser_does_not_rewake_the_winner(self):
        # The race's loser (completion at 0.05) still fires later; the
        # waiting process must have moved on after the timeout at 0.01.
        engine, (index, _) = self.run_race(0.05, 0.01)
        assert index == 1
        assert engine.now == pytest.approx(0.05)  # heap fully drained
