"""Resources: capacity, FIFO/priority queueing, token buckets."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import PriorityResource, Resource, TokenBucket


def hold(engine, resource, duration, log, tag, priority=None):
    """A process that acquires, holds, and releases a resource."""
    if priority is None:
        grant = resource.acquire()
    else:
        grant = resource.acquire(priority=priority)
    yield grant
    log.append((engine.now, tag, "in"))
    try:
        yield engine.timeout(duration)
    finally:
        resource.release()
    log.append((engine.now, tag, "out"))


class TestResource:
    def test_capacity_limits_concurrency(self, engine):
        resource = Resource(engine, capacity=2)
        log = []
        for i in range(4):
            engine.spawn(hold(engine, resource, 1.0, log, i))
        engine.run()
        entries = [(t, tag) for t, tag, what in log if what == "in"]
        assert entries == [(0.0, 0), (0.0, 1), (1.0, 2), (1.0, 3)]

    def test_fifo_order(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        for i in range(3):
            engine.spawn(hold(engine, resource, 1.0, log, i))
        engine.run()
        order = [tag for _t, tag, what in log if what == "in"]
        assert order == [0, 1, 2]

    def test_release_without_acquire_raises(self, engine):
        resource = Resource(engine)
        with pytest.raises(SimulationError):
            resource.release()

    def test_zero_capacity_rejected(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)

    def test_queue_length_and_in_use(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.spawn(hold(engine, resource, 2.0, log, "a"))
        engine.spawn(hold(engine, resource, 1.0, log, "b"))
        engine.run(until=1.0)
        assert resource.in_use == 1
        assert resource.queue_length == 1
        engine.run()
        assert resource.in_use == 0

    def test_wait_time_accounting(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.spawn(hold(engine, resource, 2.0, log, "first"))
        engine.spawn(hold(engine, resource, 1.0, log, "second"))
        engine.run()
        assert resource.total_wait_time == pytest.approx(2.0)
        assert resource.total_acquisitions == 2


class TestPriorityResource:
    def test_lower_priority_served_first(self, engine):
        resource = PriorityResource(engine, capacity=1)
        log = []
        # The first holder occupies the resource; the rest queue with
        # priorities and must come out in priority order.
        engine.spawn(hold(engine, resource, 1.0, log, "holder",
                          priority=0.0))
        for tag, priority in (("high", 5.0), ("low", 1.0), ("mid", 3.0)):
            engine.spawn(hold(engine, resource, 1.0, log, tag,
                              priority=priority))
        engine.run()
        order = [tag for _t, tag, what in log if what == "in"]
        assert order == ["holder", "low", "mid", "high"]

    def test_equal_priority_is_fifo(self, engine):
        resource = PriorityResource(engine, capacity=1)
        log = []
        engine.spawn(hold(engine, resource, 1.0, log, "holder",
                          priority=0.0))
        for i in range(3):
            engine.spawn(hold(engine, resource, 0.5, log, i, priority=7.0))
        engine.run()
        order = [tag for _t, tag, what in log if what == "in"]
        assert order == ["holder", 0, 1, 2]

    def test_release_without_acquire_raises(self, engine):
        with pytest.raises(SimulationError):
            PriorityResource(engine).release()


class TestTokenBucket:
    def test_burst_available_immediately(self, engine):
        bucket = TokenBucket(engine, rate=10.0, burst=100.0)
        taken = bucket.take(50.0)
        engine.run()
        assert taken.fired

    def test_rate_limits_over_time(self, engine):
        bucket = TokenBucket(engine, rate=10.0, burst=10.0)
        times = []

        def consumer(eng):
            for _ in range(3):
                yield bucket.take(10.0)
                times.append(eng.now)

        engine.spawn(consumer(engine))
        engine.run()
        # First take drains the burst; each further 10 tokens needs 1s.
        assert times == pytest.approx([0.0, 1.0, 2.0])

    def test_fifo_among_takers(self, engine):
        bucket = TokenBucket(engine, rate=10.0, burst=10.0)
        order = []

        def taker(eng, tag, amount):
            yield bucket.take(amount)
            order.append(tag)

        engine.spawn(taker(engine, "big", 10.0))
        engine.spawn(taker(engine, "small", 1.0))
        engine.run()
        assert order == ["big", "small"]

    def test_take_beyond_burst_rejected(self, engine):
        bucket = TokenBucket(engine, rate=1.0, burst=5.0)
        with pytest.raises(SimulationError):
            bucket.take(6.0)

    def test_non_positive_take_rejected(self, engine):
        bucket = TokenBucket(engine, rate=1.0, burst=5.0)
        with pytest.raises(SimulationError):
            bucket.take(0.0)

    def test_bad_construction_rejected(self, engine):
        with pytest.raises(SimulationError):
            TokenBucket(engine, rate=0.0, burst=1.0)
        with pytest.raises(SimulationError):
            TokenBucket(engine, rate=1.0, burst=0.0)

    def test_available_refills(self, engine):
        bucket = TokenBucket(engine, rate=10.0, burst=20.0)
        bucket.take(20.0)
        engine.run()
        assert bucket.available == pytest.approx(0.0)
        engine.call_later(1.0, lambda: None)
        engine.run()
        assert bucket.available == pytest.approx(10.0)
