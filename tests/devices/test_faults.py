"""Fault injection: failed accesses still produce accountable results.

The paper's B explicitly counts "non-successful" accesses (section
III.A), so the failure path must produce results the trace layer can
record — not exceptions that vanish.
"""

import pytest

from repro.devices.base import FaultInjector, READ
from repro.devices.ramdisk import RamDisk
from repro.errors import DeviceError
from repro.util.units import MiB


class TestFaultInjector:
    def test_probability_bounds(self, rng):
        with pytest.raises(DeviceError):
            FaultInjector(rng, probability=1.5)
        with pytest.raises(DeviceError):
            FaultInjector(rng, probability=-0.1)

    def test_time_fraction_bounds(self, rng):
        with pytest.raises(DeviceError):
            FaultInjector(rng, probability=0.5, time_fraction=0.0)
        with pytest.raises(DeviceError):
            FaultInjector(rng, probability=0.5, time_fraction=1.5)

    def test_always_fails_at_probability_one(self, rng):
        injector = FaultInjector(rng, probability=1.0)
        assert all(injector.should_fail() for _ in range(20))

    def test_never_fails_at_probability_zero(self, rng):
        injector = FaultInjector(rng, probability=0.0)
        assert not any(injector.should_fail() for _ in range(20))


class TestDeviceFaultPath:
    def test_failed_access_returns_unsuccessful_result(self, engine, rng):
        device = RamDisk(engine, capacity_bytes=1 * MiB,
                         fault_injector=FaultInjector(rng, probability=1.0))
        done = device.access(READ, 0, 4096)
        engine.run()
        result = done.result()
        assert not result.success
        assert "fault" in result.error
        assert device.stats.faults == 1

    def test_failed_access_takes_partial_time(self, engine, rng):
        healthy_engine = type(engine)()
        healthy = RamDisk(healthy_engine, capacity_bytes=1 * MiB,
                          channels=1)
        failing = RamDisk(engine, capacity_bytes=1 * MiB, channels=1,
                          fault_injector=FaultInjector(
                              rng, probability=1.0, time_fraction=0.5))
        healthy.access(READ, 0, 512 * 1024)
        failing.access(READ, 0, 512 * 1024)
        healthy_engine.run()
        engine.run()
        assert engine.now == pytest.approx(healthy_engine.now * 0.5)

    def test_failed_bytes_not_counted_as_moved(self, engine, rng):
        device = RamDisk(engine, capacity_bytes=1 * MiB,
                         fault_injector=FaultInjector(rng, probability=1.0))
        device.access(READ, 0, 4096)
        engine.run()
        assert device.stats.bytes_read == 0
        assert device.stats.reads == 1  # the op itself is counted

    def test_partial_failure_rate(self, engine, rng):
        device = RamDisk(engine, capacity_bytes=16 * MiB,
                         fault_injector=FaultInjector(rng, probability=0.3))
        for i in range(200):
            device.access(READ, (i * 4096) % (1 * MiB), 4096)
        engine.run()
        assert 20 < device.stats.faults < 120  # ~60 expected
        assert device.stats.reads == 200
