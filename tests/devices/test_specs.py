"""Device catalog and factory."""

import pytest

from repro.devices.hdd import HDDModel
from repro.devices.specs import (
    DEVICE_SPECS,
    make_device,
    paper_hdd,
    paper_ssd,
)
from repro.devices.ssd import SSDModel
from repro.errors import DeviceError
from repro.util.units import GiB


class TestCatalog:
    def test_paper_devices_present(self):
        assert "sata-hdd-7200" in DEVICE_SPECS
        assert "pcie-ssd" in DEVICE_SPECS

    def test_paper_hdd_matches_testbed(self, engine):
        hdd = paper_hdd(engine)
        assert isinstance(hdd, HDDModel)
        assert hdd.capacity_bytes == 250 * GiB
        assert hdd.rpm == 7200.0

    def test_paper_ssd_matches_testbed(self, engine):
        ssd = paper_ssd(engine)
        assert isinstance(ssd, SSDModel)
        assert ssd.capacity_bytes == 100 * GiB

    def test_all_specs_instantiate(self, engine):
        for name in DEVICE_SPECS:
            device = make_device(engine, name)
            assert device.capacity_bytes > 0

    def test_unknown_spec_lists_known(self, engine):
        with pytest.raises(DeviceError, match="sata-hdd-7200"):
            make_device(engine, "floppy")

    def test_overrides_apply(self, engine):
        hdd = make_device(engine, "sata-hdd-7200",
                          capacity_bytes=1 * GiB)
        assert hdd.capacity_bytes == 1 * GiB

    def test_custom_name(self, engine):
        device = make_device(engine, "ramdisk", name="scratch")
        assert device.name == "scratch"

    def test_ssd_faster_than_hdd_for_small_random_reads(self, engine):
        from repro.devices.base import DeviceRequest, READ
        hdd = paper_hdd(engine)
        ssd = paper_ssd(engine)
        request = DeviceRequest(READ, 64 * GiB, 4096)
        assert ssd.service_time(request) < hdd.service_time(request) / 10
