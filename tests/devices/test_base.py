"""Device machinery: requests, queueing, stats, schedulers."""

import pytest

from repro.devices.base import (
    DeviceRequest,
    DeviceResult,
    READ,
    WRITE,
)
from repro.devices.ramdisk import RamDisk
from repro.errors import DeviceError
from repro.util.units import MiB


class TestDeviceRequest:
    def test_valid_request(self):
        request = DeviceRequest(READ, 0, 4096)
        assert request.end == 4096

    def test_unknown_op_rejected(self):
        with pytest.raises(DeviceError):
            DeviceRequest("erase", 0, 4096)

    def test_negative_offset_rejected(self):
        with pytest.raises(DeviceError):
            DeviceRequest(READ, -1, 4096)

    def test_zero_size_rejected(self):
        with pytest.raises(DeviceError):
            DeviceRequest(READ, 0, 0)


class TestSubmission:
    def test_result_latency_and_success(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB)
        done = device.access(READ, 0, 4096)
        engine.run()
        result = done.result()
        assert isinstance(result, DeviceResult)
        assert result.success
        assert result.latency > 0
        assert result.request.nbytes == 4096

    def test_out_of_range_rejected(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB)
        with pytest.raises(DeviceError):
            device.access(READ, 1 * MiB - 100, 4096)

    def test_stats_accumulate(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB)
        device.access(READ, 0, 4096)
        device.access(WRITE, 4096, 8192)
        engine.run()
        assert device.stats.reads == 1
        assert device.stats.writes == 1
        assert device.stats.bytes_read == 4096
        assert device.stats.bytes_written == 8192
        assert device.stats.bytes_moved == 12288
        assert device.stats.ops == 2

    def test_channels_limit_concurrency(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB, channels=1,
                         transfer_rate=1 * MiB, access_latency_s=0.0)
        first = device.access(READ, 0, 512 * 1024)
        second = device.access(READ, 0, 512 * 1024)
        engine.run()
        # With one channel the second must wait for the first.
        assert second.result().end >= first.result().end
        assert second.result().latency > first.result().latency

    def test_multi_channel_overlaps(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB, channels=2,
                         transfer_rate=1 * MiB, access_latency_s=0.0)
        first = device.access(READ, 0, 512 * 1024)
        second = device.access(READ, 0, 512 * 1024)
        engine.run()
        assert first.result().end == pytest.approx(second.result().end)

    def test_utilization_tracked(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB)
        device.access(READ, 0, 4096)
        engine.run()
        assert device.utilization.busy_time > 0

    def test_bad_scheduler_rejected(self, engine):
        from repro.devices.base import BlockDevice
        with pytest.raises(DeviceError):
            BlockDevice(engine, "bad", 1 * MiB, scheduler="random")

    def test_bad_capacity_rejected(self, engine):
        from repro.devices.base import BlockDevice
        with pytest.raises(DeviceError):
            BlockDevice(engine, "bad", 0)

    def test_jitter_changes_latency_but_not_bytes(self, engine, rng):
        device = RamDisk(engine, capacity_bytes=1 * MiB, rng=rng,
                         jitter_sigma=0.5, channels=1)
        first = device.access(READ, 0, 4096)
        second = device.access(READ, 4096, 4096)
        engine.run()
        assert first.result().latency != second.result().latency
        assert device.stats.bytes_read == 8192
