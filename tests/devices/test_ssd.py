"""SSD model: latency asymmetry, channel parallelism."""

import pytest

from repro.devices.base import DeviceRequest, READ, WRITE
from repro.devices.ssd import SSDModel
from repro.errors import DeviceError
from repro.util.units import GiB, KiB, MiB


@pytest.fixture
def ssd(engine):
    return SSDModel(engine, capacity_bytes=10 * GiB)


class TestServiceTime:
    def test_no_positional_state(self, ssd):
        near = ssd.service_time(DeviceRequest(READ, 0, 4 * KiB))
        far = ssd.service_time(DeviceRequest(READ, 9 * GiB, 4 * KiB))
        assert near == far

    def test_writes_slower_than_reads(self, ssd):
        read = ssd.service_time(DeviceRequest(READ, 0, 4 * KiB))
        write = ssd.service_time(DeviceRequest(WRITE, 0, 4 * KiB))
        assert write > read

    def test_transfer_scales_with_size(self, ssd):
        small = ssd.service_time(DeviceRequest(READ, 0, 4 * KiB))
        large = ssd.service_time(DeviceRequest(READ, 0, 4 * MiB))
        assert large > small
        assert large - small == pytest.approx(
            (4 * MiB - 4 * KiB) / ssd.channel_rate)

    def test_negative_latency_rejected(self, engine):
        with pytest.raises(DeviceError):
            SSDModel(engine, read_latency_s=-1.0)

    def test_zero_channel_rate_rejected(self, engine):
        with pytest.raises(DeviceError):
            SSDModel(engine, channel_rate=0.0)


class TestChannelParallelism:
    def test_parallel_up_to_channel_count(self, engine):
        ssd = SSDModel(engine, capacity_bytes=1 * GiB, channels=4)
        done = [ssd.access(READ, i * MiB, 1 * MiB) for i in range(4)]
        engine.run()
        ends = [d.result().end for d in done]
        assert max(ends) == pytest.approx(min(ends))

    def test_queueing_beyond_channels(self, engine):
        ssd = SSDModel(engine, capacity_bytes=1 * GiB, channels=2)
        done = [ssd.access(READ, i * MiB, 1 * MiB) for i in range(4)]
        engine.run()
        ends = sorted(d.result().end for d in done)
        assert ends[2] > ends[0]  # third request waited for a channel

    def test_aggregate_bandwidth_scales_with_channels(self, engine):
        narrow_engine, wide_engine = engine, type(engine)()
        narrow = SSDModel(narrow_engine, capacity_bytes=1 * GiB, channels=1)
        wide = SSDModel(wide_engine, capacity_bytes=1 * GiB, channels=4)
        for i in range(4):
            narrow.access(READ, i * MiB, 1 * MiB)
            wide.access(READ, i * MiB, 1 * MiB)
        narrow_engine.run()
        wide_engine.run()
        assert narrow_engine.now > 3 * wide_engine.now
