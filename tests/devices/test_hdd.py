"""HDD model: sequential vs random costs, seek curve, stream cache."""

import pytest

from repro.devices.base import DeviceRequest, READ
from repro.devices.hdd import HDDModel
from repro.errors import DeviceError
from repro.util.units import GiB, KiB, MiB


@pytest.fixture
def hdd(engine):
    return HDDModel(engine, capacity_bytes=10 * GiB)


class TestTimingComponents:
    def test_rotation_period_from_rpm(self, hdd):
        assert hdd.rotation_period_s == pytest.approx(60.0 / 7200.0)

    def test_avg_rotational_latency_is_half_period(self, hdd):
        # The empirical half-revolution relation the paper quotes.
        assert hdd.avg_rotational_latency_s == pytest.approx(
            hdd.rotation_period_s / 2)

    def test_seek_zero_distance(self, hdd):
        assert hdd.seek_time(100, 100) == 0.0

    def test_seek_grows_with_distance(self, hdd):
        near = hdd.seek_time(0, 1 * MiB)
        far = hdd.seek_time(0, 5 * GiB)
        assert hdd.track_to_track_s <= near < far <= hdd.full_stroke_s

    def test_full_stroke_bound(self, hdd):
        assert hdd.seek_time(0, hdd.capacity_bytes) == pytest.approx(
            hdd.full_stroke_s)

    def test_invalid_rpm_rejected(self, engine):
        with pytest.raises(DeviceError):
            HDDModel(engine, rpm=0)

    def test_inconsistent_seek_times_rejected(self, engine):
        with pytest.raises(DeviceError):
            HDDModel(engine, full_stroke_s=0.0001, track_to_track_s=0.001)


class TestServiceTime:
    def test_sequential_pays_no_positioning(self, hdd):
        first = DeviceRequest(READ, 0, 64 * KiB)
        assert hdd.service_time(first) == pytest.approx(
            hdd.command_overhead_s + 64 * KiB / hdd.transfer_rate)

    def test_random_pays_seek_and_rotation(self, hdd):
        request = DeviceRequest(READ, 1 * GiB, 64 * KiB)
        sequential_cost = (hdd.command_overhead_s
                           + 64 * KiB / hdd.transfer_rate)
        assert hdd.service_time(request) > (
            sequential_cost + hdd.avg_rotational_latency_s)

    def test_head_position_advances(self, engine, hdd):
        hdd.access(READ, 0, 64 * KiB)
        engine.run()
        assert hdd.head_position == 64 * KiB

    def test_back_to_back_sequential_run_is_fast(self, engine, hdd):
        # A sequential scan: every request after the first continues the
        # head position, so total time ~ bytes / transfer_rate.
        def scan(eng):
            for i in range(16):
                yield hdd.access(READ, i * 64 * KiB, 64 * KiB)
        engine.spawn(scan(engine))
        engine.run()
        pure_transfer = 16 * 64 * KiB / hdd.transfer_rate
        overheads = 16 * hdd.command_overhead_s
        assert engine.now == pytest.approx(pure_transfer + overheads)


class TestStreamCache:
    def test_two_interleaved_streams_stay_sequential(self, engine, hdd):
        # Streams at 0 and 1 GiB, interleaved request by request.  With
        # the segmented cache no positioning cost applies after the two
        # initial misses.
        def interleaved(eng):
            for i in range(8):
                yield hdd.access(READ, i * 64 * KiB, 64 * KiB)
                yield hdd.access(READ, 1 * GiB + i * 64 * KiB, 64 * KiB)
        engine.spawn(interleaved(engine))
        engine.run()
        transfer = 16 * 64 * KiB / hdd.transfer_rate
        overheads = 16 * hdd.command_overhead_s
        # Exactly one positioning penalty (the jump to the second
        # stream's start); the first request at offset 0 is sequential
        # because the head parks at 0.
        positioning = (hdd.seek_time(64 * KiB, 1 * GiB)
                       + hdd.avg_rotational_latency_s)
        assert engine.now == pytest.approx(
            transfer + overheads + positioning, rel=0.05)

    def test_stream_capacity_evicts_oldest(self, engine):
        hdd = HDDModel(engine, capacity_bytes=10 * GiB, cache_segments=2)
        # Three interleaved streams with only two cache segments: the
        # round-robin pattern evicts each stream before it returns, so
        # every access pays positioning.
        def interleaved(eng):
            for i in range(4):
                for base in (0, 1 * GiB, 2 * GiB):
                    yield hdd.access(READ, base + i * 64 * KiB, 64 * KiB)
        engine.spawn(interleaved(engine))
        engine.run()
        rotations = 12 * hdd.avg_rotational_latency_s
        assert engine.now > rotations  # all 12 accesses paid positioning

    def test_random_access_still_pays(self, engine, hdd):
        request_far = DeviceRequest(READ, 5 * GiB, 4 * KiB)
        cost = hdd.service_time(request_far)
        assert cost > hdd.avg_rotational_latency_s

    def test_bad_cache_segments_rejected(self, engine):
        with pytest.raises(DeviceError):
            HDDModel(engine, cache_segments=0)
