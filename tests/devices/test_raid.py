"""RAID arrays: striping, mirroring, capacity, fault propagation."""

import pytest

from repro.devices.base import FaultInjector, READ, WRITE
from repro.devices.raid import RAIDArray
from repro.devices.ramdisk import RamDisk
from repro.devices.specs import make_device
from repro.errors import DeviceError
from repro.util.units import GiB, KiB, MiB


def members(engine, n, **kwargs):
    defaults = dict(capacity_bytes=1 * GiB, channels=1,
                    transfer_rate=100 * MiB, access_latency_s=0.0)
    defaults.update(kwargs)
    return [RamDisk(engine, name=f"m{i}", **defaults) for i in range(n)]


class TestConstruction:
    def test_raid0_capacity_sums(self, engine):
        array = RAIDArray(engine, members(engine, 4), level=0)
        assert array.capacity_bytes == 4 * GiB

    def test_raid1_capacity_is_one_member(self, engine):
        array = RAIDArray(engine, members(engine, 2), level=1)
        assert array.capacity_bytes == 1 * GiB

    def test_validation(self, engine):
        with pytest.raises(DeviceError):
            RAIDArray(engine, members(engine, 1), level=0)
        with pytest.raises(DeviceError):
            RAIDArray(engine, members(engine, 2), level=5)
        with pytest.raises(DeviceError):
            RAIDArray(engine, members(engine, 2), chunk_size=0)
        mismatched = members(engine, 1) + [
            RamDisk(engine, capacity_bytes=2 * GiB)]
        with pytest.raises(DeviceError):
            RAIDArray(engine, mismatched)

    def test_out_of_range_rejected(self, engine):
        array = RAIDArray(engine, members(engine, 2), level=1)
        with pytest.raises(DeviceError):
            array.access(READ, 1 * GiB - 10, 100)


class TestRaid0:
    def test_stripes_across_members(self, engine):
        array = RAIDArray(engine, members(engine, 4), level=0,
                          chunk_size=64 * KiB)
        done = array.access(READ, 0, 256 * KiB)
        engine.run()
        assert done.result().success
        for member in array.members:
            assert member.stats.bytes_read == 64 * KiB

    def test_bandwidth_scales(self, engine):
        # Same total read on 1 device vs RAID-0 of 4: array ~4x faster.
        single_engine = type(engine)()
        single = members(single_engine, 1)[0]
        single.access(READ, 0, 1 * MiB)
        single_engine.run()

        array = RAIDArray(engine, members(engine, 4), level=0)
        array.access(READ, 0, 1 * MiB)
        engine.run()
        assert engine.now < single_engine.now / 3

    def test_stats(self, engine):
        array = RAIDArray(engine, members(engine, 2), level=0)
        array.access(READ, 0, 128 * KiB)
        array.access(WRITE, 0, 128 * KiB)
        engine.run()
        assert array.stats.reads == 1
        assert array.stats.writes == 1
        assert array.stats.bytes_moved == 256 * KiB


class TestRaid1:
    def test_writes_hit_all_mirrors(self, engine):
        array = RAIDArray(engine, members(engine, 2), level=1)
        array.access(WRITE, 0, 64 * KiB)
        engine.run()
        for member in array.members:
            assert member.stats.bytes_written == 64 * KiB

    def test_reads_balance_across_mirrors(self, engine):
        array = RAIDArray(engine, members(engine, 2), level=1)
        for i in range(4):
            array.access(READ, i * 64 * KiB, 64 * KiB)
        engine.run()
        assert array.members[0].stats.bytes_read == 128 * KiB
        assert array.members[1].stats.bytes_read == 128 * KiB


class TestFaults:
    def test_member_fault_fails_array_request(self, engine, rng):
        bad = RamDisk(engine, capacity_bytes=1 * GiB,
                      fault_injector=FaultInjector(rng, probability=1.0))
        good = RamDisk(engine, capacity_bytes=1 * GiB)
        array = RAIDArray(engine, [good, bad], level=0,
                          chunk_size=64 * KiB)
        done = array.access(READ, 0, 256 * KiB)  # spans both members
        engine.run()
        result = done.result()
        assert not result.success
        assert array.stats.faults == 1


class TestSpecs:
    def test_raid_specs_instantiate(self, engine):
        array = make_device(engine, "raid0-hdd-4")
        assert isinstance(array, RAIDArray)
        assert len(array.members) == 4
        mirror = make_device(engine, "raid1-hdd-2")
        assert mirror.level == 1

    def test_raid_array_behind_a_filesystem(self, engine):
        from repro.fs.localfs import LocalFileSystem
        array = RAIDArray(engine, members(engine, 4), level=0)
        fs = LocalFileSystem(engine, array, page_cache=None)
        fs.create("f", 4 * MiB)
        done = fs.read("f", 0, 1 * MiB)
        engine.run()
        assert done.result().success
        assert done.result().device_bytes == 1 * MiB

    def test_raid_spec_in_system_config(self):
        from repro.system import SystemConfig, build_system
        system = build_system(SystemConfig(
            kind="local", device_spec="raid0-hdd-4"))
        assert system.localfs is not None
