"""CLI toolkit end to end."""

import json

import pytest

from repro.cli import main
from repro.core.records import IORecord, TraceCollection
from repro.trace_io.csvtrace import write_csv_trace
from repro.trace_io.jsonltrace import write_jsonl_trace


@pytest.fixture
def csv_trace(tmp_path):
    trace = TraceCollection([
        IORecord(0, "read", 4096, 0.0, 0.5),
        IORecord(1, "read", 4096, 0.25, 0.75),
    ])
    path = tmp_path / "trace.csv"
    write_csv_trace(trace, path)
    return path


class TestAnalyze:
    def test_analyze_csv(self, csv_trace, capsys):
        assert main(["analyze", str(csv_trace)]) == 0
        out = capsys.readouterr().out
        assert "BPS (blocks/s)" in out
        assert "2 records" in out
        assert "2 processes" in out

    def test_analyze_jsonl_by_suffix(self, tmp_path, capsys):
        trace = TraceCollection([IORecord(0, "read", 512, 0.0, 1.0)])
        path = tmp_path / "trace.jsonl"
        write_jsonl_trace(trace, path)
        assert main(["analyze", str(path)]) == 0
        assert "BPS" in capsys.readouterr().out

    def test_explicit_format_and_block_size(self, csv_trace, capsys):
        assert main(["analyze", str(csv_trace), "--format", "csv",
                     "--block-size", "4096"]) == 0
        out = capsys.readouterr().out
        assert "application blocks (B) | 2" in out

    def test_bins_prints_time_series(self, csv_trace, capsys):
        assert main(["analyze", str(csv_trace), "--bins", "4"]) == 0
        out = capsys.readouterr().out
        assert "BPS over time" in out
        assert out.count("[") >= 4  # one window row per bin

    def test_exec_time_override(self, csv_trace, capsys):
        assert main(["analyze", str(csv_trace),
                     "--exec-time", "10.0"]) == 0
        assert "10.000s" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert main(["analyze", "/no/such/trace.csv"]) == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_trace_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("pid,op\n")
        assert main(["analyze", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestFigures:
    def test_list(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table1" in out

    def test_no_id_lists(self, capsys):
        assert main(["figures"]) == 0
        assert "fig4" in capsys.readouterr().out

    def test_table1_renders(self, capsys):
        assert main(["figures", "table1"]) == 0
        out = capsys.readouterr().out
        assert "ARPT" in out and "positive" in out

    def test_unknown_figure_is_error(self, capsys):
        assert main(["figures", "fig99"]) == 1
        assert "unknown figure" in capsys.readouterr().err


class TestCompare:
    def test_compare_two_traces(self, csv_trace, tmp_path, capsys):
        fast = TraceCollection([
            IORecord(0, "read", 4096, 0.0, 0.1),
            IORecord(1, "read", 4096, 0.05, 0.15),
        ])
        fast_path = tmp_path / "fast.csv"
        write_csv_trace(fast, fast_path)
        assert main(["compare", str(csv_trace), str(fast_path)]) == 0
        out = capsys.readouterr().out
        assert "B/A" in out
        assert "BPS agrees: yes" in out

    def test_compare_missing_file(self, csv_trace, capsys):
        assert main(["compare", str(csv_trace), "/no/such.csv"]) == 1


class TestGantt:
    def test_gantt_renders(self, csv_trace, capsys):
        assert main(["gantt", str(csv_trace), "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "pid" in out
        assert "#" in out
        assert "overlap surplus" in out

    def test_gantt_missing_file(self, capsys):
        assert main(["gantt", "/no/such.csv"]) == 1


class TestExperiments:
    def test_registry_listed(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "Hpio" in out and "IOzone" in out


class TestSweep:
    def test_sweep_runs_and_prints_cc(self, capsys):
        assert main(["sweep", "set4", "--scale", "0.25",
                     "--reps", "2"]) == 0
        out = capsys.readouterr().out
        assert "BPS" in out and "MISLEADING" in out

    def test_sweep_with_ci_and_detail(self, capsys):
        assert main(["sweep", "set5", "--scale", "0.25", "--reps", "2",
                     "--ci", "--detail"]) == 0
        out = capsys.readouterr().out
        assert "95% CI" in out
        assert "exec_time" in out

    def test_sweep_csv_export(self, tmp_path, capsys):
        target = tmp_path / "sweep.csv"
        assert main(["sweep", "set5", "--scale", "0.25", "--reps", "2",
                     "--csv", str(target)]) == 0
        text = target.read_text()
        header, *rows = text.strip().splitlines()
        assert header.startswith("point,iops,")
        assert len(rows) == 6  # one row per queue depth


class TestSimulate:
    def test_iozone_local(self, capsys):
        assert main(["simulate", "--workload", "iozone",
                     "--size", "2MiB", "--record", "64KiB"]) == 0
        out = capsys.readouterr().out
        assert "BPS (blocks/s)" in out
        assert "iozone" in out

    def test_ior_on_pfs(self, capsys):
        assert main(["simulate", "--workload", "ior", "--kind", "pfs",
                     "--servers", "2", "--size", "2MiB",
                     "--nproc", "2"]) == 0
        assert "ior" in capsys.readouterr().out

    def test_hpio(self, capsys):
        assert main(["simulate", "--workload", "hpio", "--kind", "pfs",
                     "--regions", "128", "--record", "512"]) == 0
        out = capsys.readouterr().out
        assert "fs amplification" in out

    def test_bad_workload_config_is_error(self, capsys):
        # record size bigger than the file
        assert main(["simulate", "--workload", "iozone",
                     "--size", "4KiB", "--record", "64KiB"]) == 1


@pytest.fixture
def jsonl_trace(tmp_path):
    trace = TraceCollection([
        IORecord(0, "read", 4096, i * 0.01, i * 0.01 + 0.02)
        for i in range(40)
    ])
    path = tmp_path / "trace.jsonl"
    write_jsonl_trace(trace, path)
    return path


class TestWatch:
    def test_watch_streams_windows_and_summary(self, jsonl_trace,
                                               capsys):
        assert main(["watch", str(jsonl_trace), "--bins", "5"]) == 0
        out = capsys.readouterr().out
        assert "5 windows" in out
        assert "cumulative (streamed)" in out
        assert "BPS (blocks/s)" in out

    def test_watch_matches_analyze(self, jsonl_trace, capsys):
        assert main(["watch", str(jsonl_trace)]) == 0
        watch_out = capsys.readouterr().out
        assert main(["analyze", str(jsonl_trace)]) == 0
        analyze_out = capsys.readouterr().out

        def summary_rows(text):
            return [line for line in text.splitlines()
                    if line.startswith(("BPS", "IOPS", "union I/O"))]
        assert summary_rows(watch_out) == summary_rows(analyze_out)

    def test_watch_explicit_window(self, jsonl_trace, capsys):
        assert main(["watch", str(jsonl_trace),
                     "--window", "0.1"]) == 0
        assert "windows" in capsys.readouterr().out

    def test_watch_writes_sinks(self, jsonl_trace, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main(["watch", str(jsonl_trace),
                     "--jsonl-out", str(events),
                     "--prom-out", str(prom)]) == 0
        lines = [json.loads(line)
                 for line in events.read_text().splitlines()]
        assert lines[-1]["type"] == "final"
        assert "repro_live_bps" in prom.read_text()

    def test_watch_paced_speed(self, jsonl_trace, capsys):
        # Very fast pacing factor: finishes instantly but takes the
        # paced code path.
        assert main(["watch", str(jsonl_trace),
                     "--speed", "1000000"]) == 0
        assert "cumulative" in capsys.readouterr().out

    def test_watch_bad_speed_rejected(self, jsonl_trace, capsys):
        with pytest.raises(SystemExit):
            main(["watch", str(jsonl_trace), "--speed", "-1"])
        with pytest.raises(SystemExit):
            main(["watch", str(jsonl_trace), "--speed", "soon"])

    def test_watch_no_detector(self, jsonl_trace, capsys):
        assert main(["watch", str(jsonl_trace),
                     "--no-detector"]) == 0
        assert "0 anomalies" in capsys.readouterr().out

    def test_watch_empty_trace_is_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["watch", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestStdinTraces:
    def stdin_payload(self, n=10):
        lines = [json.dumps({"pid": 0, "op": "read", "nbytes": 4096,
                             "start": i * 0.01,
                             "end": i * 0.01 + 0.02})
                 for i in range(n)]
        return "\n".join(lines) + "\n"

    def test_analyze_reads_stdin(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            self.stdin_payload()))
        assert main(["analyze", "-"]) == 0
        out = capsys.readouterr().out
        assert "trace: -" in out
        assert "10 records" in out

    def test_watch_reads_stdin(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            self.stdin_payload()))
        assert main(["watch", "-", "--bins", "3"]) == 0
        assert "3 windows" in capsys.readouterr().out

    def test_replay_reads_stdin(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            self.stdin_payload()))
        assert main(["replay", "-", "--device", "sata-ssd"]) == 0
        out = capsys.readouterr().out
        assert "replayed 10 records" in out

    def test_stdin_format_override(self, monkeypatch, capsys):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "pid,op,nbytes,start,end\n0,read,4096,0.0,1.0\n"))
        assert main(["analyze", "-", "--format", "csv"]) == 0
        assert "1 records" in capsys.readouterr().out


class TestChaos:
    def test_serve_check_with_schedule_file_and_json_artifact(
            self, tmp_path, capsys):
        from repro.chaos import ChaosSchedule, schedule_to_dict

        # A quiet lines-mode schedule keeps this CLI test fast; the
        # adversarial defaults are exercised in tests/chaos/.
        schedule_path = tmp_path / "schedule.json"
        schedule_path.write_text(json.dumps(
            schedule_to_dict(ChaosSchedule(seed=4, mode="lines"))))
        report_path = tmp_path / "report.json"
        assert main(["chaos", "--check", "serve", "--records", "60",
                     "--schedule", str(schedule_path),
                     "--json", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["passed"] is True
        assert report["checks"][0]["check"] == "serve"
        assert "identical" in capsys.readouterr().err

    def test_malformed_schedule_file_is_an_error(self, tmp_path,
                                                 capsys):
        schedule_path = tmp_path / "schedule.json"
        schedule_path.write_text(json.dumps({"seed": 0, "evnets": []}))
        assert main(["chaos", "--check", "serve",
                     "--schedule", str(schedule_path)]) == 1
        assert "unknown schedule keys" in capsys.readouterr().err

    def test_unknown_check_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--check", "saturday"])
