"""The documentation's code must actually run.

docs/custom_workloads.md builds a producer/consumer workload; this test
is that exact code, executed.  If the tutorial drifts from the API,
this file fails.
"""

from dataclasses import dataclass, field

import pytest

from repro import SystemConfig
from repro.util.units import KiB
from repro.workloads.base import Workload


@dataclass
class LogShippingWorkload(Workload):
    """One producer appends log segments; one consumer tails them."""

    segments: int = 32
    segment_bytes: int = 64 * KiB
    name: str = field(default="logship", init=False)

    def _file(self):
        return f"logship.{self.pid_base}"

    def setup(self, system):
        total = self.segments * self.segment_bytes
        system.shared_mount().create(self._file(), total)
        self._ready = [system.engine.completion()
                       for _ in range(self.segments)]

    def processes(self, system):
        return [(self.pid_base + 0, self._producer(system)),
                (self.pid_base + 1, self._consumer(system))]

    def _producer(self, system):
        lib = system.posix_for(self.pid_base + 0)
        handle = lib.open(self._file(), self.pid_base + 0)
        for index in range(self.segments):
            yield handle.pwrite(index * self.segment_bytes,
                                self.segment_bytes)
            self._ready[index].trigger(index)

    def _consumer(self, system):
        lib = system.posix_for(self.pid_base + 1)
        handle = lib.open(self._file(), self.pid_base + 1)
        for index in range(self.segments):
            yield self._ready[index]
            yield handle.pread(index * self.segment_bytes,
                               self.segment_bytes)


class TestTutorialWorkload:
    def test_runs_and_measures(self):
        measurement = LogShippingWorkload().run(
            SystemConfig(kind="pfs", n_servers=4))
        metrics = measurement.metrics()
        assert metrics.bps > 0
        assert len(measurement.trace) == 64  # 32 writes + 32 reads
        assert measurement.extras["devices"]

    def test_consumer_never_reads_ahead_of_producer(self):
        measurement = LogShippingWorkload(segments=8).run(
            SystemConfig(kind="local"))
        writes = {r.offset: r for r in measurement.trace.for_op("write")}
        for read in measurement.trace.for_op("read"):
            assert read.start >= writes[read.offset].end

    def test_composable_into_multi_application_run(self):
        from repro.workloads import CompositeWorkload
        composite = CompositeWorkload(members=[
            LogShippingWorkload(segments=8),
            LogShippingWorkload(segments=8),
        ])
        measurement = composite.run(SystemConfig(kind="local"))
        assert set(measurement.trace.pids()) == {0, 1, 1000, 1001}

    def test_sweep_snippet_runs(self):
        from repro.experiments.runner import (
            ExperimentScale,
            SweepSpec,
            run_sweep,
        )
        from repro.util.units import MiB
        total = 2 * MiB
        points = []
        for segment_kib in (16, 64, 256):
            def make(_s=segment_kib):
                return LogShippingWorkload(
                    segments=total // (_s * 1024),  # fixed total data
                    segment_bytes=_s * 1024)
            points.append((f"{segment_kib}KiB", make,
                           SystemConfig(kind="pfs", n_servers=4,
                                        jitter_sigma=0.08)))
        sweep = run_sweep(SweepSpec(knob="segment size", points=points),
                          ExperimentScale(repetitions=2))
        table = sweep.correlations()
        assert table["BPS"].direction_correct
        # Fixed demand: every point asked for the same bytes.
        assert len({m.app_bytes for m in sweep.averaged()}) == 1
