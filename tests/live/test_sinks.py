"""Telemetry sinks: memory, JSONL, Prometheus, fail-safe wrapping."""

import io
import json
import warnings

import pytest

from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.errors import LiveStreamError
from repro.live import (
    BpsAnomalyDetector,
    FailSafeSink,
    JsonlSink,
    MemorySink,
    MetricStream,
    PrometheusSink,
    apply_sink_policy,
)


def run_stream(*sinks, detector=None):
    stream = MetricStream(window=0.1, block_size=512, sinks=list(sinks),
                          detector=detector)
    for i in range(20):
        stream.ingest(IORecord(0, "read", 4096, i * 0.02,
                               i * 0.02 + 0.015))
    return stream.finalize()


class TestMemorySink:
    def test_collects_typed_events(self):
        sink = MemorySink()
        run_stream(sink)
        assert sink.of_type("window")
        assert len(sink.of_type("final")) == 1
        assert sink.closed

    def test_events_are_copied_from_the_emitter(self):
        sink = MemorySink()
        event = {"type": "window", "bps": 1.0}
        sink.emit(event)
        event["bps"] = 2.0  # emitter reuses its dict
        assert sink.events[0]["bps"] == 1.0

    def test_emit_after_close_rejected(self):
        sink = MemorySink()
        sink.close()
        with pytest.raises(LiveStreamError):
            sink.emit({"type": "window"})


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        run_stream(sink)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == sink.events_written
        events = [json.loads(line) for line in lines]
        assert events[-1]["type"] == "final"
        assert {"window", "final"} <= {e["type"] for e in events}

    def test_accepts_open_handle_without_closing_it(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        run_stream(sink)
        assert not handle.closed  # caller owns the handle
        assert handle.getvalue().count("\n") == sink.events_written


class TestPrometheusSink:
    def test_exposition_file_has_gauges(self, tmp_path):
        path = tmp_path / "metrics.prom"
        run_stream(PrometheusSink(path))
        text = path.read_text()
        assert '# TYPE repro_live_bps gauge' in text
        assert 'repro_live_bps{scope="cumulative"}' in text
        assert 'repro_live_bps{scope="window"}' in text
        assert "repro_live_anomalies_total 0" in text

    def test_final_gauges_match_result(self, tmp_path):
        path = tmp_path / "metrics.prom"
        result = run_stream(PrometheusSink(path))
        for line in path.read_text().splitlines():
            if line.startswith('repro_live_bps{scope="cumulative"}'):
                assert float(line.split()[-1]) == result.metrics.bps
                break
        else:
            pytest.fail("cumulative BPS gauge missing")

    def test_anomaly_counter_increments(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusSink(path)
        stream = MetricStream(window=0.1, block_size=512, sinks=[sink],
                              detector=BpsAnomalyDetector(min_history=3))
        # Healthy traffic, then a stall long enough to flag.
        t = 0.0
        for _ in range(50):
            stream.ingest(IORecord(0, "read", 65536, t, t + 0.09))
            t += 0.1
        stream.ingest(IORecord(0, "read", 512, t + 2.0, t + 2.001))
        stream.finalize()
        text = path.read_text()
        count = int(text.rsplit("repro_live_anomalies_total ", 1)[1]
                    .split()[0])
        assert count >= 1
        assert count == sink.anomaly_count


class _AlwaysFails:
    """A sink whose every emit/close raises (dead scrape target)."""

    def __init__(self):
        self.attempts = 0

    def emit(self, event):
        self.attempts += 1
        raise OSError("no space left on device")

    def close(self):
        raise OSError("close failed too")


class TestFailSafeSink:
    def test_policy_validation(self):
        with pytest.raises(LiveStreamError):
            FailSafeSink(MemorySink(), policy="ignore")
        with pytest.raises(LiveStreamError):
            FailSafeSink(MemorySink(), policy="disable", max_failures=0)

    def test_raise_policy_is_transparent(self):
        wrapped = FailSafeSink(_AlwaysFails(), policy="raise")
        with pytest.raises(OSError):
            wrapped.emit({"type": "window"})

    def test_warn_policy_drops_and_keeps_trying(self):
        inner = _AlwaysFails()
        wrapped = FailSafeSink(inner, policy="warn")
        with pytest.warns(RuntimeWarning, match="event dropped"):
            for _ in range(8):
                wrapped.emit({"type": "window"})
        assert inner.attempts == 8  # never disabled
        assert wrapped.dropped_events == 8
        assert not wrapped.disabled

    def test_disable_policy_stops_after_consecutive_failures(self):
        inner = _AlwaysFails()
        wrapped = FailSafeSink(inner, policy="disable", max_failures=3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(10):
                wrapped.emit({"type": "window"})
        assert any("disabled after 3" in str(w.message) for w in caught)
        assert inner.attempts == 3
        assert wrapped.disabled
        assert wrapped.dropped_events == 10
        assert isinstance(wrapped.last_error, OSError)

    def test_success_resets_the_consecutive_counter(self):
        class Flaky:
            def __init__(self):
                self.n = 0

            def emit(self, event):
                self.n += 1
                if self.n % 2:  # every odd attempt fails
                    raise OSError("flaky")

        wrapped = FailSafeSink(Flaky(), policy="disable", max_failures=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(12):
                wrapped.emit({"type": "window"})
        assert not wrapped.disabled  # failures never run consecutively

    def test_close_failure_follows_policy(self):
        wrapped = FailSafeSink(_AlwaysFails(), policy="warn")
        with pytest.warns(RuntimeWarning, match="during close"):
            wrapped.close()

    def test_apply_sink_policy(self):
        sinks = [MemorySink(), FailSafeSink(MemorySink())]
        assert apply_sink_policy(sinks, None) == sinks
        assert apply_sink_policy(sinks, "raise") == sinks
        wrapped = apply_sink_policy(sinks, "warn")
        assert isinstance(wrapped[0], FailSafeSink)
        assert wrapped[1] is sinks[1]  # already wrapped: left alone


class TestStreamWithFailingSinks:
    def test_streamed_equals_batch_with_every_sink_failing(self):
        records = [IORecord(0, "read", 4096, i * 0.02, i * 0.02 + 0.015)
                   for i in range(40)]
        stream = MetricStream(
            window=0.1, block_size=512,
            sinks=[_AlwaysFails(), _AlwaysFails()],
            sink_errors="warn")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for record in records:
                stream.ingest(record)
            result = stream.finalize()
        batch = compute_metrics(TraceCollection(records),
                                exec_time=result.metrics.exec_time,
                                block_size=512)
        assert result.metrics.bps == batch.bps
        assert result.metrics.iops == batch.iops
        assert result.metrics.bandwidth == batch.bandwidth
        assert result.metrics.union_io_time == batch.union_io_time
        assert result.metrics.app_blocks == batch.app_blocks

    def test_default_policy_still_raises(self):
        stream = MetricStream(window=0.1, block_size=512,
                              sinks=[_AlwaysFails()])
        with pytest.raises(OSError):
            stream.ingest(IORecord(0, "read", 4096, 0.0, 0.2))
            stream.finalize()

    def test_healthy_sink_unaffected_by_failing_neighbour(self):
        healthy = MemorySink()
        stream = MetricStream(
            window=0.1, block_size=512,
            sinks=[_AlwaysFails(), healthy],
            sink_errors="disable")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for i in range(20):
                stream.ingest(IORecord(0, "read", 4096, i * 0.02,
                                       i * 0.02 + 0.015))
            stream.finalize()
        assert healthy.of_type("window")
        assert len(healthy.of_type("final")) == 1
