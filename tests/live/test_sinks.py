"""Telemetry sinks: memory, JSONL event stream, Prometheus exposition."""

import io
import json

import pytest

from repro.core.records import IORecord
from repro.errors import LiveStreamError
from repro.live import (
    BpsAnomalyDetector,
    JsonlSink,
    MemorySink,
    MetricStream,
    PrometheusSink,
)


def run_stream(*sinks, detector=None):
    stream = MetricStream(window=0.1, block_size=512, sinks=list(sinks),
                          detector=detector)
    for i in range(20):
        stream.ingest(IORecord(0, "read", 4096, i * 0.02,
                               i * 0.02 + 0.015))
    return stream.finalize()


class TestMemorySink:
    def test_collects_typed_events(self):
        sink = MemorySink()
        run_stream(sink)
        assert sink.of_type("window")
        assert len(sink.of_type("final")) == 1
        assert sink.closed

    def test_events_are_copied_from_the_emitter(self):
        sink = MemorySink()
        event = {"type": "window", "bps": 1.0}
        sink.emit(event)
        event["bps"] = 2.0  # emitter reuses its dict
        assert sink.events[0]["bps"] == 1.0

    def test_emit_after_close_rejected(self):
        sink = MemorySink()
        sink.close()
        with pytest.raises(LiveStreamError):
            sink.emit({"type": "window"})


class TestJsonlSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        run_stream(sink)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == sink.events_written
        events = [json.loads(line) for line in lines]
        assert events[-1]["type"] == "final"
        assert {"window", "final"} <= {e["type"] for e in events}

    def test_accepts_open_handle_without_closing_it(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        run_stream(sink)
        assert not handle.closed  # caller owns the handle
        assert handle.getvalue().count("\n") == sink.events_written


class TestPrometheusSink:
    def test_exposition_file_has_gauges(self, tmp_path):
        path = tmp_path / "metrics.prom"
        run_stream(PrometheusSink(path))
        text = path.read_text()
        assert '# TYPE repro_live_bps gauge' in text
        assert 'repro_live_bps{scope="cumulative"}' in text
        assert 'repro_live_bps{scope="window"}' in text
        assert "repro_live_anomalies_total 0" in text

    def test_final_gauges_match_result(self, tmp_path):
        path = tmp_path / "metrics.prom"
        result = run_stream(PrometheusSink(path))
        for line in path.read_text().splitlines():
            if line.startswith('repro_live_bps{scope="cumulative"}'):
                assert float(line.split()[-1]) == result.metrics.bps
                break
        else:
            pytest.fail("cumulative BPS gauge missing")

    def test_anomaly_counter_increments(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusSink(path)
        stream = MetricStream(window=0.1, block_size=512, sinks=[sink],
                              detector=BpsAnomalyDetector(min_history=3))
        # Healthy traffic, then a stall long enough to flag.
        t = 0.0
        for _ in range(50):
            stream.ingest(IORecord(0, "read", 65536, t, t + 0.09))
            t += 0.1
        stream.ingest(IORecord(0, "read", 512, t + 2.0, t + 2.001))
        stream.finalize()
        text = path.read_text()
        count = int(text.rsplit("repro_live_anomalies_total ", 1)[1]
                    .split()[0])
        assert count >= 1
        assert count == sink.anomaly_count
