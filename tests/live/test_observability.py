"""Observability satellites: JSON-safe severity, anomaly Prometheus
families, finalize-time flag delivery, and trailing-window quiet."""

import io
import json
import math

from repro.core.records import IORecord
from repro.live import (
    BpsAnomalyDetector,
    JsonlSink,
    MemorySink,
    MetricStream,
    PrometheusSink,
)
from repro.live.anomaly import Anomaly
from repro.live.sinks import format_prometheus


def stalled_anomaly(**over):
    fields = dict(kind="bps-drop", window_index=7, window_start=0.7,
                  window_end=0.8, bps=0.0, baseline=1200.0,
                  severity=math.inf)
    fields.update(over)
    return Anomaly(**fields)


class TestSeveritySentinel:
    def test_stalled_severity_round_trips_through_json(self):
        event = stalled_anomaly().as_event()
        back = json.loads(json.dumps(event))
        assert back["severity"] is None
        assert back["stalled"] is True

    def test_finite_severity_round_trips_untouched(self):
        event = stalled_anomaly(bps=300.0, severity=4.0).as_event()
        back = json.loads(json.dumps(event))
        assert back["severity"] == 4.0
        assert back["stalled"] is False

    def test_jsonl_sink_lines_stay_parseable(self):
        handle = io.StringIO()
        sink = JsonlSink(handle)
        sink.emit(stalled_anomaly().as_event())
        sink.emit(stalled_anomaly(bps=300.0, severity=4.0).as_event())
        sink.close()
        lines = [json.loads(line)
                 for line in handle.getvalue().splitlines()]
        assert lines[0]["stalled"] and lines[0]["severity"] is None
        assert not lines[1]["stalled"] and lines[1]["severity"] == 4.0


class TestPrometheusAnomalyFamilies:
    def test_sink_counts_anomalies_and_tracks_severity(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusSink(path)
        sink.emit(stalled_anomaly(bps=300.0, severity=4.0).as_event())
        sink.emit(stalled_anomaly().as_event())
        text = path.read_text()
        assert "repro_anomalies_total 2" in text
        assert "repro_live_anomalies_total 2" in text
        assert "repro_last_anomaly_severity +Inf" in text

    def test_severity_gauge_absent_until_first_flag(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusSink(path)
        sink.emit({"type": "window", "bps": 100.0})
        assert "repro_last_anomaly_severity" not in path.read_text()

    def test_legacy_4_tuple_states_still_render(self):
        text = format_prometheus([({}, {"bps": 10.0}, {}, 3)])
        assert "repro_anomalies_total 3" in text
        assert "repro_last_anomaly_severity" not in text


def steady(index, window=1.0, ops=5, nbytes=65536):
    """``ops`` short records inside window ``index``."""
    out = []
    for k in range(ops):
        start = index * window + k * (window / (ops + 1))
        out.append(IORecord(pid=k % 2, op="read", nbytes=nbytes,
                            start=start, end=start + 0.05))
    return out


class TestFinalizeFlagDelivery:
    def test_unsettled_final_window_is_flagged_at_finalize(self):
        """A dip in the last window must reach the sinks even though
        no watermark ever passes it (the run just ends)."""
        sink = MemorySink()
        stream = MetricStream(window=1.0, origin=0.0, sinks=[sink],
                              detector=BpsAnomalyDetector(
                                  drop_factor=3.0, history=8,
                                  min_history=3))
        for index in range(6):
            for record in stream_records(index):
                stream.ingest(record)
        # Window 6: a single tiny record — a collapse, never settled.
        stream.ingest(IORecord(pid=0, op="read", nbytes=512,
                               start=6.0, end=6.9))
        stream.advance_watermark(6.0)
        result = stream.finalize()
        flagged = [a.window_index for a in result.anomalies]
        assert 6 in flagged
        assert any(e.get("index") == 6
                   for e in sink.of_type("anomaly"))

    def test_late_correction_rejudged_on_original_baseline(self):
        """A dirty window is re-judged against the baseline it was
        first judged with — a drifted end-of-run baseline must not
        flag a window that was healthy when it closed."""
        detector = BpsAnomalyDetector(drop_factor=3.0, history=8,
                                      min_history=3)
        stream = MetricStream(window=1.0, origin=0.0, detector=detector)
        for index in range(5):
            for record in stream_records(index):
                stream.ingest(record)
            stream.advance_watermark(float(index + 1))
        # Late record lands in the long-settled window 1 (tiny: barely
        # changes the stats; must not create a retroactive flag).
        stream.ingest(IORecord(pid=0, op="read", nbytes=512,
                               start=1.95, end=1.96))
        assert 1 in stream._dirty_windows
        # The detector's baseline then shoots up (a fail-fast storm).
        detector._baseline.extend([1e9] * 8)
        result = stream.finalize()
        assert all(a.window_index != 1 for a in result.anomalies)


def stream_records(index):
    return steady(index)


class TestTrailingWindows:
    def test_spillover_tail_is_not_a_stall(self):
        """Windows past the last *start* hold only spillover from long
        records still draining; their quiet is end-of-trace."""
        detector = BpsAnomalyDetector(drop_factor=3.0, history=8,
                                      min_history=3)
        stream = MetricStream(window=1.0, origin=0.0, detector=detector)
        for index in range(5):
            for record in steady(index):
                stream.ingest(record)
        # One long record: starts in window 4, drains through window 9.
        stream.ingest(IORecord(pid=0, op="read", nbytes=4096,
                               start=4.9, end=9.5))
        result = stream.finalize()
        assert all(a.window_index <= 4 for a in result.anomalies)

    def test_mid_run_silence_still_flags(self):
        """An empty window WITH later starts on record is a real stall."""
        detector = BpsAnomalyDetector(drop_factor=3.0, history=8,
                                      min_history=3)
        stream = MetricStream(window=1.0, origin=0.0, detector=detector)
        for index in range(5):
            for record in steady(index):
                stream.ingest(record)
        # Window 5 empty; work resumes in window 6.
        for record in steady(6):
            stream.ingest(record)
        result = stream.finalize()
        flagged = [a.window_index for a in result.anomalies]
        assert 5 in flagged
        stalled = [a for a in result.anomalies if a.window_index == 5]
        assert math.isinf(stalled[0].severity)
