"""Property suite: streaming union == batch union under any delivery.

The acceptance property of the whole subsystem: however the records are
permuted, buffered, or watermarked, the streamed union time equals the
batch :func:`~repro.core.intervals.union_time` **exactly** (``==``, not
approx) — endpoints are selected rather than computed, and both paths
sum the same canonical segment array.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.intervals import union_time
from repro.live import StreamingUnion

finite = st.floats(min_value=0.0, max_value=1e4,
                   allow_nan=False, allow_infinity=False)


@st.composite
def interval_lists(draw, max_size=60):
    n = draw(st.integers(min_value=1, max_value=max_size))
    out = []
    for _ in range(n):
        start = draw(finite)
        length = draw(st.floats(min_value=0.0, max_value=100.0,
                                allow_nan=False))
        out.append((start, start + length))
    return out


@st.composite
def permuted(draw, max_size=60):
    intervals = draw(interval_lists(max_size=max_size))
    return draw(st.permutations(intervals))


class TestStreamedEqualsBatch:
    @given(order=permuted())
    @settings(max_examples=120, deadline=None)
    def test_any_arrival_order(self, order):
        union = StreamingUnion()
        for start, end in order:
            union.add(start, end)
        assert union.finalize() == union_time(np.array(sorted(order)))

    @given(order=permuted(),
           capacity=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_tiny_reorder_buffer(self, order, capacity):
        union = StreamingUnion(reorder_capacity=capacity)
        for start, end in order:
            union.add(start, end)
        assert union.finalize() == union_time(np.array(sorted(order)))

    @given(order=permuted(),
           lag=st.floats(min_value=0.0, max_value=1e4,
                         allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_adversarial_watermark_lag(self, order, lag):
        union = StreamingUnion(watermark_lag=lag)
        for start, end in order:
            union.add(start, end)
        assert union.finalize() == union_time(np.array(sorted(order)))

    @given(order=permuted())
    @settings(max_examples=60, deadline=None)
    def test_mid_stream_queries_change_nothing(self, order):
        union = StreamingUnion(reorder_capacity=4)
        for k, (start, end) in enumerate(order):
            union.add(start, end)
            if k % 3 == 0:
                union.union_time()   # flushes pending
            if k % 5 == 0:
                union.segments()
        assert union.finalize() == union_time(np.array(sorted(order)))

    @given(intervals=interval_lists())
    @settings(max_examples=60, deadline=None)
    def test_batch_ingest_equals_batch(self, intervals):
        union = StreamingUnion()
        union.add_batch(np.array(intervals))
        assert union.finalize() == \
            union_time(np.array(sorted(intervals)))

    @given(order=permuted(max_size=40),
           splits=st.lists(st.integers(min_value=0, max_value=39),
                           max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_mixed_single_and_batch_ingest(self, order, splits):
        cuts = sorted({0, len(order), *[s for s in splits
                                        if s <= len(order)]})
        union = StreamingUnion()
        for lo, hi in zip(cuts, cuts[1:]):
            chunk = order[lo:hi]
            if len(chunk) == 1:
                union.add(*chunk[0])
            elif chunk:
                union.add_batch(np.array(chunk))
        assert union.finalize() == union_time(np.array(sorted(order)))

    @given(order=permuted())
    @settings(max_examples=60, deadline=None)
    def test_segments_are_disjoint_sorted_and_gapped(self, order):
        union = StreamingUnion()
        for start, end in order:
            union.add(start, end)
        union.finalize()
        segments = union.segments()
        for k in range(len(segments) - 1):
            assert segments[k + 1][0] > segments[k][1]  # strict gap
        for start, end in segments:
            assert end >= start
