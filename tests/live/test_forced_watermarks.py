"""Forced-watermark degradation under the ``max_pending`` heap bound.

Rung 2 of the serve load-shedding ladder (DESIGN.md §13): when the
reorder heap would exceed ``max_pending``, the watermark is forced past
the oldest pending start.  These tests pin the contract down exactly:

- ``forced_watermarks`` accounting is deterministic — with a lag wide
  enough that nothing drains naturally, every record past the bound
  forces exactly one trip;
- cumulative totals stay bit-identical to the batch pipeline under
  adversarial arrival lag, because the union insertion path is
  order-independent;
- the chunked ingest path (``push_chunk``) merges each batch directly
  into the sealed union without touching the heap, so it *structurally
  cannot* force watermarks.
"""

import numpy as np
import pytest

from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.live import MetricStream, chunk_trace


def steady_records(n=200, gap=0.005, dur=0.012, nbytes=4096):
    return [
        IORecord(pid=i % 3, op="read" if i % 2 else "write",
                 nbytes=nbytes, start=i * gap, end=i * gap + dur)
        for i in range(n)
    ]


def adversarial_order(records, seed=7):
    """A worst-case arrival order: uniformly shuffled completion lag."""
    rng = np.random.default_rng(seed)
    shuffled = list(records)
    rng.shuffle(shuffled)
    return shuffled


class TestPerRecordAccounting:
    def test_forced_count_is_exact_when_nothing_drains(self):
        # A lag wider than the whole trace keeps the watermark below
        # every start, so the only way out of the heap is the bound:
        # each record past max_pending forces exactly one trip.
        n, capacity = 200, 16
        records = steady_records(n=n)
        stream = MetricStream(window=0.1, max_pending=capacity,
                              watermark_lag=1e9)
        for i, record in enumerate(records):
            stream.ingest(record)
            assert stream.forced_watermarks == max(0, i + 1 - capacity)
        assert stream.forced_watermarks == n - capacity

    def test_totals_bit_identical_despite_forcing(self):
        records = steady_records(n=300)
        stream = MetricStream(window=0.1, max_pending=8,
                              watermark_lag=1e9)
        for record in adversarial_order(records):
            stream.ingest(record)
        result = stream.finalize()
        assert result.metrics.extras["forced_watermarks"] == \
            stream.forced_watermarks
        assert stream.forced_watermarks > 0
        batch = compute_metrics(TraceCollection(records),
                                exec_time=result.metrics.exec_time)
        assert result.metrics.bps == batch.bps
        assert result.metrics.union_io_time == batch.union_io_time
        assert result.metrics.app_ops == batch.app_ops
        assert result.metrics.app_blocks == batch.app_blocks

    def test_no_forcing_within_capacity(self):
        records = steady_records(n=64)
        stream = MetricStream(window=0.1, max_pending=64,
                              watermark_lag=1e9)
        for record in records:
            stream.ingest(record)
        assert stream.forced_watermarks == 0

    def test_windows_settled_under_forced_watermark_are_corrected(self):
        # Forcing may settle windows early; finalize reconciles them so
        # the window series still sums to the exact cumulative union.
        records = steady_records(n=150)
        stream = MetricStream(window=0.1, max_pending=4,
                              watermark_lag=1e9)
        for record in adversarial_order(records):
            stream.ingest(record)
        result = stream.finalize()
        assert stream.forced_watermarks > 0
        total = sum(w.io_time for w in result.windows)
        assert total == pytest.approx(result.metrics.union_io_time,
                                      rel=1e-12)


class TestChunkPathAccounting:
    @pytest.mark.parametrize("chunk_size", [7, 64])
    def test_chunked_ingest_cannot_force_watermarks(self, chunk_size):
        # add_batch folds each chunk straight into the sealed union via
        # a vectorised merge sweep — the reorder heap is never touched,
        # so even a tiny max_pending cannot trip rung 2.
        records = steady_records(n=200)
        stream = MetricStream(window=0.1, max_pending=2)
        trace = TraceCollection(adversarial_order(records))
        for chunk in chunk_trace(trace, chunk_size=chunk_size):
            stream.push_chunk(chunk)
        assert stream.forced_watermarks == 0
        result = stream.finalize()
        assert result.metrics.extras["forced_watermarks"] == 0
        batch = compute_metrics(TraceCollection(records),
                                exec_time=result.metrics.exec_time)
        assert result.metrics.bps == batch.bps
        assert result.metrics.union_io_time == batch.union_io_time
        assert result.metrics.app_ops == batch.app_ops

    def test_mixed_paths_account_separately(self):
        # Per-record ingest before a chunk push: only the per-record
        # half can force; totals still land exactly.
        records = steady_records(n=120)
        half = len(records) // 2
        stream = MetricStream(window=0.1, max_pending=8,
                              watermark_lag=1e9)
        for record in records[:half]:
            stream.ingest(record)
        forced_before = stream.forced_watermarks
        assert forced_before == half - 8
        for chunk in chunk_trace(TraceCollection(records[half:]),
                                 chunk_size=16):
            stream.push_chunk(chunk)
        assert stream.forced_watermarks == forced_before
        result = stream.finalize()
        batch = compute_metrics(TraceCollection(records),
                                exec_time=result.metrics.exec_time)
        assert result.metrics.bps == batch.bps
        assert result.metrics.union_io_time == batch.union_io_time
