"""Property suite: chunked ingest == per-record ingest == batch.

The vectorised path's acceptance property, pinned under Hypothesis:
however a delivery sequence is cut into chunks — including chunk
boundaries landing mid-window, adversarial watermark lag, a reorder
heap squeezed down to a few slots, or the chunks fanned out over 1..3
shard processes — the settled result agrees with per-record ingest and
with the batch pipeline:

- **exactly** (``==``) for everything integer-or-union-derived:
  cumulative ops/blocks/bytes, union I/O time, BPS, IOPS, bandwidth,
  per-window ops and io_time, and every per-group breakdown figure;
- to float re-association for the per-window block/byte masses and the
  ARPT duration sum (the documented deviation in
  :mod:`repro.live.chunk` — a window's mass spanning a chunk boundary
  accumulates in a different grouping).
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.live import MetricStream, RecordChunk, ShardedMetricStream

finite_start = st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)
length = st.floats(min_value=0.0, max_value=25.0, allow_nan=False)


@st.composite
def record_lists(draw, max_size=30):
    n = draw(st.integers(min_value=1, max_value=max_size))
    out = []
    for k in range(n):
        start = draw(finite_start)
        # At least one record must have positive duration — a trace
        # whose union time is zero has no defined metrics (both paths
        # raise identically; not the property under test).
        dur = draw(length) if k else draw(
            st.floats(min_value=0.01, max_value=25.0, allow_nan=False))
        out.append(IORecord(
            pid=draw(st.integers(min_value=0, max_value=3)),
            op=draw(st.sampled_from(["read", "write"])),
            nbytes=draw(st.integers(min_value=0, max_value=10_000)),
            start=start,
            end=start + dur,
            offset=0,
            success=draw(st.booleans()),
            retries=draw(st.integers(min_value=0, max_value=2))))
    return out


@st.composite
def deliveries(draw, max_size=30):
    """(records in delivery order, chunk cut points, window width)."""
    records = draw(record_lists(max_size=max_size))
    n = len(records)
    cuts = draw(st.lists(st.integers(min_value=1, max_value=max(1, n)),
                         max_size=5))
    window = draw(st.floats(min_value=0.5, max_value=40.0,
                            allow_nan=False))
    return records, sorted({0, n, *[c for c in cuts if c < n]}), window


def _chunks(records, cuts):
    for lo, hi in zip(cuts, cuts[1:]):
        if hi > lo:
            yield RecordChunk.from_records(records[lo:hi])


def _per_record(records, window, **kwargs):
    stream = MetricStream(window=window, **kwargs)
    for record in records:
        stream.ingest(record)
    return stream.finalize()


def _chunked(records, cuts, window, **kwargs):
    stream = MetricStream(window=window, **kwargs)
    for chunk in _chunks(records, cuts):
        stream.push_chunk(chunk)
    return stream.finalize()


def _assert_equivalent(a, b):
    """a == b: exact for ints/unions/rates, isclose for float masses."""
    ma, mb = a.metrics, b.metrics
    assert ma.app_ops == mb.app_ops
    assert ma.app_blocks == mb.app_blocks
    assert ma.app_bytes == mb.app_bytes
    assert ma.union_io_time == mb.union_io_time
    assert ma.bps == mb.bps
    assert ma.iops == mb.iops
    assert ma.bandwidth == mb.bandwidth
    assert math.isclose(ma.arpt, mb.arpt, rel_tol=1e-9, abs_tol=1e-12)
    assert ma.extras["failed_records"] == mb.extras["failed_records"]
    assert ma.extras["total_retries"] == mb.extras["total_retries"]
    assert len(a.windows) == len(b.windows)
    for wa, wb in zip(a.windows, b.windows):
        assert wa.index == wb.index
        assert wa.ops == wb.ops
        assert wa.io_time == wb.io_time  # clipped union: exact
        assert math.isclose(wa.blocks, wb.blocks,
                            rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(wa.bytes, wb.bytes,
                            rel_tol=1e-9, abs_tol=1e-9)
        assert math.isclose(wa.arpt, wb.arpt,
                            rel_tol=1e-9, abs_tol=1e-12)
    assert set(a.breakdowns) == set(b.breakdowns)
    for name in a.breakdowns:
        ga = {g.key: g for g in a.breakdowns[name]}
        gb = {g.key: g for g in b.breakdowns[name]}
        assert ga.keys() == gb.keys()
        for key in ga:
            assert ga[key].ops == gb[key].ops
            assert ga[key].blocks == gb[key].blocks
            assert ga[key].bytes == gb[key].bytes
            assert ga[key].io_time == gb[key].io_time
            assert ga[key].bps == gb[key].bps


def _batch(records, result, block_size=512):
    trace = TraceCollection(records)
    return compute_metrics(trace, exec_time=result.metrics.exec_time,
                           block_size=block_size)


class TestChunkedEqualsPerRecord:
    @given(case=deliveries())
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_chunk_boundaries(self, case):
        records, cuts, window = case
        ref = _per_record(records, window)
        out = _chunked(records, cuts, window)
        _assert_equivalent(out, ref)

    @given(case=deliveries(),
           lag=st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_adversarial_watermark_lag(self, case, lag):
        records, cuts, window = case
        ref = _per_record(records, window, watermark_lag=lag)
        out = _chunked(records, cuts, window, watermark_lag=lag)
        _assert_equivalent(out, ref)

    @given(case=deliveries(),
           capacity=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_tiny_reorder_heap(self, case, capacity):
        """Forced watermarks degrade lateness, never cumulative truth."""
        records, cuts, window = case
        out = _chunked(records, cuts, window, max_pending=capacity)
        batch = _batch(records, out)
        assert out.metrics.bps == batch.bps
        assert out.metrics.union_io_time == batch.union_io_time

    @given(case=deliveries())
    @settings(max_examples=60, deadline=None)
    def test_chunked_equals_batch(self, case):
        records, cuts, window = case
        out = _chunked(records, cuts, window)
        batch = _batch(records, out)
        assert out.metrics.bps == batch.bps
        assert out.metrics.iops == batch.iops
        assert out.metrics.bandwidth == batch.bandwidth
        assert out.metrics.union_io_time == batch.union_io_time
        assert out.metrics.app_blocks == batch.app_blocks
        # Per-window io_time re-sums to the cumulative union exactly.
        assert math.isclose(sum(w.io_time for w in out.windows),
                            out.metrics.union_io_time,
                            rel_tol=1e-9, abs_tol=1e-12)


class TestShardedEqualsBatch:
    @given(case=deliveries(max_size=20),
           shards=st.integers(min_value=1, max_value=3),
           partition=st.sampled_from(["hash", "time"]))
    @settings(max_examples=10, deadline=None)
    def test_any_shard_count(self, case, shards, partition):
        records, cuts, window = case
        stream = ShardedMetricStream(window=window, shards=shards,
                                     partition=partition, sync_every=2)
        for chunk in _chunks(records, cuts):
            stream.push_chunk(chunk)
        out = stream.finalize()
        ref = _chunked(records, cuts, window)
        _assert_equivalent(out, ref)
        batch = _batch(records, out)
        assert out.metrics.bps == batch.bps
        assert out.metrics.union_io_time == batch.union_io_time
