"""MetricStream: windowed + cumulative live metrics."""

import pytest

from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.errors import LiveStreamError
from repro.live import MemorySink, MetricStream


def steady_records(n=60, gap=0.01, dur=0.02, nbytes=4096):
    """Overlapping steady stream: one op every ``gap`` s, each ``dur`` long."""
    return [
        IORecord(pid=i % 2, op="read" if i % 2 else "write",
                 nbytes=nbytes, start=i * gap, end=i * gap + dur,
                 file="f", offset=i * nbytes)
        for i in range(n)
    ]


def feed(stream, records):
    for record in sorted(records, key=lambda r: (r.end, r.start)):
        stream.ingest(record)


class TestCumulative:
    def test_final_metrics_bit_identical_to_batch(self):
        records = steady_records()
        stream = MetricStream(window=0.05, block_size=512)
        feed(stream, records)
        result = stream.finalize()
        batch = compute_metrics(TraceCollection(records),
                                exec_time=result.metrics.exec_time,
                                block_size=512)
        assert result.metrics.bps == batch.bps
        assert result.metrics.iops == batch.iops
        assert result.metrics.bandwidth == batch.bandwidth
        assert result.metrics.union_io_time == batch.union_io_time
        assert result.metrics.app_blocks == batch.app_blocks

    def test_snapshot_is_exact_mid_stream(self):
        records = steady_records(n=30)
        stream = MetricStream(window=0.05)
        half = sorted(records, key=lambda r: (r.end, r.start))[:15]
        for record in half:
            stream.ingest(record)
        snap = stream.snapshot()
        batch = compute_metrics(TraceCollection(half), exec_time=1.0)
        assert snap.bps == batch.bps
        assert snap.ops == 15

    def test_arpt_tracks_mean_duration(self):
        records = steady_records(n=10, dur=0.02)
        stream = MetricStream(window=0.05)
        feed(stream, records)
        result = stream.finalize()
        assert result.metrics.arpt == pytest.approx(0.02)


class TestWindows:
    def test_window_io_times_sum_to_cumulative_union(self):
        records = steady_records()
        stream = MetricStream(window=0.07, block_size=512)
        feed(stream, records)
        result = stream.finalize()
        total = sum(w.io_time for w in result.windows)
        assert total == pytest.approx(result.metrics.union_io_time,
                                      rel=1e-12)

    def test_window_blocks_sum_to_cumulative(self):
        records = steady_records()
        stream = MetricStream(window=0.07, block_size=512)
        feed(stream, records)
        result = stream.finalize()
        assert sum(w.blocks for w in result.windows) == \
            pytest.approx(result.metrics.app_blocks, rel=1e-12)

    def test_windows_close_as_watermark_passes(self):
        sink = MemorySink()
        stream = MetricStream(window=0.1, sinks=[sink])
        stream.ingest(IORecord(0, "read", 512, 0.0, 0.05))
        assert not sink.of_type("window")
        stream.advance_watermark(0.25)
        closed = sink.of_type("window")
        assert [e["index"] for e in closed] == [0]

    def test_idle_windows_present_in_series(self):
        stream = MetricStream(window=0.1)
        stream.ingest(IORecord(0, "read", 512, 0.0, 0.05))
        stream.ingest(IORecord(0, "read", 512, 0.95, 1.0))
        result = stream.finalize()
        assert len(result.windows) == 10
        assert result.windows[5].ops == 0
        assert result.windows[5].bps == 0.0

    def test_late_record_corrected_at_finalize(self):
        sink = MemorySink()
        stream = MetricStream(window=0.1, sinks=[sink])
        stream.ingest(IORecord(0, "read", 512, 0.0, 0.05))
        stream.advance_watermark(0.5)          # window 0 closes
        provisional = sink.of_type("window")[0]
        stream.ingest(IORecord(0, "read", 512, 0.01, 0.06))  # late
        result = stream.finalize()
        assert stream.late_window_updates >= 1
        assert result.late_records >= 1
        assert result.windows[0].ops == 2
        assert provisional["ops"] == 1  # the stream corrected itself

    def test_spread_is_overlap_proportional(self):
        stream = MetricStream(window=1.0, block_size=512, origin=0.0)
        # 2 blocks over [0.5, 1.5): half the mass in each window.
        stream.ingest(IORecord(0, "read", 1024, 0.5, 1.5))
        result = stream.finalize()
        assert result.windows[0].blocks == pytest.approx(1.0)
        assert result.windows[1].blocks == pytest.approx(1.0)


class TestBreakdowns:
    def test_default_groups_pid_and_op(self):
        stream = MetricStream(window=0.1)
        feed(stream, steady_records(n=20))
        result = stream.finalize()
        assert {g.key for g in result.breakdowns["pid"]} == {"0", "1"}
        assert {g.key for g in result.breakdowns["op"]} == \
            {"read", "write"}

    def test_group_ops_partition_total(self):
        stream = MetricStream(window=0.1)
        feed(stream, steady_records(n=20))
        result = stream.finalize()
        assert sum(g.ops for g in result.breakdowns["pid"]) == 20
        assert sum(g.blocks for g in result.breakdowns["op"]) == \
            result.metrics.app_blocks

    def test_custom_group(self):
        stream = MetricStream(
            window=0.1,
            group_by={"file": lambda r: r.file or "?"})
        feed(stream, steady_records(n=6))
        assert {g.key for g in stream.breakdown("file")} == {"f"}

    def test_unknown_group_rejected(self):
        stream = MetricStream(window=0.1)
        with pytest.raises(LiveStreamError):
            stream.breakdown("nope")


class TestContract:
    def test_finalize_empty_stream_rejected(self):
        with pytest.raises(LiveStreamError):
            MetricStream(window=0.1).finalize()

    def test_ingest_after_finalize_rejected(self):
        stream = MetricStream(window=0.1)
        stream.ingest(IORecord(0, "read", 512, 0.0, 0.1))
        stream.finalize()
        with pytest.raises(LiveStreamError):
            stream.ingest(IORecord(0, "read", 512, 0.2, 0.3))

    def test_finalize_twice_rejected(self):
        stream = MetricStream(window=0.1)
        stream.ingest(IORecord(0, "read", 512, 0.0, 0.1))
        stream.finalize()
        with pytest.raises(LiveStreamError):
            stream.finalize()

    def test_bad_window_rejected(self):
        with pytest.raises(LiveStreamError):
            MetricStream(window=0.0)
        with pytest.raises(LiveStreamError):
            MetricStream(window=0.1, block_size=0)

    def test_final_event_emitted_and_sinks_closed(self):
        sink = MemorySink()
        stream = MetricStream(window=0.1, sinks=[sink])
        stream.ingest(IORecord(0, "read", 512, 0.0, 0.1))
        stream.finalize()
        assert sink.of_type("final")
        assert sink.closed
