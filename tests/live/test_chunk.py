"""Unit tests for the columnar chunk wire format."""

import numpy as np
import pytest

from repro.core.records import IORecord, TraceCollection
from repro.errors import AnalysisError, LiveStreamError
from repro.live import RecordChunk, chunk_trace
from repro.live.replay import completion_order


def _records(n=10, seed=3):
    rng = np.random.default_rng(seed)
    start = np.cumsum(rng.uniform(0.0, 0.5, n))
    return [IORecord(pid=int(p), op="read" if r < 0.5 else "write",
                     nbytes=int(b), start=float(s),
                     end=float(s + d), offset=int(k),
                     success=bool(r < 0.9), retries=int(p) % 3)
            for k, (p, r, b, s, d) in enumerate(zip(
                rng.integers(0, 4, n), rng.random(n),
                rng.integers(1, 4096, n), start,
                rng.uniform(0.0, 2.0, n)))]


class TestBuild:
    def test_scalars_broadcast(self):
        chunk = RecordChunk.build(pid=7, nbytes=1024,
                                  start=np.array([0.0, 1.0]),
                                  end=np.array([0.5, 1.5]))
        assert len(chunk) == 2
        assert chunk.pid.tolist() == [7, 7]
        assert chunk.nbytes.tolist() == [1024, 1024]
        assert [str(v) for v in chunk.op] == ["read", "read"]
        assert chunk.success.all()
        assert chunk.retries.tolist() == [0, 0]
        assert chunk.durations.tolist() == [0.5, 0.5]

    def test_rejects_nan_timestamps(self):
        with pytest.raises(LiveStreamError, match="NaN"):
            RecordChunk.build(pid=0, nbytes=1,
                              start=np.array([0.0, float("nan")]),
                              end=np.array([1.0, 2.0]))

    def test_rejects_end_before_start(self):
        with pytest.raises(LiveStreamError, match="ends before"):
            RecordChunk.build(pid=0, nbytes=1, start=np.array([2.0]),
                              end=np.array([1.0]))

    def test_rejects_negative_sizes_and_retries(self):
        with pytest.raises(LiveStreamError, match="negative record size"):
            RecordChunk.build(pid=0, nbytes=-1, start=np.array([0.0]),
                              end=np.array([1.0]))
        with pytest.raises(LiveStreamError, match="negative retry"):
            RecordChunk.build(pid=0, nbytes=1, retries=-2,
                              start=np.array([0.0]), end=np.array([1.0]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(LiveStreamError, match="length"):
            RecordChunk.build(pid=np.array([1, 2, 3]), nbytes=1,
                              start=np.array([0.0, 1.0]),
                              end=np.array([1.0, 2.0]))

    def test_rejects_2d_columns(self):
        with pytest.raises(LiveStreamError, match="1-D"):
            RecordChunk.build(pid=0, nbytes=1,
                              start=np.zeros((2, 2)),
                              end=np.ones((2, 2)))


class TestRoundTrips:
    def test_records_round_trip(self):
        records = _records()
        chunk = RecordChunk.from_records(records)
        assert list(chunk.records()) == records

    def test_columns_round_trip(self):
        chunk = RecordChunk.from_records(_records())
        back = RecordChunk.from_columns(chunk.to_columns())
        assert list(back.records()) == list(chunk.records())

    def test_from_columns_ignores_trace_only_keys(self):
        trace = TraceCollection(_records())
        columns = trace.to_columns()
        assert "file" in columns and "layer" in columns
        chunk = RecordChunk.from_columns(columns)
        assert len(chunk) == len(trace)

    def test_from_columns_requires_core_fields(self):
        with pytest.raises(LiveStreamError, match="missing 'nbytes'"):
            RecordChunk.from_columns({"pid": [1], "start": [0.0],
                                      "end": [1.0]})


class TestSelect:
    def test_mask_and_slice(self):
        chunk = RecordChunk.from_records(_records(8))
        mask = chunk.pid == chunk.pid[0]
        sub = chunk.select(mask)
        assert len(sub) == int(mask.sum())
        assert (sub.pid == chunk.pid[0]).all()
        window = chunk.select(slice(2, 5))
        assert len(window) == 3
        assert window.start.tolist() == chunk.start[2:5].tolist()

    def test_intervals_shape(self):
        chunk = RecordChunk.from_records(_records(5))
        ivs = chunk.intervals()
        assert ivs.shape == (5, 2)
        assert (ivs[:, 0] == chunk.start).all()
        assert (ivs[:, 1] == chunk.end).all()


class TestChunkTrace:
    def test_completion_order_matches_replay(self):
        trace = TraceCollection(_records(23))
        rows = [r for chunk in chunk_trace(trace, chunk_size=7)
                for r in chunk.records()]
        assert rows == completion_order(trace)

    def test_record_order_is_storage_order(self):
        records = _records(12)
        trace = TraceCollection(records)
        rows = [r for chunk in chunk_trace(trace, chunk_size=5,
                                           order="record")
                for r in chunk.records()]
        assert rows == records

    def test_chunk_sizes(self):
        trace = TraceCollection(_records(10))
        sizes = [len(c) for c in chunk_trace(trace, chunk_size=4)]
        assert sizes == [4, 4, 2]

    def test_empty_trace_yields_nothing(self):
        assert list(chunk_trace(TraceCollection(), chunk_size=4)) == []

    def test_bad_parameters(self):
        trace = TraceCollection(_records(3))
        with pytest.raises(LiveStreamError, match="chunk size"):
            list(chunk_trace(trace, chunk_size=0))
        with pytest.raises(LiveStreamError, match="unknown chunk order"):
            list(chunk_trace(trace, chunk_size=2, order="random"))


class TestColumnArray:
    def test_numeric_and_decoded_categorical(self):
        records = _records(6)
        trace = TraceCollection(records)
        assert trace.column_array("start").tolist() == \
            [r.start for r in records]
        assert [str(v) for v in trace.column_array("op")] == \
            [r.op for r in records]

    def test_unknown_column(self):
        with pytest.raises(AnalysisError, match="unknown column"):
            TraceCollection(_records(2)).column_array("latency")
