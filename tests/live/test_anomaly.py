"""Rolling-baseline BPS anomaly detection."""

import math

import pytest

from repro.errors import LiveStreamError
from repro.live import BpsAnomalyDetector
from repro.live.stream import WindowStats


def window(index, bps, width=1.0):
    return WindowStats(index=index, start=index * width,
                       end=(index + 1) * width, ops=10, blocks=100.0,
                       bytes=51200.0, io_time=width * 0.5, bps=bps,
                       iops=10.0, bandwidth=51200.0, arpt=0.01)


def warm(detector, n=4, bps=1000.0):
    for k in range(n):
        assert detector.observe(window(k, bps)) is None


class TestDetection:
    def test_drop_beyond_factor_flagged(self):
        detector = BpsAnomalyDetector(drop_factor=3.0)
        warm(detector)
        anomaly = detector.observe(window(4, 100.0))
        assert anomaly is not None
        assert anomaly.kind == "bps-drop"
        assert anomaly.window_index == 4
        assert anomaly.baseline == pytest.approx(1000.0)
        assert anomaly.severity == pytest.approx(10.0)

    def test_mild_dip_not_flagged(self):
        detector = BpsAnomalyDetector(drop_factor=3.0)
        warm(detector)
        assert detector.observe(window(4, 500.0)) is None

    def test_warmup_windows_never_flagged(self):
        detector = BpsAnomalyDetector(min_history=3)
        assert detector.observe(window(0, 1000.0)) is None
        assert detector.observe(window(1, 0.0)) is None  # still warming

    def test_stalled_window_has_infinite_severity(self):
        detector = BpsAnomalyDetector()
        warm(detector)
        anomaly = detector.observe(window(4, 0.0))
        assert math.isinf(anomaly.severity)

    def test_flagged_windows_do_not_poison_baseline(self):
        detector = BpsAnomalyDetector(drop_factor=3.0, history=4)
        warm(detector)
        # A long outage: every stalled window stays flagged because the
        # baseline keeps remembering the healthy rate.
        for k in range(4, 12):
            assert detector.observe(window(k, 10.0)) is not None
        assert detector.baseline == pytest.approx(1000.0)

    def test_baseline_follows_gradual_change(self):
        detector = BpsAnomalyDetector(drop_factor=3.0, history=4)
        warm(detector)
        # Halving is within the factor, so the baseline adapts...
        for k in range(4, 12):
            assert detector.observe(window(k, 500.0)) is None
        assert detector.baseline == pytest.approx(500.0)
        # ...and the threshold has moved with it.
        assert detector.observe(window(12, 400.0)) is None


class TestAnomalyValue:
    def test_overlaps_half_open(self):
        detector = BpsAnomalyDetector()
        warm(detector)
        anomaly = detector.observe(window(4, 0.0))
        assert anomaly.overlaps(4.5, 5.5)
        assert anomaly.overlaps(0.0, 100.0)
        assert not anomaly.overlaps(5.0, 6.0)
        assert not anomaly.overlaps(0.0, 4.0)

    def test_as_event_shape(self):
        detector = BpsAnomalyDetector()
        warm(detector)
        event = detector.observe(window(4, 1.0)).as_event()
        assert event["type"] == "anomaly"
        assert event["index"] == 4
        assert event["baseline"] == pytest.approx(1000.0)


class TestConfiguration:
    def test_rejects_factor_at_or_below_one(self):
        with pytest.raises(LiveStreamError):
            BpsAnomalyDetector(drop_factor=1.0)

    def test_rejects_inconsistent_history(self):
        with pytest.raises(LiveStreamError):
            BpsAnomalyDetector(history=2, min_history=5)
        with pytest.raises(LiveStreamError):
            BpsAnomalyDetector(history=0)

    def test_baseline_zero_before_samples(self):
        assert BpsAnomalyDetector().baseline == 0.0
