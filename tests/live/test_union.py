"""StreamingUnion: incremental interval union vs the batch sweep."""

import random

import numpy as np
import pytest

from repro.core.intervals import union_time
from repro.errors import LiveStreamError
from repro.live import StreamingUnion


def random_intervals(seed, n=500, span=50.0, max_len=2.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        start = rng.uniform(0.0, span)
        out.append((start, start + rng.uniform(0.0, max_len)))
    return out


class TestExactness:
    def test_sorted_feed_matches_batch(self):
        intervals = sorted(random_intervals(1))
        union = StreamingUnion()
        for start, end in intervals:
            union.add(start, end)
        assert union.finalize() == union_time(np.array(intervals))

    def test_shuffled_feed_matches_batch(self):
        intervals = random_intervals(2)
        union = StreamingUnion(reorder_capacity=32)
        for start, end in intervals:
            union.add(start, end)
        assert union.finalize() == \
            union_time(np.array(sorted(intervals)))

    def test_reverse_feed_matches_batch(self):
        intervals = sorted(random_intervals(3), reverse=True)
        union = StreamingUnion()
        for start, end in intervals:
            union.add(start, end)
        assert union.finalize() == union_time(np.array(intervals))

    def test_segments_are_canonical(self):
        union = StreamingUnion()
        for start, end in ((0.0, 1.0), (2.0, 3.0), (1.0, 2.0),
                           (5.0, 6.0)):
            union.add(start, end)
        assert union.segments().tolist() == [[0.0, 3.0], [5.0, 6.0]]

    def test_touching_intervals_merge(self):
        union = StreamingUnion()
        union.add(0.0, 1.0)
        union.add(1.0, 2.0)
        assert union.segments().tolist() == [[0.0, 2.0]]

    def test_zero_length_intervals_cost_nothing(self):
        union = StreamingUnion()
        union.add(1.0, 1.0)
        union.add(3.0, 3.0)
        assert union.union_time() == 0.0
        assert len(union.segments()) == 2

    def test_contained_interval_changes_nothing(self):
        union = StreamingUnion()
        union.add(0.0, 10.0)
        union.add(2.0, 3.0)
        assert union.segments().tolist() == [[0.0, 10.0]]

    def test_bridging_interval_collapses_many_segments(self):
        union = StreamingUnion()
        for k in range(5):
            union.add(2.0 * k, 2.0 * k + 1.0)
        union.add(0.5, 9.5)
        assert union.segments().tolist() == [[0.0, 9.5]]

    def test_add_batch_matches_one_by_one(self):
        intervals = random_intervals(4, n=200)
        one = StreamingUnion()
        for start, end in intervals:
            one.add(start, end)
        bulk = StreamingUnion()
        bulk.add_batch(np.array(intervals))
        assert one.finalize() == bulk.finalize()
        assert bulk.records_seen == len(intervals)

    def test_union_time_query_never_disturbs_result(self):
        intervals = random_intervals(5, n=100)
        union = StreamingUnion(reorder_capacity=8)
        mid = []
        for start, end in intervals:
            union.add(start, end)
            mid.append(union.union_time())  # query mid-stream
        assert union.finalize() == union_time(np.array(intervals))
        assert mid == sorted(mid)  # union time only grows


class TestWatermark:
    def test_watermark_tracks_max_start_minus_lag(self):
        union = StreamingUnion(watermark_lag=2.0)
        union.add(5.0, 6.0)
        assert union.watermark == 3.0
        union.add(3.0, 4.0)  # out of order but within the lag: not late
        assert union.late_records == 0

    def test_late_record_counted_and_still_exact(self):
        union = StreamingUnion(watermark_lag=0.0)
        union.add(5.0, 6.0)
        union.add(1.0, 2.0)
        assert union.late_records == 1
        assert union.finalize() == 2.0

    def test_late_policy_raise(self):
        union = StreamingUnion(late_policy="raise")
        union.add(5.0, 6.0)
        with pytest.raises(LiveStreamError):
            union.add(1.0, 2.0)

    def test_advance_watermark_is_monotonic(self):
        union = StreamingUnion()
        union.advance_watermark(3.0)
        union.advance_watermark(1.0)  # ignored, never regresses
        assert union.watermark == 3.0

    def test_capacity_overflow_forces_drain(self):
        union = StreamingUnion(reorder_capacity=4, watermark_lag=100.0)
        for k in range(10):
            union.add(float(k), float(k) + 0.5)
        assert union.pending_records <= 4
        assert union.finalize() == 5.0

    def test_explicit_watermark_drains_pending(self):
        union = StreamingUnion(watermark_lag=100.0)
        for k in range(5):
            union.add(float(k), float(k) + 0.5)
        assert union.pending_records == 5
        union.advance_watermark(10.0)
        assert union.pending_records == 0


class TestContract:
    def test_rejects_nan(self):
        with pytest.raises(LiveStreamError):
            StreamingUnion().add(float("nan"), 1.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(LiveStreamError):
            StreamingUnion().add(2.0, 1.0)

    def test_rejects_add_after_finalize(self):
        union = StreamingUnion()
        union.add(0.0, 1.0)
        union.finalize()
        with pytest.raises(LiveStreamError):
            union.add(1.0, 2.0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(LiveStreamError):
            StreamingUnion(reorder_capacity=0)
        with pytest.raises(LiveStreamError):
            StreamingUnion(watermark_lag=-1.0)
        with pytest.raises(LiveStreamError):
            StreamingUnion(late_policy="drop")

    def test_empty_union_time_is_zero(self):
        assert StreamingUnion().union_time() == 0.0
