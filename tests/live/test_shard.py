"""Sharded streaming engine: merge exactness, recovery, degradation."""

import math

import numpy as np
import pytest

from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.errors import LiveStreamError
from repro.exec.duplex import fork_available
from repro.live import (
    MemorySink,
    MetricStream,
    ShardedMetricStream,
    chunk_trace,
)

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="requires fork start method")


def _trace(n=2000, seed=11):
    rng = np.random.default_rng(seed)
    start = np.cumsum(rng.exponential(0.002, n))
    dur = rng.exponential(0.01, n)
    dur[rng.random(n) < 0.02] = 0.0
    return TraceCollection(
        IORecord(pid=int(p), op="read" if r < 0.6 else "write",
                 nbytes=int(b), start=float(s), end=float(s + d),
                 offset=0, success=bool(r < 0.95), retries=int(p) % 2)
        for p, r, b, s, d in zip(rng.integers(0, 8, n), rng.random(n),
                                 rng.integers(512, 1 << 16, n),
                                 start, dur))


def _feed(stream, trace, chunk_size=256):
    for chunk in chunk_trace(trace, chunk_size=chunk_size):
        stream.push_chunk(chunk)
    return stream.finalize()


def _reference(trace, window):
    stream = MetricStream(window=window)
    for chunk in chunk_trace(trace, chunk_size=256):
        stream.push_chunk(chunk)
    return stream.finalize()


class TestConstruction:
    def test_bad_parameters(self):
        with pytest.raises(LiveStreamError, match="shard count"):
            ShardedMetricStream(window=1.0, shards=0)
        with pytest.raises(LiveStreamError, match="unknown partition"):
            ShardedMetricStream(window=1.0, partition="round-robin")
        with pytest.raises(LiveStreamError, match="sync_every"):
            ShardedMetricStream(window=1.0, sync_every=0)

    def test_single_shard_runs_inline(self):
        stream = ShardedMetricStream(window=0.5, shards=1)
        assert stream._inline is not None
        trace = _trace(300)
        result = _feed(stream, trace)
        ref = _reference(trace, 0.5)
        assert result.metrics.bps == ref.metrics.bps
        assert result.metrics.union_io_time == ref.metrics.union_io_time

    def test_finalize_empty_raises(self):
        stream = ShardedMetricStream(window=1.0, shards=2)
        with pytest.raises(LiveStreamError, match="empty stream"):
            stream.finalize()


@needs_fork
class TestMergeExactness:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("partition", ["hash", "time"])
    def test_bit_identical_to_batch_and_single(self, shards, partition):
        trace = _trace()
        window = 0.5
        with ShardedMetricStream(window=window, shards=shards,
                                 partition=partition,
                                 sync_every=3) as stream:
            result = _feed(stream, trace)
        ref = _reference(trace, window)
        m, r = result.metrics, ref.metrics
        assert m.bps == r.bps
        assert m.iops == r.iops
        assert m.bandwidth == r.bandwidth
        assert m.union_io_time == r.union_io_time
        assert m.app_ops == r.app_ops
        assert m.app_blocks == r.app_blocks
        assert m.extras["failed_records"] == r.extras["failed_records"]
        assert m.extras["total_retries"] == r.extras["total_retries"]
        assert m.extras["shards"] == shards
        batch = compute_metrics(trace, exec_time=m.exec_time,
                                block_size=stream.block_size)
        assert m.bps == batch.bps
        assert m.union_io_time == batch.union_io_time

        assert len(result.windows) == len(ref.windows)
        for a, b in zip(result.windows, ref.windows):
            assert a.ops == b.ops
            assert a.io_time == b.io_time
            assert math.isclose(a.blocks, b.blocks,
                                rel_tol=1e-9, abs_tol=1e-9)
        for name in ("pid", "op"):
            ga = {g.key: g for g in result.breakdowns[name]}
            gb = {g.key: g for g in ref.breakdowns[name]}
            assert ga.keys() == gb.keys()
            for key in ga:
                assert ga[key].ops == gb[key].ops
                assert ga[key].io_time == gb[key].io_time
                assert ga[key].bps == gb[key].bps

    def test_windows_emit_progressively_to_sinks(self):
        trace = _trace()
        sink = MemorySink()
        with ShardedMetricStream(window=0.5, shards=2, sync_every=2,
                                 sinks=[sink]) as stream:
            for chunk in chunk_trace(trace, chunk_size=128):
                stream.push_chunk(chunk)
            mid_stream = len([e for e in sink.events
                              if e["type"] == "window"])
            result = stream.finalize()
        assert mid_stream > 0, "no window settled before finalize"
        window_events = [e for e in sink.events
                         if e["type"] == "window"]
        assert len(window_events) == len(result.windows)
        assert [e["index"] for e in window_events] == \
            [w.index for w in result.windows]
        final = [e for e in sink.events if e["type"] == "final"]
        assert len(final) == 1
        assert final[0]["bps"] == result.metrics.bps


@needs_fork
class TestCrashRecovery:
    def test_killed_shard_respawns_and_stays_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "1:exit")
        trace = _trace()
        with ShardedMetricStream(window=0.5, shards=3,
                                 sync_every=2) as stream:
            result = _feed(stream, trace)
        assert stream.respawns >= 1
        assert result.metrics.extras["shard_respawns"] == stream.respawns
        ref = _reference(trace, 0.5)
        assert result.metrics.bps == ref.metrics.bps
        assert result.metrics.union_io_time == ref.metrics.union_io_time
        assert result.metrics.app_ops == ref.metrics.app_ops

    def test_hung_shard_times_out_and_respawns(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "0:hang")
        trace = _trace(500)
        with ShardedMetricStream(window=0.5, shards=2, sync_every=2,
                                 sync_timeout=1.0) as stream:
            result = _feed(stream, trace)
        assert stream.respawns >= 1
        ref = _reference(trace, 0.5)
        assert result.metrics.bps == ref.metrics.bps

    def test_respawn_budget_exhausts_loudly(self, monkeypatch):
        # Every generation of shard 0 dies (attempt gating is keyed on
        # generation, so pin the spec to kill attempt 0 only and spend
        # the budget instead by allowing zero respawns).
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "0:exit")
        trace = _trace(500)
        stream = ShardedMetricStream(window=0.5, shards=2,
                                     sync_every=1, max_respawns=0)
        with pytest.raises(LiveStreamError, match="respawn budget"):
            _feed(stream, trace)
        stream.close()


class TestLifecycle:
    def test_push_after_finalize_raises(self):
        trace = _trace(200)
        stream = ShardedMetricStream(window=0.5, shards=1)
        _feed(stream, trace)
        chunk = next(chunk_trace(trace, chunk_size=50))
        with pytest.raises(LiveStreamError, match="after finalize"):
            stream.push_chunk(chunk)

    def test_finalize_twice_raises(self):
        trace = _trace(200)
        stream = ShardedMetricStream(window=0.5, shards=1)
        _feed(stream, trace)
        with pytest.raises(LiveStreamError, match="finalize"):
            stream.finalize()

    def test_close_is_idempotent(self):
        stream = ShardedMetricStream(window=0.5, shards=2)
        stream.push_chunk(next(chunk_trace(_trace(100), chunk_size=50)))
        stream.close()
        stream.close()


class TestPartialStateRoundTrip:
    """restore_state(partial_state()) is the shard respawn path."""

    def test_round_trip_is_exact(self):
        trace = _trace(600)
        chunks = list(chunk_trace(trace, chunk_size=100))
        half = len(chunks) // 2

        first = MetricStream(window=0.5)
        for chunk in chunks[:half]:
            first.push_chunk(chunk)
        snapshot = first.partial_state(compact=True)

        resumed = MetricStream(window=0.5)
        resumed.restore_state(snapshot)
        for chunk in chunks[half:]:
            resumed.push_chunk(chunk)
        result = resumed.finalize()

        ref = _reference(trace, 0.5)
        assert result.metrics.bps == ref.metrics.bps
        assert result.metrics.union_io_time == ref.metrics.union_io_time
        assert result.metrics.app_ops == ref.metrics.app_ops
        for a, b in zip(result.windows, ref.windows):
            assert a.ops == b.ops and a.io_time == b.io_time

    def test_restore_on_used_stream_raises(self):
        trace = _trace(100)
        used = MetricStream(window=0.5)
        used.push_chunk(next(chunk_trace(trace, chunk_size=50)))
        with pytest.raises(LiveStreamError, match="used stream"):
            used.restore_state(used.partial_state())


class TestMaxPending:
    """The documented memory-bound degradation path (satellite of the
    sharding work: ``max_pending`` is what keeps a shard's reorder heap
    bounded while the watermark is forced forward)."""

    def test_max_pending_is_exposed_and_bounds_the_heap(self):
        # A huge lag keeps the natural watermark behind every start, so
        # records pile up in the reorder heap until the bound forces
        # the watermark forward.
        stream = MetricStream(window=1.0, max_pending=4,
                              watermark_lag=1e6)
        assert stream.max_pending == 4
        for k in range(1, 51):
            stream.ingest(IORecord(pid=0, op="read", nbytes=512,
                                   start=float(k), end=float(k) + 0.5,
                                   offset=0))
            assert stream.pending_records <= 4
        assert stream.forced_watermarks > 0
        result = stream.finalize()
        assert result.metrics.extras["forced_watermarks"] == \
            stream.forced_watermarks
        # Degradation is about lateness, never about the totals.
        assert result.metrics.union_io_time == 50 * 0.5
