"""I/O servers: object storage, thread pool, overheads."""

import pytest

from repro.devices.base import READ, WRITE
from repro.devices.ramdisk import RamDisk
from repro.errors import FileSystemError
from repro.pfs.server import IOServer
from repro.util.units import KiB, MiB


@pytest.fixture
def server(engine):
    device = RamDisk(engine, capacity_bytes=64 * MiB)
    return IOServer(engine, device, name="s0")


class TestObjects:
    def test_create_and_check(self, server):
        server.create_object("obj", 1 * MiB)
        assert server.has_object("obj")
        assert not server.has_object("ghost")


class TestHandling:
    def test_read_returns_fs_result(self, engine, server):
        server.create_object("obj", 1 * MiB)
        done = server.handle(READ, "obj", 0, 64 * KiB)
        engine.run()
        result = done.result()
        assert result.success
        assert result.nbytes == 64 * KiB
        assert server.requests_handled == 1

    def test_write_path(self, engine, server):
        server.create_object("obj", 1 * MiB)
        done = server.handle(WRITE, "obj", 0, 64 * KiB)
        engine.run()
        assert done.result().success
        assert server.device.stats.bytes_written == 64 * KiB

    def test_unknown_op_rejected(self, server):
        with pytest.raises(FileSystemError):
            server.handle("erase", "obj", 0, 10)

    def test_overhead_charged(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB,
                         access_latency_s=0.0, transfer_rate=1e12)
        server = IOServer(engine, device, request_overhead_s=0.5)
        server.create_object("obj", 1024)
        server.handle(READ, "obj", 0, 512)
        engine.run()
        assert engine.now == pytest.approx(0.5, abs=0.01)

    def test_thread_pool_limits_concurrency(self, engine):
        device = RamDisk(engine, capacity_bytes=64 * MiB, channels=64)
        server = IOServer(engine, device, threads=1,
                          request_overhead_s=0.0)
        server.create_object("obj", 2 * MiB)
        first = server.handle(READ, "obj", 0, 1 * MiB)
        second = server.handle(READ, "obj", 1 * MiB, 1 * MiB)
        engine.run()
        assert second.result().end > first.result().end

    def test_negative_overhead_rejected(self, engine):
        device = RamDisk(engine, capacity_bytes=1 * MiB)
        with pytest.raises(FileSystemError):
            IOServer(engine, device, request_overhead_s=-1.0)
