"""Parallel file system: striping behaviour end to end."""

import pytest

from repro.devices.ramdisk import RamDisk
from repro.errors import FileSystemError, StripingError
from repro.net.topology import StarTopology
from repro.pfs.layout import StripeLayout
from repro.pfs.pvfs import ParallelFileSystem
from repro.pfs.server import IOServer
from repro.util.units import KiB, MiB


def make_pfs(engine, n_servers=4, **kwargs):
    net = StarTopology(engine, bandwidth=100 * MiB, latency_s=0.00001)
    servers = []
    for i in range(n_servers):
        net.add_node(f"server{i}")
        device = RamDisk(engine, capacity_bytes=64 * MiB,
                         name=f"disk{i}")
        servers.append(IOServer(engine, device, name=f"server{i}"))
    net.add_node("client0")
    pfs = ParallelFileSystem(engine, servers, net, **kwargs)
    return pfs, pfs.client("client0"), servers


class TestNamespace:
    def test_create_places_objects_on_all_servers(self, engine):
        pfs, client, servers = make_pfs(engine)
        client.create("f", 1 * MiB)
        for i, server in enumerate(servers):
            assert server.has_object(f"f@s{i}")
        assert client.size_of("f") == 1 * MiB
        assert client.exists("f")

    def test_single_server_layout(self, engine):
        pfs, client, servers = make_pfs(engine)
        client.create("pinned", 1 * MiB,
                      StripeLayout(servers=(2,)))
        assert servers[2].has_object("pinned@s2")
        assert not servers[0].has_object("pinned@s0")

    def test_small_file_skips_empty_servers(self, engine):
        pfs, client, servers = make_pfs(engine)
        client.create("tiny", 10 * KiB)  # one stripe: only server 0
        assert servers[0].has_object("tiny@s0")
        assert not servers[1].has_object("tiny@s1")

    def test_duplicate_create_rejected(self, engine):
        pfs, client, _servers = make_pfs(engine)
        client.create("f", 1 * MiB)
        with pytest.raises(FileSystemError):
            client.create("f", 1 * MiB)

    def test_layout_referencing_missing_server_rejected(self, engine):
        pfs, client, _servers = make_pfs(engine, n_servers=2)
        with pytest.raises(StripingError):
            client.create("f", 1 * MiB, StripeLayout(servers=(5,)))

    def test_no_servers_rejected(self, engine):
        net = StarTopology(engine)
        with pytest.raises(FileSystemError):
            ParallelFileSystem(engine, [], net)


class TestDataPath:
    def test_read_spans_servers(self, engine):
        pfs, client, servers = make_pfs(engine)
        client.create("f", 1 * MiB)
        done = client.read("f", 0, 256 * KiB)  # 4 x 64KiB stripes
        engine.run()
        result = done.result()
        assert result.success
        assert result.device_bytes == 256 * KiB
        for server in servers:
            assert server.device.stats.bytes_read == 64 * KiB

    def test_parallel_read_faster_than_single_server(self, engine):
        pfs_wide, client_wide, _ = make_pfs(engine, n_servers=4)
        client_wide.create("f", 1 * MiB)
        client_wide.read("f", 0, 1 * MiB)
        engine.run()
        wide_time = engine.now

        narrow_engine = type(engine)()
        pfs_narrow, client_narrow, _ = make_pfs(narrow_engine, n_servers=1)
        client_narrow.create("f", 1 * MiB)
        client_narrow.read("f", 0, 1 * MiB)
        narrow_engine.run()
        assert wide_time < narrow_engine.now

    def test_write_path(self, engine):
        pfs, client, servers = make_pfs(engine)
        client.create("f", 1 * MiB)
        done = client.write("f", 0, 128 * KiB)
        engine.run()
        assert done.result().success
        written = sum(s.device.stats.bytes_written for s in servers)
        assert written == 128 * KiB

    def test_out_of_range_rejected(self, engine):
        pfs, client, _servers = make_pfs(engine)
        client.create("f", 1 * MiB)
        with pytest.raises(FileSystemError):
            client.read("f", 1 * MiB - 10, 100)

    def test_stats_count_client_requests(self, engine):
        pfs, client, _servers = make_pfs(engine)
        client.create("f", 1 * MiB)
        client.read("f", 0, 64 * KiB)
        client.write("f", 0, 64 * KiB)
        engine.run()
        assert pfs.stats.reads == 1
        assert pfs.stats.writes == 1
        assert pfs.stats.bytes_read == 64 * KiB

    def test_unknown_client_node_rejected(self, engine):
        pfs, _client, _servers = make_pfs(engine)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            pfs.client("ghost-node")

    def test_drop_caches_reaches_servers(self, engine):
        pfs, client, _servers = make_pfs(engine)
        assert client.drop_caches() == 0  # servers are uncached


class TestDataPathProperties:
    from hypothesis import given, settings, strategies as st

    @given(st.integers(min_value=1, max_value=4),       # server count
           st.integers(min_value=1, max_value=64),      # stripe KiB
           st.lists(st.tuples(
               st.integers(min_value=0, max_value=1023),   # offset KiB
               st.integers(min_value=1, max_value=256)),   # length KiB
               min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_reads_conserve_bytes_across_servers(self, n_servers,
                                                 stripe_kib, ranges):
        from repro.pfs.layout import StripeLayout
        from repro.sim.engine import Engine
        engine = Engine()
        pfs, client, servers = make_pfs(engine, n_servers=n_servers)
        layout = StripeLayout(stripe_size=stripe_kib * 1024,
                              servers=tuple(range(n_servers)))
        client.create("f", 2 * MiB, layout)
        total = 0
        pending = []
        for offset_kib, length_kib in ranges:
            offset = offset_kib * 1024
            length = min(length_kib * 1024, 2 * MiB - offset)
            if length <= 0:
                continue
            total += length
            pending.append(client.read("f", offset, length))
        engine.run()
        # Every requested byte crossed exactly one server device.
        device_total = sum(s.device.stats.bytes_read for s in servers)
        assert device_total == total
        for done in pending:
            assert done.result().success
