"""Stripe layouts: splitting, merging, object sizing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StripingError
from repro.pfs.layout import ChunkSpec, StripeLayout
from repro.util.units import KiB


class TestConstruction:
    def test_defaults(self):
        layout = StripeLayout()
        assert layout.stripe_size == 64 * KiB
        assert layout.width == 1

    def test_bad_stripe_size(self):
        with pytest.raises(StripingError):
            StripeLayout(stripe_size=0)

    def test_no_servers(self):
        with pytest.raises(StripingError):
            StripeLayout(servers=())

    def test_duplicate_servers(self):
        with pytest.raises(StripingError):
            StripeLayout(servers=(1, 1))

    def test_negative_server(self):
        with pytest.raises(StripingError):
            StripeLayout(servers=(-1,))


class TestSplit:
    def test_single_stripe(self):
        layout = StripeLayout(stripe_size=100, servers=(0, 1))
        chunks = layout.split(10, 50)
        assert chunks == [ChunkSpec(0, 10, 50, 10)]

    def test_round_robin_across_stripes(self):
        layout = StripeLayout(stripe_size=100, servers=(0, 1, 2))
        chunks = layout.split(0, 300)
        assert [(c.server, c.object_offset, c.length) for c in chunks] == \
            [(0, 0, 100), (1, 0, 100), (2, 0, 100)]

    def test_second_round_advances_object_offset(self):
        layout = StripeLayout(stripe_size=100, servers=(0, 1))
        chunks = layout.split(0, 400)
        assert [(c.server, c.object_offset) for c in chunks] == \
            [(0, 0), (1, 0), (0, 100), (1, 100)]

    def test_misaligned_range(self):
        layout = StripeLayout(stripe_size=100, servers=(0, 1))
        chunks = layout.split(50, 100)
        assert [(c.server, c.object_offset, c.length) for c in chunks] == \
            [(0, 50, 50), (1, 0, 50)]

    def test_bad_range(self):
        layout = StripeLayout()
        with pytest.raises(StripingError):
            layout.split(-1, 10)
        with pytest.raises(StripingError):
            layout.split(0, 0)

    @given(st.integers(min_value=1, max_value=8),      # width
           st.integers(min_value=1, max_value=512),    # stripe size
           st.integers(min_value=0, max_value=10000),  # offset
           st.integers(min_value=1, max_value=5000))   # length
    def test_split_covers_range_exactly(self, width, stripe, offset,
                                        length):
        layout = StripeLayout(stripe_size=stripe,
                              servers=tuple(range(width)))
        chunks = layout.split(offset, length)
        assert sum(c.length for c in chunks) == length
        # File-order coverage with no gaps.
        position = offset
        for chunk in chunks:
            assert chunk.file_offset == position
            position += chunk.length
        assert position == offset + length


class TestServerRequests:
    def test_merges_per_server(self):
        layout = StripeLayout(stripe_size=100, servers=(0, 1))
        requests = layout.server_requests(0, 400)
        assert [(r.server, r.object_offset, r.length) for r in requests] == \
            [(0, 0, 200), (1, 0, 200)]

    def test_order_follows_file_position(self):
        layout = StripeLayout(stripe_size=100, servers=(3, 1))
        requests = layout.server_requests(0, 200)
        assert [r.server for r in requests] == [3, 1]

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=512),
           st.integers(min_value=0, max_value=10000),
           st.integers(min_value=1, max_value=5000))
    def test_server_requests_conserve_bytes(self, width, stripe, offset,
                                            length):
        layout = StripeLayout(stripe_size=stripe,
                              servers=tuple(range(width)))
        requests = layout.server_requests(offset, length)
        assert sum(r.length for r in requests) == length
        assert len({r.server for r in requests}) == len(requests)


class TestObjectSize:
    def test_even_distribution(self):
        layout = StripeLayout(stripe_size=100, servers=(0, 1))
        assert layout.object_size(400, 0) == 200
        assert layout.object_size(400, 1) == 200

    def test_uneven_distribution_with_tail(self):
        layout = StripeLayout(stripe_size=100, servers=(0, 1))
        # 250 bytes: stripes 100 (s0), 100 (s1), 50 tail (s0).
        assert layout.object_size(250, 0) == 150
        assert layout.object_size(250, 1) == 100

    def test_unknown_server_rejected(self):
        layout = StripeLayout(servers=(0,))
        with pytest.raises(StripingError):
            layout.object_size(100, 5)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=512),
           st.integers(min_value=0, max_value=100000))
    def test_object_sizes_sum_to_file_size(self, width, stripe, size):
        layout = StripeLayout(stripe_size=stripe,
                              servers=tuple(range(width)))
        total = sum(layout.object_size(size, s) for s in layout.servers)
        assert total == size

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=512),
           st.integers(min_value=1, max_value=5000))
    def test_split_consistent_with_object_size(self, width, stripe, size):
        layout = StripeLayout(stripe_size=stripe,
                              servers=tuple(range(width)))
        per_server: dict[int, int] = {}
        for chunk in layout.split(0, size):
            per_server[chunk.server] = \
                per_server.get(chunk.server, 0) + chunk.length
            # chunk must fit inside the server's object
            assert chunk.object_offset + chunk.length <= \
                layout.object_size(size, chunk.server)
        for server in layout.servers:
            assert per_server.get(server, 0) == \
                layout.object_size(size, server)
