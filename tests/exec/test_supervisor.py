"""Supervised pool: crash isolation, timeouts, retry budget, fallback.

The chaos scenarios fork real workers and kill/hang/crash them, so this
file skips itself entirely on platforms without the ``fork`` start
method (the supervisor degrades to serial there anyway).
"""

import pytest

from repro.errors import SupervisionError
from repro.exec.supervisor import (
    SupervisionReport,
    SupervisorPolicy,
    fork_available,
    run_supervised,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method")


def square(job):
    return job * job


class TestSerialPaths:
    def test_workers_one_runs_serially(self):
        results, report = run_supervised([1, 2, 3], square, workers=1)
        assert results == [1, 4, 9]
        assert report.jobs == 3
        assert report.pooled == 0
        assert not report.serial_fallback

    def test_single_job_runs_serially(self):
        results, report = run_supervised([7], square, workers=4)
        assert results == [49]
        assert report.pooled == 0

    def test_serial_job_error_wraps_supervision_error(self):
        def boom(_job):
            raise ValueError("bad job")
        with pytest.raises(SupervisionError, match="bad job"):
            run_supervised([1], boom, workers=1)


class TestPool:
    def test_results_in_submission_order(self):
        jobs = list(range(12))
        results, report = run_supervised(jobs, square, workers=4)
        assert results == [j * j for j in jobs]
        assert report.jobs == 12
        assert report.pooled == 12
        assert report.crashes == 0

    def test_on_result_sees_every_job_once(self):
        seen = {}

        def on_result(index, payload):
            assert index not in seen
            seen[index] = payload

        results, _ = run_supervised(list(range(8)), square, workers=3,
                                    on_result=on_result)
        assert seen == {i: results[i] for i in range(8)}

    def test_job_error_is_retried_then_succeeds(self, monkeypatch):
        # Chaos hook: job 1 raises on its first attempt only.
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "1:raise")
        results, report = run_supervised(
            list(range(6)), square, workers=2)
        assert results == [j * j for j in range(6)]
        assert report.job_errors == 1
        assert report.retried_jobs == {1: 1}

    def test_worker_crash_is_recovered(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "2:exit")
        results, report = run_supervised(
            list(range(6)), square, workers=2)
        assert results == [j * j for j in range(6)]
        assert report.crashes == 1
        assert report.worker_respawns >= 1
        assert report.retried_jobs == {2: 1}

    def test_hung_job_is_reaped_by_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "0:hang")
        policy = SupervisorPolicy(job_timeout=0.5, poll_interval=0.05)
        results, report = run_supervised(
            list(range(4)), square, workers=2, policy=policy)
        assert results == [j * j for j in range(4)]
        assert report.timeouts == 1
        assert report.retried_jobs == {0: 1}

    def test_retry_budget_exhaustion_raises(self):
        def always_fails(_job):
            raise RuntimeError("permanently broken")
        policy = SupervisorPolicy(max_retries=1)
        with pytest.raises(SupervisionError,
                           match="failed after 2 attempt"):
            run_supervised(list(range(4)), always_fails, workers=2,
                           policy=policy)

    def test_serial_fallback_when_respawn_budget_spent(self, monkeypatch):
        # Every first attempt of jobs 0 and 1 kills its worker, and the
        # respawn budget is zero — the pool empties and the supervisor
        # must finish everything serially in-process.
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "0:exit,1:exit")
        policy = SupervisorPolicy(max_worker_respawns=0)
        # The chaos hook only fires inside pool workers, so the serial
        # fallback completes the sabotaged jobs cleanly.
        results, report = run_supervised(
            list(range(4)), square, workers=2, policy=policy)
        assert results == [j * j for j in range(4)]
        assert report.serial_fallback
        assert report.crashes >= 1


class TestPolicyValidation:
    def test_bad_policy_values_raise(self):
        with pytest.raises(SupervisionError):
            SupervisorPolicy(job_timeout=0)
        with pytest.raises(SupervisionError):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(SupervisionError):
            SupervisorPolicy(max_worker_respawns=-1)
        with pytest.raises(SupervisionError):
            SupervisorPolicy(poll_interval=0)

    def test_report_summary_mentions_events(self):
        report = SupervisionReport(jobs=5, crashes=1, timeouts=2,
                                   serial_fallback=True,
                                   retried_jobs={3: 2})
        text = report.summary()
        assert "5 job(s)" in text
        assert "1 worker crash(es)" in text
        assert "2 timeout(s)" in text
        assert "serial fallback" in text
        assert report.total_retries == 2
