"""Exactly-once job delivery under duplication, reorder, and crashes.

The grid dispatcher dedups ``done`` frames by cell index and the serve
tenant dedups records by client sequence number. These tests drive
both mechanisms the hard way: real worker daemons behind a
:class:`~repro.chaos.ChaosProxy` that duplicates and reorders the
worker→dispatcher stream, a worker that dies mid-stream, and a
Hypothesis sweep over arbitrary duplication/reorder delivery patterns.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import DUPLICATE, REORDER, ChaosEvent, ChaosProxy, ChaosSchedule
from repro.exec.backends import GridTask, SocketBackend, run_jobs
from repro.exec.supervisor import SupervisionReport, SupervisorPolicy
from repro.serve.tenant import _SeqTracker

TASK = GridTask("grid_test_factory:make", kwargs={"offset": 100})


def _local_fn(job):
    if isinstance(job, (tuple, list)):
        value, delay = job
        time.sleep(delay)
        return value + 100
    return job + 100


def _dispatch(addrs, jobs, *, policy=None, **kw):
    report = SupervisionReport(jobs=len(jobs))
    results = run_jobs(
        SocketBackend(addrs, TASK, **kw),
        jobs, _local_fn,
        policy=policy or SupervisorPolicy(poll_interval=0.05,
                                          job_timeout=30.0),
        report=report)
    return results, report


class TestDuplicatedDoneFrames:
    def test_every_done_frame_twice_still_counts_each_cell_once(
            self, spawn_worker):
        # Duplicate the whole worker→dispatcher stream from frame 1
        # (frame 0 is the welcome): every result lands twice and the
        # dispatcher must admit each cell exactly once.
        _proc, addr = spawn_worker()
        schedule = ChaosSchedule(seed=0, events=(
            ChaosEvent(DUPLICATE, direction="s2c", frame_at=1),))
        with ChaosProxy(addr, schedule) as proxy:
            host, port = proxy.address
            jobs = list(range(8))
            results, report = _dispatch(f"{host}:{port}", jobs)
        assert results == [j + 100 for j in jobs]
        assert report.duplicate_results >= 1
        assert report.crashes == 0
        assert proxy.stats()["duplicated"] >= 1

    def test_duplicate_and_reorder_storm_together(self, spawn_worker):
        _proc, addr = spawn_worker()
        schedule = ChaosSchedule(seed=0, events=(
            ChaosEvent(DUPLICATE, direction="s2c", frame_at=1,
                       probability=0.5),
            ChaosEvent(REORDER, direction="s2c", frame_at=1,
                       probability=0.5),))
        with ChaosProxy(addr, schedule) as proxy:
            host, port = proxy.address
            jobs = list(range(12))
            results, _report = _dispatch(f"{host}:{port}", jobs)
        assert results == [j + 100 for j in jobs]


class TestWorkerDeathMidStream:
    def test_worker_exiting_mid_run_yields_exactly_once_results(
            self, spawn_worker):
        # One worker dies after two jobs; the survivor (plus respawned
        # sessions) must finish the set with no double-counted cell.
        _p1, mortal = spawn_worker("--exit-after-jobs", "2")
        _p2, survivor = spawn_worker()
        jobs = list(range(10))
        results, report = _dispatch(f"{mortal},{survivor}", jobs)
        assert results == [j + 100 for j in jobs]
        assert report.duplicate_results == 0
        assert not report.serial_fallback


class TestAdmissionProperty:
    """The exactly-once admission core, swept over delivery patterns."""

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_any_duplication_and_reorder_admits_each_seq_once(
            self, data):
        n = data.draw(st.integers(min_value=0, max_value=30))
        # A delivery pattern: the complete set 0..n-1 at least once,
        # plus arbitrary duplicates, in arbitrary order — exactly what
        # a reconnect replay through a reordering network produces.
        extras = data.draw(st.lists(
            st.integers(min_value=0, max_value=max(0, n - 1)),
            max_size=60) if n else st.just([]))
        deliveries = data.draw(
            st.permutations(list(range(n)) + extras))
        tracker = _SeqTracker()
        admitted = sum(1 for seq in deliveries if tracker.admit(seq))
        assert admitted == n
        assert tracker.next_seq == n
        # Anything replayed after the fact is a duplicate, full stop.
        assert all(not tracker.admit(seq) for seq in deliveries)

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_admission_count_equals_distinct_seqs(self, deliveries):
        tracker = _SeqTracker()
        admitted = sum(1 for seq in deliveries if tracker.admit(seq))
        assert admitted == len(set(deliveries))
