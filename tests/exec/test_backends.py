"""Backend interface: driver semantics, async backend, backend resolution."""

import pytest

from repro.errors import ExperimentError, SupervisionError
from repro.exec.backends import (
    AsyncBackend,
    BACKEND_NAMES,
    GridTask,
    JobOutcome,
    import_ref,
    resolve_backend,
    run_jobs,
)
from repro.exec.supervisor import SupervisionReport, SupervisorPolicy


def _run(jobs, fn, *, policy=None, report=None, on_result=None,
         backend=None):
    report = report if report is not None else SupervisionReport(
        jobs=len(jobs))
    results = run_jobs(backend or AsyncBackend(), jobs, fn,
                       policy=policy or SupervisorPolicy(),
                       report=report, on_result=on_result)
    return results, report


class TestResolveBackend:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "socket")
        assert resolve_backend("async") == "async"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "async")
        assert resolve_backend() == "async"

    def test_default_is_fork(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_BACKEND", raising=False)
        assert resolve_backend() == "fork"

    def test_bad_explicit_raises(self):
        with pytest.raises(ExperimentError, match="unknown sweep backend"):
            resolve_backend("threads")

    def test_bad_env_clamps_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "threads")
        with pytest.warns(RuntimeWarning, match="not a valid sweep backend"):
            assert resolve_backend() == "fork"

    def test_registry_names(self):
        assert BACKEND_NAMES == ("fork", "async", "socket")


class TestJobOutcome:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SupervisionError, match="unknown outcome kind"):
            JobOutcome("exploded", 0, 0)


class TestGridTask:
    def test_import_ref_rejects_bad_shapes(self):
        from repro.errors import GridError
        for bad in ("noseparator", ":attr", "mod:", "no.such.module:x",
                    "repro:nothing_here"):
            with pytest.raises(GridError):
                import_ref(bad)

    def test_import_ref_rejects_non_callable(self):
        from repro.errors import GridError
        with pytest.raises(GridError, match="non-callable"):
            import_ref("repro.exec.backends.wire:PROTOCOL_VERSION")

    def test_resolve_calls_factory(self):
        task = GridTask("repro.exec.backends.task:import_ref",
                        args=("repro.exec.backends.wire:parse_hostport",))
        fn = task.resolve()
        assert fn("h:1") == ("h", 1)


class TestDriverWithAsyncBackend:
    def test_results_in_submission_order(self):
        jobs = list(range(8))
        results, report = _run(jobs, lambda j: j * 10)
        assert results == [j * 10 for j in jobs]
        assert report.pooled == 8
        assert not report.serial_fallback

    def test_on_result_fires_once_per_job(self):
        seen = []
        _run([1, 2, 3], lambda j: j,
             on_result=lambda i, payload: seen.append((i, payload)))
        assert sorted(seen) == [(0, 1), (1, 2), (2, 3)]

    def test_raising_job_retries_then_succeeds(self):
        calls = {}

        def flaky(job):
            calls[job] = calls.get(job, 0) + 1
            if job == 2 and calls[job] == 1:
                raise ValueError("first attempt fails")
            return job

        results, report = _run([0, 1, 2, 3], flaky)
        assert results == [0, 1, 2, 3]
        assert report.job_errors == 1
        assert report.retried_jobs == {2: 1}

    def test_retry_budget_exhaustion_raises(self):
        def always_fails(job):
            raise ValueError("never works")

        with pytest.raises(SupervisionError,
                           match="failed after 3 attempt"):
            _run([0], always_fails,
                 policy=SupervisorPolicy(max_retries=2))

    def test_chaos_exit_becomes_survivable_error(self, monkeypatch):
        # In-process there is no worker to kill, so "exit" chaos is
        # remapped to a raised error: same retry path, no dead pytest.
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "1:exit")
        results, report = _run([10, 20, 30], lambda j: j)
        assert results == [10, 20, 30]
        assert report.retried_jobs == {1: 1}

    def test_chaos_raise_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "0:raise")
        results, report = _run([5, 6], lambda j: j)
        assert results == [5, 6]
        assert report.job_errors == 1

    def test_hang_reaped_by_timeout(self):
        import time

        calls = {}

        def sleepy(job):
            calls[job] = calls.get(job, 0) + 1
            if job == 0 and calls[job] == 1:
                time.sleep(30.0)
            return job

        results, report = _run(
            [0, 1], sleepy,
            policy=SupervisorPolicy(job_timeout=0.3, poll_interval=0.05))
        assert results == [0, 1]
        assert report.timeouts == 1
        assert report.retried_jobs == {0: 1}

    def test_unhealthy_backend_falls_back_to_serial(self):
        class DeadBackend(AsyncBackend):
            def healthy(self):
                return False

        results, report = _run([1, 2, 3], lambda j: -j,
                               backend=DeadBackend())
        assert results == [-1, -2, -3]
        assert report.serial_fallback
        assert report.pooled == 0
