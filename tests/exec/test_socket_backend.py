"""Socket dispatcher against real ``bps grid-worker`` daemons.

Each test spawns worker subprocesses on ephemeral localhost ports and
drives them through :class:`~repro.exec.backends.sockets.SocketBackend`
under the shared driver — handshake, liveness, worker death, and
dispatcher-side aborts all exercised over a real TCP socket.
"""

import signal
import time

import pytest

from repro.errors import GridError
from repro.exec.backends import GridTask, SocketBackend, run_jobs
from repro.exec.supervisor import SupervisionReport, SupervisorPolicy

# The spawn_worker / factory_dir fixtures live in conftest.py, shared
# with the exactly-once chaos tests.
TASK = GridTask("grid_test_factory:make", kwargs={"offset": 100})


def _local_fn(job):
    if isinstance(job, (tuple, list)):
        value, delay = job
        time.sleep(delay)
        return value + 100
    return job + 100


def _dispatch(addrs, jobs, *, policy=None, token=None, **kw):
    report = SupervisionReport(jobs=len(jobs))
    results = run_jobs(
        SocketBackend(addrs, TASK, token=token, **kw),
        jobs, _local_fn,
        policy=policy or SupervisorPolicy(poll_interval=0.05),
        report=report)
    return results, report


class TestDispatch:
    def test_two_workers_results_in_order(self, spawn_worker):
        _, a1 = spawn_worker()
        _, a2 = spawn_worker()
        jobs = list(range(7))
        results, report = _dispatch(f"{a1},{a2}", jobs)
        assert results == [j + 100 for j in jobs]
        assert report.pooled == 7
        assert report.crashes == 0
        assert not report.serial_fallback

    def test_worker_daemon_survives_across_dispatches(self, spawn_worker):
        _, addr = spawn_worker()
        for _ in range(2):
            results, _report = _dispatch(addr, [1, 2, 3])
            assert results == [101, 102, 103]


class TestHandshake:
    def test_token_mismatch_is_rejected(self, spawn_worker):
        _, addr = spawn_worker("--token", "sesame")
        with pytest.raises(GridError, match="no grid workers reachable"):
            _dispatch(addr, [1, 2], token="wrong")

    def test_matching_token_admits(self, spawn_worker):
        _, addr = spawn_worker("--token", "sesame")
        results, _ = _dispatch(addr, [1, 2], token="sesame")
        assert results == [101, 102]

    def test_unresolvable_task_is_rejected(self, spawn_worker):
        _, addr = spawn_worker()
        report = SupervisionReport(jobs=1)
        backend = SocketBackend(addr, GridTask("no.such.module:make"))
        with pytest.raises(GridError, match="no grid workers reachable"):
            run_jobs(backend, [1], _local_fn,
                     policy=SupervisorPolicy(), report=report)

    def test_no_worker_listening(self):
        with pytest.raises(GridError, match="no grid workers reachable"):
            _dispatch("127.0.0.1:1", [1, 2],
                      connect_timeout=0.5)


class TestWorkerDeath:
    def test_killed_worker_requeues_its_job(self, spawn_worker):
        proc1, a1 = spawn_worker()
        _, a2 = spawn_worker()
        # Slow jobs so the kill lands while cells are in flight.
        jobs = [(v, 0.4) for v in range(6)]
        backend = SocketBackend(f"{a1},{a2}", TASK)
        report = SupervisionReport(jobs=len(jobs))

        killed = {"done": False}
        original_collect = backend.collect

        def collect_and_kill():
            if not killed["done"]:
                killed["done"] = True
                proc1.send_signal(signal.SIGKILL)
            return original_collect()

        backend.collect = collect_and_kill
        results = run_jobs(
            backend, jobs, _local_fn,
            policy=SupervisorPolicy(poll_interval=0.05),
            report=report)
        assert results == [v + 100 for v in range(6)]
        assert report.crashes >= 1
        assert report.worker_respawns >= 1

    def test_planned_exit_after_jobs(self, spawn_worker):
        proc1, a1 = spawn_worker("--exit-after-jobs", "1")
        _, a2 = spawn_worker()
        jobs = [(v, 0.1) for v in range(6)]
        results, report = _dispatch(f"{a1},{a2}", jobs)
        assert results == [v + 100 for v in range(6)]
        assert proc1.wait(timeout=10) == 0


class TestAbort:
    def test_hung_cell_aborted_and_retried(self, spawn_worker):
        # Chaos: the first attempt of cell 0 hangs inside the worker's
        # job child; the dispatcher timeout aborts it (child killed,
        # daemon survives) and the clean retry lands on a worker.
        _, addr = spawn_worker(
            env_extra={"REPRO_TEST_KILL_JOB": "0:hang"})
        jobs = [1, 2, 3]
        results, report = _dispatch(
            addr, jobs,
            policy=SupervisorPolicy(job_timeout=1.0, poll_interval=0.05))
        assert results == [101, 102, 103]
        assert report.timeouts == 1
        assert report.retried_jobs == {0: 1}

    def test_crashing_cell_spares_the_daemon(self, spawn_worker):
        # "exit" chaos kills the job child with os._exit; the daemon
        # reports failed/crash, forks a fresh child, and finishes the
        # retry plus the remaining cells itself.
        _, addr = spawn_worker(
            env_extra={"REPRO_TEST_KILL_JOB": "1:exit"})
        results, report = _dispatch(addr, [1, 2, 3])
        assert results == [101, 102, 103]
        assert report.crashes == 1
        assert report.retried_jobs == {1: 1}


class TestStragglers:
    def test_speculative_copy_wins(self, spawn_worker):
        # Worker 1 hangs cell 3's first attempt (chaos); with
        # straggler re-dispatch on, the idle worker 2 runs a copy and
        # its result lands without burning a retry.
        _, a1 = spawn_worker(
            env_extra={"REPRO_TEST_KILL_JOB": "3:hang"})
        _, a2 = spawn_worker()
        jobs = [(v, 0.2) for v in range(4)]
        results, report = _dispatch(
            f"{a1},{a2}", jobs,
            straggler_factor=2.0, straggler_min_seconds=0.5)
        assert results == [v + 100 for v in range(4)]
        assert report.retried_jobs == {}
        assert report.timeouts == 0
