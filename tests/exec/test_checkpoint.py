"""Checkpoint journal: durability, torn tails, tags, exact round-trips."""

import json

import pytest

from repro.core.analysis import RunMeasurement
from repro.core.records import IORecord, TraceCollection
from repro.errors import CheckpointError
from repro.exec.checkpoint import (
    CheckpointJournal,
    measurement_from_payload,
    measurement_to_payload,
)


class TestJournal:
    def test_record_and_resume_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        journal = CheckpointJournal(path, tag="sweep-a")
        journal.record("p0:s1", {"value": 1.5})
        journal.record("p0:s2", {"value": 2.5})
        journal.close()

        resumed = CheckpointJournal(path, tag="sweep-a")
        assert len(resumed) == 2
        assert "p0:s1" in resumed
        assert resumed.completed()["p0:s2"] == {"value": 2.5}
        assert not resumed.finalized
        resumed.close()

    def test_finalize_marks_run_complete(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        journal = CheckpointJournal(path)
        journal.record("k", {"x": 1})
        journal.finalize()
        resumed = CheckpointJournal(path)
        assert resumed.finalized
        with pytest.raises(CheckpointError, match="finalized"):
            resumed.record("k2", {"x": 2})
        resumed.close()

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a", {"v": 1})
        journal.record("b", {"v": 2})
        journal.close()
        # Simulate a crash mid-append: a half-written trailing entry.
        with open(path, "a") as handle:
            handle.write('{"kind": "entry", "key": "c", "pay')
        resumed = CheckpointJournal(path)
        assert sorted(resumed.completed()) == ["a", "b"]
        resumed.close()

    def test_corruption_in_the_middle_raises(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a", {"v": 1})
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "NOT JSON")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt journal"):
            CheckpointJournal(path)

    def test_tag_mismatch_refuses_to_resume(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        CheckpointJournal(path, tag="sweep-a").close()
        with pytest.raises(CheckpointError, match="different run"):
            CheckpointJournal(path, tag="sweep-b")

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text(json.dumps({"kind": "entry", "key": "a",
                                    "payload": {}}) + "\n")
        with pytest.raises(CheckpointError, match="missing header"):
            CheckpointJournal(path)

    def test_resume_false_starts_fresh(self, tmp_path):
        path = tmp_path / "run.ckpt.jsonl"
        journal = CheckpointJournal(path)
        journal.record("a", {"v": 1})
        journal.close()
        fresh = CheckpointJournal(path, resume=False)
        assert len(fresh) == 0
        fresh.close()


class TestMeasurementPayload:
    def make_measurement(self):
        trace = TraceCollection([
            IORecord(pid=1, op="read", nbytes=4096,
                     start=0.123456789012345, end=0.223456789012345,
                     file="/data/a", offset=8192),
            IORecord(pid=2, op="write", nbytes=1536,
                     start=1.0 / 3.0, end=2.0 / 3.0, success=False,
                     retries=2),
        ])
        return RunMeasurement(trace=trace, exec_time=7.0 / 11.0,
                              fs_bytes=123456,
                              label="point-a",
                              extras={"queue_depth": 4})

    def test_roundtrip_is_bit_identical(self):
        original = self.make_measurement()
        # Through actual JSON text, as the journal stores it.
        payload = json.loads(json.dumps(
            measurement_to_payload(original)))
        restored = measurement_from_payload(payload)
        assert restored.label == original.label
        assert restored.exec_time == original.exec_time
        assert restored.fs_bytes == original.fs_bytes
        assert restored.extras == original.extras
        assert [
            (r.pid, r.op, r.nbytes, r.start, r.end, r.file, r.offset,
             r.success, r.layer, r.retries) for r in restored.trace
        ] == [
            (r.pid, r.op, r.nbytes, r.start, r.end, r.file, r.offset,
             r.success, r.layer, r.retries) for r in original.trace
        ]

    def test_payload_is_columnar(self):
        payload = measurement_to_payload(self.make_measurement())
        assert set(payload["columns"]) == {
            "pid", "op", "nbytes", "start", "end", "file", "offset",
            "success", "retries", "layer"}
        assert payload["columns"]["pid"] == [1, 2]
        assert payload["columns"]["op"] == ["read", "write"]

    def test_malformed_payload_raises(self):
        with pytest.raises(CheckpointError, match="malformed"):
            measurement_from_payload({"exec_time": 1.0, "fs_bytes": 0})
        with pytest.raises(CheckpointError, match="malformed"):
            measurement_from_payload({
                "exec_time": 1.0, "fs_bytes": 0,
                "columns": {"pid": [1], "nbytes": [4096, 512],
                            "start": [0.0], "end": [1.0]}})


class TestSigintSync:
    """Ctrl-C must never lose an acknowledged (journaled) cell."""

    def test_sigint_flushes_pending_group_commit(self, tmp_path):
        import signal
        path = tmp_path / "run.ckpt.jsonl"
        # Huge fsync window: every entry stays in the pending group.
        journal = CheckpointJournal(path, fsync_interval=3600.0)
        journal.record("p0:s1", {"value": 1.0})
        journal.record("p0:s2", {"value": 2.0})
        assert journal._pending_sync
        import os
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)
        # The handler synced the group before the interrupt propagated.
        assert not journal._pending_sync
        journal.close()
        resumed = CheckpointJournal(path)
        assert len(resumed) == 2
        resumed.close()

    def test_sigint_mid_append_defers_until_consistent(self, tmp_path):
        import signal
        journal = CheckpointJournal(tmp_path / "run.ckpt.jsonl",
                                    fsync_interval=3600.0)
        journal.record("p0:s1", {"value": 1.0})
        # Simulate a signal landing inside an append: the handler may
        # not touch the (non-reentrant) file object, only set a flag.
        journal._in_append = True
        with pytest.raises(KeyboardInterrupt):
            journal._on_sigint(signal.SIGINT, None)
        assert journal._sync_requested
        assert journal._pending_sync
        journal._in_append = False
        # The next append's cleanup performs the deferred sync.
        journal.record("p0:s2", {"value": 2.0})
        assert not journal._sync_requested
        assert not journal._pending_sync
        journal.close()

    def test_previous_handler_restored_on_close(self, tmp_path):
        import signal
        before = signal.getsignal(signal.SIGINT)
        journal = CheckpointJournal(tmp_path / "run.ckpt.jsonl")
        assert signal.getsignal(signal.SIGINT) == journal._on_sigint
        journal.close()
        assert signal.getsignal(signal.SIGINT) == before

    def test_worker_thread_journal_skips_the_hook(self, tmp_path):
        import signal
        import threading
        before = signal.getsignal(signal.SIGINT)
        seen = {}

        def off_main():
            journal = CheckpointJournal(tmp_path / "t.ckpt.jsonl")
            seen["hooked"] = journal._sigint_hooked
            journal.record("k", {"value": 1.0})
            journal.close()

        thread = threading.Thread(target=off_main)
        thread.start()
        thread.join()
        assert seen["hooked"] is False
        assert signal.getsignal(signal.SIGINT) == before
