"""Shared fixtures for driving real ``bps grid-worker`` daemons."""

import os
import subprocess
import sys

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

FACTORY_MODULE = """\
def make(offset=0):
    def run(job):
        import time
        if isinstance(job, (tuple, list)):
            value, delay = job
            time.sleep(delay)
            return value + offset
        return job + offset
    return run
"""


@pytest.fixture
def factory_dir(tmp_path):
    (tmp_path / "grid_test_factory.py").write_text(FACTORY_MODULE)
    return tmp_path


@pytest.fixture
def spawn_worker(factory_dir):
    procs = []

    def spawn(*extra_args, env_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(REPO_SRC), str(factory_dir)])
        env.update(env_extra or {})
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "grid-worker",
             "--listen", "127.0.0.1:0", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        procs.append(proc)
        banner = proc.stdout.readline().strip()
        assert "grid-worker listening on" in banner, banner
        return proc, banner.rsplit(" ", 1)[-1]

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
