"""Grid wire framing: checksums, bounds, and liveness resolution.

The frame layer is the grid protocol's integrity boundary — a flipped
payload byte or a corrupted length prefix must surface as
:class:`~repro.errors.FrameCorruptionError` before any allocation or
unpickle happens, never as garbage results.
"""

import pickle
import socket
import struct
import zlib

import pytest

from repro.errors import FrameCorruptionError, GridError
from repro.exec.backends.wire import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_LIVENESS_TIMEOUT,
    MAX_FRAME_BYTES,
    max_frame_bytes,
    parse_hostport,
    recv_frame,
    resolve_liveness,
    send_frame,
    tokens_match,
)

_HEADER = struct.Struct(">II")


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        payload = {"kind": "job", "index": 3, "blob": list(range(100))}
        send_frame(a, payload)
        assert recv_frame(b) == payload

    def test_clean_close_is_eof(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(EOFError):
            recv_frame(b)

    def test_flipped_payload_byte_fails_the_crc(self, pair):
        a, b = pair
        data = pickle.dumps({"poison": "x" * 200},
                            protocol=pickle.HIGHEST_PROTOCOL)
        corrupted = bytearray(data)
        corrupted[len(corrupted) // 2] ^= 0xFF
        a.sendall(_HEADER.pack(len(data), zlib.crc32(data))
                  + bytes(corrupted))
        with pytest.raises(FrameCorruptionError,
                           match="checksum mismatch"):
            recv_frame(b)

    def test_corrupt_length_prefix_is_caught_before_allocation(
            self, pair):
        a, b = pair
        # A length beyond the bound must be rejected from the 8-byte
        # header alone — no payload bytes were ever sent.
        a.sendall(_HEADER.pack(1 << 31, 0))
        with pytest.raises(FrameCorruptionError,
                           match="corrupt length prefix"):
            recv_frame(b)

    def test_intact_crc_but_unpicklable_payload_is_quarantined(
            self, pair):
        a, b = pair
        data = b"this is not a pickle"
        a.sendall(_HEADER.pack(len(data), zlib.crc32(data)) + data)
        with pytest.raises(FrameCorruptionError,
                           match="would not unpickle"):
            recv_frame(b)

    def test_send_over_the_bound_is_a_caller_error(self, pair):
        a, _b = pair
        with pytest.raises(GridError, match="exceeds 64"):
            send_frame(a, {"blob": "x" * 1000}, limit=64)

    def test_recv_respects_an_explicit_limit(self, pair):
        a, b = pair
        send_frame(a, {"blob": "x" * 1000})
        with pytest.raises(FrameCorruptionError, match="exceeds 64"):
            recv_frame(b, limit=64)


class TestFrameBound:
    def test_explicit_limit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_MAX_FRAME", "123")
        assert max_frame_bytes(456) == 456

    def test_non_positive_explicit_limit_raises(self):
        with pytest.raises(GridError, match="must be > 0"):
            max_frame_bytes(0)

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_MAX_FRAME", "4096")
        assert max_frame_bytes() == 4096

    @pytest.mark.parametrize("value", ["-5", "lots", "0"])
    def test_bad_env_var_clamps_to_default_with_warning(
            self, monkeypatch, value):
        monkeypatch.setenv("REPRO_GRID_MAX_FRAME", value)
        with pytest.warns(RuntimeWarning, match="REPRO_GRID_MAX_FRAME"):
            assert max_frame_bytes() == MAX_FRAME_BYTES

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRID_MAX_FRAME", raising=False)
        assert max_frame_bytes() == MAX_FRAME_BYTES

    def test_hot_path_reads_the_env_bound_once_per_process(
            self, monkeypatch, pair):
        # send/recv resolve the env bound through a process cache (an
        # environ lookup per frame would cost more than the CRC).
        import repro.exec.backends.wire as wire

        monkeypatch.setattr(wire, "_cached_bound", None)
        monkeypatch.setenv("REPRO_GRID_MAX_FRAME", "64")
        a, _b = pair
        with pytest.raises(GridError, match="exceeds 64"):
            send_frame(a, {"blob": "x" * 1000})
        # Later env edits are invisible until the cache resets.
        monkeypatch.setenv("REPRO_GRID_MAX_FRAME", "1048576")
        with pytest.raises(GridError, match="exceeds 64"):
            send_frame(a, {"blob": "x" * 1000})


class TestLivenessResolution:
    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRID_HEARTBEAT", raising=False)
        monkeypatch.delenv("REPRO_GRID_LIVENESS", raising=False)

    def test_defaults(self):
        assert resolve_liveness() == (DEFAULT_HEARTBEAT_INTERVAL,
                                      DEFAULT_LIVENESS_TIMEOUT)

    def test_explicit_arguments_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_HEARTBEAT", "7.0")
        assert resolve_liveness(0.5, 3.0) == (0.5, 3.0)

    def test_env_vars_fill_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_HEARTBEAT", "1.5")
        monkeypatch.setenv("REPRO_GRID_LIVENESS", "9.0")
        assert resolve_liveness() == (1.5, 9.0)

    def test_non_positive_heartbeat_clamps_with_warning(self):
        with pytest.warns(RuntimeWarning, match="not positive"):
            heartbeat, _liveness = resolve_liveness(-1.0, 20.0)
        assert heartbeat == DEFAULT_HEARTBEAT_INTERVAL

    def test_liveness_not_exceeding_heartbeat_clamps_to_double(self):
        with pytest.warns(RuntimeWarning, match="must exceed"):
            assert resolve_liveness(4.0, 2.0) == (4.0, 8.0)

    def test_non_numeric_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_HEARTBEAT", "soon")
        with pytest.warns(RuntimeWarning, match="not a number"):
            heartbeat, _liveness = resolve_liveness()
        assert heartbeat == DEFAULT_HEARTBEAT_INTERVAL


class TestSmallHelpers:
    def test_tokens_match_semantics(self):
        assert tokens_match(None, None)
        assert tokens_match("s", "s")
        assert not tokens_match("s", "t")
        assert not tokens_match("s", None)
        assert not tokens_match(None, "s")
        assert not tokens_match("s", 42)

    def test_parse_hostport(self):
        assert parse_hostport("10.1.2.3:9100") == ("10.1.2.3", 9100)
        assert parse_hostport(":9100")[1] == 9100
        with pytest.raises(GridError):
            parse_hostport("nohost-noport")
        with pytest.raises(GridError):
            parse_hostport("host:99999")
