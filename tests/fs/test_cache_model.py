"""Model-based testing of the page cache.

Hypothesis drives random operation sequences against the real
:class:`PageCache` and a brutally simple reference model (a dict plus an
explicit LRU list).  Any divergence in residency, dirtiness, or
evictions is a cache bug.
"""

from hypothesis import given, settings, strategies as st

from repro.fs.cache import PageCache

KEYS = [("f", page) for page in range(6)] + [("g", page)
                                             for page in range(3)]

operation = st.one_of(
    st.tuples(st.just("lookup"), st.sampled_from(KEYS)),
    st.tuples(st.just("insert_clean"), st.sampled_from(KEYS)),
    st.tuples(st.just("insert_dirty"), st.sampled_from(KEYS)),
    st.tuples(st.just("flush"), st.none()),
    st.tuples(st.just("invalidate_f"), st.none()),
    st.tuples(st.just("drop"), st.none()),
)


class ModelCache:
    """Reference implementation: dict + LRU order list."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.pages = {}       # key -> dirty
        self.order = []       # LRU order, oldest first

    def _touch(self, key):
        if key in self.order:
            self.order.remove(key)
        self.order.append(key)

    def lookup(self, key):
        if key in self.pages:
            self._touch(key)
            return True
        return False

    def insert(self, key, dirty):
        evicted_dirty = []
        if key in self.pages:
            self.pages[key] = self.pages[key] or dirty
            self._touch(key)
            return evicted_dirty
        if self.capacity == 0:
            return evicted_dirty
        while len(self.pages) >= self.capacity:
            victim = self.order.pop(0)
            if self.pages.pop(victim):
                evicted_dirty.append(victim)
        self.pages[key] = dirty
        self.order.append(key)
        return evicted_dirty

    def flush(self):
        flushed = [k for k in self.order if self.pages[k]]
        for key in flushed:
            self.pages[key] = False
        return flushed

    def invalidate(self, file_name):
        victims = [k for k in self.order if k[0] == file_name]
        for key in victims:
            del self.pages[key]
            self.order.remove(key)
        return len(victims)

    def drop(self):
        dirty = [k for k in self.order if self.pages[k]]
        self.pages.clear()
        self.order.clear()
        return dirty


@given(st.integers(min_value=0, max_value=5),
       st.lists(operation, max_size=120))
@settings(max_examples=150, deadline=None)
def test_cache_matches_model(capacity, operations):
    real = PageCache(capacity, policy="write-back")
    model = ModelCache(capacity)
    for kind, key in operations:
        if kind == "lookup":
            assert real.lookup(*key) == model.lookup(key)
        elif kind == "insert_clean":
            assert real.insert(*key, dirty=False) == \
                model.insert(key, False)
        elif kind == "insert_dirty":
            assert real.insert(*key, dirty=True) == \
                model.insert(key, True)
        elif kind == "flush":
            assert real.flush() == model.flush()
        elif kind == "invalidate_f":
            assert real.invalidate_file("f") == model.invalidate("f")
        elif kind == "drop":
            assert real.drop_caches() == model.drop()
        # Global invariants after every step.
        assert len(real) == len(model.pages)
        assert set(real.dirty_pages()) == \
            {k for k, d in model.pages.items() if d}
        for key in KEYS:
            assert real.contains(*key) == (key in model.pages)
