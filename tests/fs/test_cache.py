"""Page cache: LRU eviction, dirtiness, flush, drop_caches."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FileSystemError
from repro.fs.cache import PageCache


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = PageCache(4)
        assert not cache.lookup("f", 0)
        cache.insert("f", 0)
        assert cache.lookup("f", 0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_hit_ratio(self):
        cache = PageCache(4)
        cache.insert("f", 0)
        cache.lookup("f", 0)
        cache.lookup("f", 1)
        assert cache.stats.hit_ratio == 0.5

    def test_hit_ratio_zero_when_unused(self):
        assert PageCache(4).stats.hit_ratio == 0.0

    def test_files_are_separate(self):
        cache = PageCache(4)
        cache.insert("a", 0)
        assert not cache.lookup("b", 0)

    def test_zero_capacity_always_misses(self):
        cache = PageCache(0)
        cache.insert("f", 0)
        assert not cache.lookup("f", 0)
        assert len(cache) == 0

    def test_contains_does_not_touch_stats(self):
        cache = PageCache(4)
        cache.insert("f", 0)
        assert cache.contains("f", 0)
        assert not cache.contains("f", 1)
        assert cache.stats.lookups == 0


class TestLRU:
    def test_eviction_order_is_lru(self):
        cache = PageCache(2)
        cache.insert("f", 0)
        cache.insert("f", 1)
        cache.lookup("f", 0)      # 0 becomes most recent
        cache.insert("f", 2)      # evicts 1
        assert cache.contains("f", 0)
        assert not cache.contains("f", 1)
        assert cache.contains("f", 2)
        assert cache.stats.evictions == 1

    def test_reinsert_refreshes_order(self):
        cache = PageCache(2)
        cache.insert("f", 0)
        cache.insert("f", 1)
        cache.insert("f", 0)      # refresh
        cache.insert("f", 2)      # evicts 1, not 0
        assert cache.contains("f", 0)

    def test_capacity_never_exceeded(self):
        cache = PageCache(3)
        for page in range(10):
            cache.insert("f", page)
        assert len(cache) == 3

    @given(st.lists(st.integers(min_value=0, max_value=20),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=8))
    def test_capacity_invariant_under_any_sequence(self, pages, capacity):
        cache = PageCache(capacity)
        for page in pages:
            cache.lookup("f", page)
            cache.insert("f", page)
        assert len(cache) <= capacity
        # Most recently inserted page must be resident.
        assert cache.contains("f", pages[-1])


class TestDirtiness:
    def test_writeback_policy_tracks_dirty(self):
        cache = PageCache(4, policy="write-back")
        cache.insert("f", 0, dirty=True)
        cache.insert("f", 1, dirty=False)
        assert cache.dirty_pages() == [("f", 0)]

    def test_eviction_returns_dirty_pages(self):
        cache = PageCache(1, policy="write-back")
        cache.insert("f", 0, dirty=True)
        evicted = cache.insert("f", 1)
        assert evicted == [("f", 0)]
        assert cache.stats.writebacks == 1

    def test_clean_eviction_returns_nothing(self):
        cache = PageCache(1)
        cache.insert("f", 0)
        assert cache.insert("f", 1) == []

    def test_flush_cleans_everything(self):
        cache = PageCache(4, policy="write-back")
        cache.insert("f", 0, dirty=True)
        cache.insert("f", 1, dirty=True)
        flushed = cache.flush()
        assert len(flushed) == 2
        assert cache.dirty_pages() == []
        assert cache.contains("f", 0)  # flush keeps pages resident

    def test_mark_dirty_requires_residency(self):
        cache = PageCache(4)
        with pytest.raises(FileSystemError):
            cache.mark_dirty("f", 0)

    def test_dirty_bit_sticky_on_reinsert(self):
        cache = PageCache(4, policy="write-back")
        cache.insert("f", 0, dirty=True)
        cache.insert("f", 0, dirty=False)
        assert cache.dirty_pages() == [("f", 0)]


class TestInvalidation:
    def test_invalidate_file(self):
        cache = PageCache(8)
        cache.insert("a", 0)
        cache.insert("a", 1)
        cache.insert("b", 0)
        assert cache.invalidate_file("a") == 2
        assert not cache.contains("a", 0)
        assert cache.contains("b", 0)

    def test_drop_caches_empties_and_reports_dirty(self):
        cache = PageCache(8, policy="write-back")
        cache.insert("f", 0, dirty=True)
        cache.insert("f", 1)
        dirty = cache.drop_caches()
        assert dirty == [("f", 0)]
        assert len(cache) == 0


class TestPageRange:
    def test_single_page(self):
        cache = PageCache(4, page_size=4096)
        assert list(cache.page_range(0, 4096)) == [0]

    def test_straddles_boundary(self):
        cache = PageCache(4, page_size=4096)
        assert list(cache.page_range(4000, 200)) == [0, 1]

    def test_bad_range_rejected(self):
        cache = PageCache(4)
        with pytest.raises(FileSystemError):
            cache.page_range(-1, 10)
        with pytest.raises(FileSystemError):
            cache.page_range(0, 0)

    def test_bad_construction_rejected(self):
        with pytest.raises(FileSystemError):
            PageCache(-1)
        with pytest.raises(FileSystemError):
            PageCache(4, page_size=0)
        with pytest.raises(FileSystemError):
            PageCache(4, policy="write-around")
