"""Extent allocation and offset translation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FileSystemError
from repro.fs.blockmap import Extent, ExtentAllocator, FileMap
from repro.util.units import MiB


class TestExtent:
    def test_end(self):
        assert Extent(100, 50).end == 150

    def test_invalid_rejected(self):
        with pytest.raises(FileSystemError):
            Extent(-1, 10)
        with pytest.raises(FileSystemError):
            Extent(0, 0)


class TestAllocator:
    def test_sequential_allocation(self):
        allocator = ExtentAllocator(1 * MiB)
        first = allocator.allocate(1000)
        second = allocator.allocate(2000)
        assert first == [Extent(0, 1000)]
        assert second == [Extent(1000, 2000)]
        assert allocator.used == 3000
        assert allocator.free == 1 * MiB - 3000

    def test_max_extent_fragments(self):
        allocator = ExtentAllocator(1 * MiB, max_extent=1000)
        extents = allocator.allocate(2500)
        assert [e.length for e in extents] == [1000, 1000, 500]
        # Fragments remain adjacent on the device.
        for a, b in zip(extents, extents[1:]):
            assert b.device_offset == a.end

    def test_full_device_rejected(self):
        allocator = ExtentAllocator(1000)
        allocator.allocate(900)
        with pytest.raises(FileSystemError):
            allocator.allocate(200)

    def test_zero_allocation_rejected(self):
        with pytest.raises(FileSystemError):
            ExtentAllocator(1000).allocate(0)

    def test_release_last(self):
        allocator = ExtentAllocator(1000)
        allocator.allocate(100)
        extents = allocator.allocate(200)
        allocator.release_last(extents)
        assert allocator.used == 100

    def test_release_non_last_rejected(self):
        allocator = ExtentAllocator(1000)
        first = allocator.allocate(100)
        allocator.allocate(200)
        with pytest.raises(FileSystemError):
            allocator.release_last(first)


class TestFileMap:
    def test_translate_single_extent(self):
        fmap = FileMap("f", [Extent(1000, 500)])
        assert fmap.translate(100, 50) == [Extent(1100, 50)]

    def test_translate_across_extents(self):
        fmap = FileMap("f", [Extent(0, 100), Extent(5000, 100)])
        parts = fmap.translate(50, 100)
        assert parts == [Extent(50, 50), Extent(5000, 50)]

    def test_translate_whole_file(self):
        fmap = FileMap("f", [Extent(0, 100), Extent(500, 200)])
        parts = fmap.translate(0, 300)
        assert sum(p.length for p in parts) == 300

    def test_out_of_range_rejected(self):
        fmap = FileMap("f", [Extent(0, 100)])
        with pytest.raises(FileSystemError):
            fmap.translate(50, 100)

    def test_bad_range_rejected(self):
        fmap = FileMap("f", [Extent(0, 100)])
        with pytest.raises(FileSystemError):
            fmap.translate(-1, 10)
        with pytest.raises(FileSystemError):
            fmap.translate(0, 0)

    def test_empty_extents_rejected(self):
        with pytest.raises(FileSystemError):
            FileMap("f", [])

    @given(
        st.integers(min_value=1, max_value=64),     # extent granule count
        st.integers(min_value=0, max_value=4000),   # offset
        st.integers(min_value=1, max_value=1000),   # length
    )
    def test_translation_covers_exactly(self, max_extent_units, offset,
                                        length):
        allocator = ExtentAllocator(
            1 * MiB, max_extent=max_extent_units * 64)
        fmap = FileMap("f", allocator.allocate(8192))
        if offset + length > fmap.size:
            return
        parts = fmap.translate(offset, length)
        assert sum(p.length for p in parts) == length
        # Parts must be disjoint on the device.
        spans = sorted((p.device_offset, p.end) for p in parts)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2
