"""Local file system: read/write paths, caching, read-ahead, flush."""

import pytest

from repro.devices.ramdisk import RamDisk
from repro.errors import FileSystemError
from repro.fs.cache import PageCache
from repro.fs.localfs import LocalFileSystem, _coalesce_pages
from repro.util.units import KiB, MiB


def make_fs(engine, *, cache_pages=64, policy="write-through",
            readahead_pages=0, max_extent=0):
    device = RamDisk(engine, capacity_bytes=64 * MiB)
    cache = PageCache(cache_pages, policy=policy) if cache_pages else None
    return LocalFileSystem(engine, device, page_cache=cache,
                           readahead_pages=readahead_pages,
                           max_extent=max_extent), device


def run_io(engine, completion):
    engine.run()
    return completion.result()


class TestNamespace:
    def test_create_and_size(self, engine):
        fs, _dev = make_fs(engine)
        fs.create("f", 1 * MiB)
        assert fs.exists("f")
        assert fs.size_of("f") == 1 * MiB

    def test_duplicate_create_rejected(self, engine):
        fs, _dev = make_fs(engine)
        fs.create("f", 1024)
        with pytest.raises(FileSystemError):
            fs.create("f", 1024)

    def test_unknown_file_rejected(self, engine):
        fs, _dev = make_fs(engine)
        with pytest.raises(FileSystemError):
            fs.read("ghost", 0, 10)

    def test_bad_size_rejected(self, engine):
        fs, _dev = make_fs(engine)
        with pytest.raises(FileSystemError):
            fs.create("f", 0)


class TestReadPath:
    def test_cold_read_hits_device(self, engine):
        fs, device = make_fs(engine)
        fs.create("f", 1 * MiB)
        result = run_io(engine, fs.read("f", 0, 64 * KiB))
        assert result.success
        assert result.device_bytes == 64 * KiB
        assert device.stats.bytes_read == 64 * KiB
        assert result.cache_miss_pages == 16

    def test_warm_read_skips_device(self, engine):
        fs, device = make_fs(engine)
        fs.create("f", 1 * MiB)
        run_io(engine, fs.read("f", 0, 64 * KiB))
        before = device.stats.bytes_read
        result = run_io(engine, fs.read("f", 0, 64 * KiB))
        assert device.stats.bytes_read == before
        assert result.device_bytes == 0
        assert result.cache_hit_pages == 16

    def test_partial_overlap_fetches_only_missing(self, engine):
        fs, device = make_fs(engine)
        fs.create("f", 1 * MiB)
        run_io(engine, fs.read("f", 0, 32 * KiB))   # pages 0-7
        run_io(engine, fs.read("f", 0, 64 * KiB))   # pages 0-15
        assert device.stats.bytes_read == 64 * KiB  # 8 new pages only

    def test_unaligned_read_rounds_to_pages(self, engine):
        fs, device = make_fs(engine)
        fs.create("f", 1 * MiB)
        result = run_io(engine, fs.read("f", 100, 200))
        assert result.device_bytes == 4096  # one whole page

    def test_no_cache_reads_exact_bytes(self, engine):
        fs, device = make_fs(engine, cache_pages=0)
        fs.create("f", 1 * MiB)
        result = run_io(engine, fs.read("f", 100, 200))
        assert result.device_bytes == 200
        assert device.stats.bytes_read == 200

    def test_out_of_range_read_rejected(self, engine):
        fs, _dev = make_fs(engine)
        fs.create("f", 1024)
        with pytest.raises(FileSystemError):
            fs.read("f", 1000, 100)

    def test_fragmented_file_reads_all_extents(self, engine):
        fs, device = make_fs(engine, cache_pages=0, max_extent=4096)
        fs.create("f", 64 * KiB)
        result = run_io(engine, fs.read("f", 0, 64 * KiB))
        assert result.device_bytes == 64 * KiB
        assert device.stats.device_reads if hasattr(device.stats, "device_reads") else True

    def test_read_amplification_stat(self, engine):
        fs, _dev = make_fs(engine)
        fs.create("f", 1 * MiB)
        run_io(engine, fs.read("f", 100, 200))
        assert fs.stats.read_amplification == pytest.approx(4096 / 200)


class TestReadAhead:
    def test_readahead_fetches_extra_pages(self, engine):
        fs, device = make_fs(engine, readahead_pages=4)
        fs.create("f", 1 * MiB)
        run_io(engine, fs.read("f", 0, 4096))
        assert device.stats.bytes_read == 5 * 4096

    def test_readahead_hit_after_sequential(self, engine):
        fs, device = make_fs(engine, readahead_pages=4)
        fs.create("f", 1 * MiB)
        run_io(engine, fs.read("f", 0, 4096))
        before = device.stats.bytes_read
        result = run_io(engine, fs.read("f", 4096, 4096))
        assert device.stats.bytes_read == before  # served by read-ahead
        assert result.device_bytes == 0

    def test_readahead_clamped_at_eof(self, engine):
        fs, device = make_fs(engine, readahead_pages=100)
        fs.create("f", 8192)
        run_io(engine, fs.read("f", 0, 4096))
        assert device.stats.bytes_read == 8192  # file only has 2 pages


class TestWritePath:
    def test_write_through_writes_device(self, engine):
        fs, device = make_fs(engine, policy="write-through")
        fs.create("f", 1 * MiB)
        result = run_io(engine, fs.write("f", 0, 64 * KiB))
        assert device.stats.bytes_written == 64 * KiB
        assert result.device_bytes == 64 * KiB

    def test_write_back_defers_device(self, engine):
        fs, device = make_fs(engine, policy="write-back")
        fs.create("f", 1 * MiB)
        run_io(engine, fs.write("f", 0, 64 * KiB))
        assert device.stats.bytes_written == 0

    def test_flush_writes_dirty_pages(self, engine):
        fs, device = make_fs(engine, policy="write-back")
        fs.create("f", 1 * MiB)
        run_io(engine, fs.write("f", 0, 8192))
        flushed = run_io(engine, fs.flush())
        assert flushed == 2
        assert device.stats.bytes_written == 8192

    def test_write_then_read_hits_cache(self, engine):
        fs, device = make_fs(engine, policy="write-through")
        fs.create("f", 1 * MiB)
        run_io(engine, fs.write("f", 0, 8192))
        result = run_io(engine, fs.read("f", 0, 8192))
        assert result.device_bytes == 0  # read-after-write coherence

    def test_writeback_eviction_reaches_device(self, engine):
        fs, device = make_fs(engine, cache_pages=2, policy="write-back")
        fs.create("f", 1 * MiB)
        run_io(engine, fs.write("f", 0, 8192))        # 2 dirty pages
        run_io(engine, fs.read("f", 16384, 8192))     # evicts both
        engine.run()
        assert device.stats.bytes_written == 8192


class TestDropCaches:
    def test_drop_caches_forces_cold_read(self, engine):
        fs, device = make_fs(engine)
        fs.create("f", 1 * MiB)
        run_io(engine, fs.read("f", 0, 64 * KiB))
        fs.drop_caches()
        run_io(engine, fs.read("f", 0, 64 * KiB))
        assert device.stats.bytes_read == 128 * KiB

    def test_drop_caches_without_cache_is_noop(self, engine):
        fs, _dev = make_fs(engine, cache_pages=0)
        assert fs.drop_caches() == 0


class TestReadPathProperties:
    from hypothesis import given, settings, strategies as st

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=255),   # offset (KiB units)
        st.integers(min_value=1, max_value=64)),   # length (KiB units)
        min_size=1, max_size=12),
        st.integers(min_value=0, max_value=64))    # cache pages
    @settings(max_examples=30, deadline=None)
    def test_amplification_bounded_by_page_rounding(self, ranges,
                                                    cache_pages):
        """Device traffic never exceeds the page-rounded request sizes,
        and with no cache it matches the requests exactly."""
        from repro.sim.engine import Engine
        engine = Engine()
        fs, device = make_fs(engine, cache_pages=cache_pages)
        fs.create("f", 1 * MiB)
        total_rounded = 0
        for offset_kib, length_kib in ranges:
            offset = offset_kib * KiB
            length = min(length_kib * KiB, 1 * MiB - offset)
            if length <= 0:
                continue
            run_io(engine, fs.read("f", offset, length))
            first_page = offset // 4096
            last_page = (offset + length - 1) // 4096
            total_rounded += (last_page - first_page + 1) * 4096
        assert device.stats.bytes_read <= total_rounded
        if cache_pages == 0:
            exact = sum(min(l * KiB, 1 * MiB - o * KiB)
                        for o, l in ranges
                        if min(l * KiB, 1 * MiB - o * KiB) > 0)
            assert device.stats.bytes_read == exact

    @given(st.lists(st.integers(min_value=0, max_value=63),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_second_pass_fully_cached(self, pages):
        """After touching a working set that fits the cache, re-reading
        it moves nothing from the device."""
        from repro.sim.engine import Engine
        engine = Engine()
        fs, device = make_fs(engine, cache_pages=64)
        fs.create("f", 1 * MiB)
        for page in pages:
            run_io(engine, fs.read("f", page * 4096, 4096))
        before = device.stats.bytes_read
        for page in pages:
            run_io(engine, fs.read("f", page * 4096, 4096))
        assert device.stats.bytes_read == before


class TestCoalesce:
    def test_examples(self):
        assert _coalesce_pages([]) == []
        assert _coalesce_pages([3]) == [(3, 3)]
        assert _coalesce_pages([1, 2, 3, 7, 9, 10]) == \
            [(1, 3), (7, 7), (9, 10)]
