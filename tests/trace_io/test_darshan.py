"""darshan-parser text reconstruction."""

import io

import pytest

from repro.core.metrics import compute_metrics
from repro.errors import TraceFormatError
from repro.trace_io.darshan import read_darshan

SAMPLE = """\
# darshan log version: 3.41
# exe: ./ior -a POSIX
# nprocs: 2

#<module>  <rank>  <record id>  <counter>  <value>  <file name> ...
POSIX   0   123  POSIX_READS                 100   /scratch/data  x y
POSIX   0   123  POSIX_BYTES_READ        1048576   /scratch/data  x y
POSIX   0   123  POSIX_F_READ_TIME           2.0   /scratch/data  x y
POSIX   0   123  POSIX_F_OPEN_START_TIMESTAMP 0.5  /scratch/data  x y
POSIX   1   123  POSIX_WRITES                 50   /scratch/data  x y
POSIX   1   123  POSIX_BYTES_WRITTEN      512000   /scratch/data  x y
POSIX   1   123  POSIX_F_WRITE_TIME          1.0   /scratch/data  x y
MPIIO   0   456  MPIIO_INDEP_READS            10   /scratch/data  x y
POSIX   0   123  POSIX_SEEKS                   7   /scratch/data  x y
"""


class TestReconstruction:
    def test_counts_and_bytes_exact(self):
        trace = read_darshan(io.StringIO(SAMPLE))
        reads = trace.for_op("read")
        writes = trace.for_op("write")
        assert len(reads) == 100
        assert len(writes) == 50
        assert reads.total_bytes() == 1048576
        assert writes.total_bytes() == 512000

    def test_busy_time_preserved_per_stream(self):
        from repro.core.intervals import union_time
        trace = read_darshan(io.StringIO(SAMPLE))
        rank0 = trace.for_pid(0)
        assert union_time(rank0.intervals()) == pytest.approx(2.0)

    def test_open_start_offsets_the_stream(self):
        trace = read_darshan(io.StringIO(SAMPLE))
        rank0 = trace.for_pid(0)
        assert min(r.start for r in rank0) == pytest.approx(0.5)

    def test_pids_from_ranks(self):
        trace = read_darshan(io.StringIO(SAMPLE))
        assert trace.pids() == [0, 1]

    def test_shared_record_rank_minus_one_maps_to_pid_zero(self):
        text = ("POSIX -1 9 POSIX_READS 4 /f a\n"
                "POSIX -1 9 POSIX_BYTES_READ 4096 /f a\n"
                "POSIX -1 9 POSIX_F_READ_TIME 1.0 /f a\n")
        trace = read_darshan(io.StringIO(text))
        assert trace.pids() == [0]

    def test_metrics_computable(self):
        trace = read_darshan(io.StringIO(SAMPLE))
        first, last = trace.span()
        metrics = compute_metrics(trace, exec_time=last - first)
        assert metrics.bps > 0
        # B exact: (1048576 + 512000 bytes) per-record rounding.
        assert metrics.app_bytes == 1048576 + 512000

    def test_zero_time_ops_get_vanishing_intervals(self):
        text = ("POSIX 0 9 POSIX_READS 10 /f a\n"
                "POSIX 0 9 POSIX_BYTES_READ 10240 /f a\n"
                "POSIX 0 9 POSIX_F_READ_TIME 0.0 /f a\n")
        trace = read_darshan(io.StringIO(text))
        assert len(trace) == 10
        assert all(r.duration > 0 for r in trace)


class TestErrors:
    def test_no_posix_records(self):
        with pytest.raises(TraceFormatError, match="no POSIX"):
            read_darshan(io.StringIO("# header only\n"))

    def test_bad_counter_value(self):
        text = "POSIX 0 9 POSIX_READS lots /f a\n"
        with pytest.raises(TraceFormatError):
            read_darshan(io.StringIO(text))

    def test_negative_counter_rejected(self):
        text = ("POSIX 0 9 POSIX_READS 4 /f a\n"
                "POSIX 0 9 POSIX_BYTES_READ -1 /f a\n"
                "POSIX 0 9 POSIX_F_READ_TIME 1.0 /f a\n")
        with pytest.raises(TraceFormatError):
            read_darshan(io.StringIO(text))

    def test_cli_integration(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "app.darshan.txt"
        path.write_text(SAMPLE)
        assert main(["analyze", str(path), "--format", "darshan"]) == 0
        assert "BPS" in capsys.readouterr().out
