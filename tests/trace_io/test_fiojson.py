"""fio JSON reconstruction."""

import io
import json

import pytest

from repro.core.metrics import compute_metrics
from repro.errors import TraceFormatError
from repro.trace_io.fiojson import read_fio_json


def fio_doc(jobs):
    return json.dumps({"fio version": "fio-3.28", "jobs": jobs})


def job(name="job0", read=None, write=None):
    body = {"jobname": name}
    if read:
        body["read"] = read
    if write:
        body["write"] = write
    return body


def direction(total_ios=100, io_bytes=409600, runtime_ms=1000,
              clat_mean_ns=2_000_000):
    return {
        "total_ios": total_ios,
        "io_bytes": io_bytes,
        "runtime": runtime_ms,
        "clat_ns": {"mean": clat_mean_ns},
    }


class TestReconstruction:
    def test_counts_and_bytes_exact(self):
        doc = fio_doc([job(read=direction())])
        trace = read_fio_json(io.StringIO(doc))
        assert len(trace) == 100
        assert trace.total_bytes() == 409600

    def test_intervals_tile_runtime(self):
        doc = fio_doc([job(read=direction())])
        trace = read_fio_json(io.StringIO(doc))
        first, last = trace.span()
        assert first == 0.0
        # Last interval starts at 0.99 and runs its mean latency,
        # clipped to the 1 s runtime window.
        assert 0.99 < last <= 1.0

    def test_mean_latency_preserved(self):
        doc = fio_doc([job(read=direction(clat_mean_ns=2_000_000))])
        trace = read_fio_json(io.StringIO(doc))
        metrics = compute_metrics(trace, exec_time=1.0)
        assert metrics.arpt == pytest.approx(0.002, rel=0.01)

    def test_bps_consistent_with_fio_throughput(self):
        # 400 KiB over 1 s of fully-tiled runtime: BPS = 800 blocks/s.
        doc = fio_doc([job(read=direction(clat_mean_ns=50_000_000))])
        trace = read_fio_json(io.StringIO(doc))
        metrics = compute_metrics(trace, exec_time=1.0)
        assert metrics.bps == pytest.approx(800, rel=0.1)

    def test_read_and_write_directions(self):
        doc = fio_doc([job(read=direction(), write=direction())])
        trace = read_fio_json(io.StringIO(doc))
        assert len(trace.for_op("read")) == 100
        assert len(trace.for_op("write")) == 100

    def test_multiple_jobs_become_pids(self):
        doc = fio_doc([job("a", read=direction()),
                       job("b", read=direction())])
        trace = read_fio_json(io.StringIO(doc))
        assert trace.pids() == [0, 1]

    def test_latency_field_fallbacks(self):
        body = direction()
        del body["clat_ns"]
        body["lat_ns"] = {"mean": 1_000_000}
        doc = fio_doc([job(read=body)])
        trace = read_fio_json(io.StringIO(doc))
        assert trace[0].duration == pytest.approx(0.001)

    def test_usec_clat_variant(self):
        body = direction()
        del body["clat_ns"]
        body["clat"] = {"mean": 1500}  # microseconds
        doc = fio_doc([job(read=body)])
        trace = read_fio_json(io.StringIO(doc))
        assert trace[0].duration == pytest.approx(0.0015)


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(TraceFormatError):
            read_fio_json(io.StringIO("{oops"))

    def test_no_jobs(self):
        with pytest.raises(TraceFormatError):
            read_fio_json(io.StringIO(json.dumps({"jobs": []})))

    def test_no_io(self):
        doc = fio_doc([job(read={"total_ios": 0, "io_bytes": 0,
                                 "runtime": 0})])
        with pytest.raises(TraceFormatError):
            read_fio_json(io.StringIO(doc))

    def test_zero_runtime_with_io_rejected(self):
        doc = fio_doc([job(read={"total_ios": 10, "io_bytes": 100,
                                 "runtime": 0})])
        with pytest.raises(TraceFormatError):
            read_fio_json(io.StringIO(doc))
