"""Salvage-mode ingestion: quarantine accounting, budgets, formats."""

import io
import json
from pathlib import Path

import pytest

from repro.core.metrics import compute_metrics
from repro.errors import SalvageError, TraceFormatError
from repro.trace_io import ErrorPolicy, read_trace
from repro.trace_io.csvtrace import read_csv_trace
from repro.trace_io.jsonltrace import read_jsonl_trace
from repro.trace_io.policy import (
    DEFAULT_MAX_ERROR_RATIO,
    QuarantineReport,
    SalvageSession,
)

FIXTURE = Path(__file__).parent.parent / "data" / "corrupted_trace.jsonl"


def good_line(index):
    return json.dumps({"pid": index % 2, "op": "read", "nbytes": 4096,
                       "start": 0.1 * index, "end": 0.1 * index + 0.05})


class TestPolicyValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(TraceFormatError, match="error policy mode"):
            ErrorPolicy("lenient")

    def test_bad_ratio_rejected(self):
        with pytest.raises(TraceFormatError, match="max_error_ratio"):
            ErrorPolicy("salvage", max_error_ratio=0.0)
        with pytest.raises(TraceFormatError, match="max_error_ratio"):
            ErrorPolicy("salvage", max_error_ratio=1.5)

    def test_default_budget(self):
        assert DEFAULT_MAX_ERROR_RATIO == 0.25


class TestJsonlSalvage:
    def test_strict_raises_on_first_bad_line(self):
        text = good_line(0) + "\nNOT JSON\n" + good_line(2) + "\n"
        with pytest.raises(TraceFormatError, match=":2"):
            read_jsonl_trace(io.StringIO(text))

    def test_salvage_keeps_healthy_records(self):
        lines = [good_line(0), "NOT JSON"] + \
            [good_line(i) for i in range(2, 8)]
        policy = ErrorPolicy("salvage")
        trace = read_jsonl_trace(io.StringIO("\n".join(lines)),
                                 errors=policy)
        assert len(trace) == 7
        report = policy.report
        assert report.records_kept == 7
        assert report.skipped == 1
        assert report.entries[0].line_number == 2
        assert "invalid JSON" in report.entries[0].reason

    def test_fixture_report_is_accurate(self):
        policy = ErrorPolicy("salvage")
        trace = read_trace(str(FIXTURE), errors=policy)
        assert len(trace) == 95
        report = policy.report
        assert report.lines_seen == 100
        assert report.skipped == 5
        assert report.error_ratio == pytest.approx(0.05)
        assert sorted(e.line_number for e in report.entries) == \
            [14, 30, 48, 62, 89]

    def test_salvaged_metrics_match_clean_subset(self):
        # Reading the corrupted file in salvage mode must produce the
        # exact metrics of a file containing only its healthy lines.
        bad_lines = {14, 30, 48, 62, 89}
        clean = "\n".join(
            line for number, line in enumerate(
                FIXTURE.read_text().splitlines(), start=1)
            if number not in bad_lines)
        expected = read_jsonl_trace(io.StringIO(clean))
        salvaged = read_trace(str(FIXTURE), errors="salvage")
        first, last = expected.span()
        metrics_expected = compute_metrics(expected,
                                           exec_time=last - first)
        metrics_salvaged = compute_metrics(salvaged,
                                           exec_time=last - first)
        assert metrics_salvaged.bps == metrics_expected.bps
        assert metrics_salvaged.iops == metrics_expected.iops
        assert metrics_salvaged.union_io_time == \
            metrics_expected.union_io_time

    def test_budget_exceeded_raises_salvage_error(self):
        lines = [good_line(i) for i in range(4)] + ["junk"] * 6
        with pytest.raises(SalvageError, match="refusing to salvage"):
            read_jsonl_trace(io.StringIO("\n".join(lines)),
                             errors="salvage")

    def test_budget_can_be_widened(self):
        lines = [good_line(i) for i in range(4)] + ["junk"] * 6
        policy = ErrorPolicy("salvage", max_error_ratio=0.9)
        trace = read_jsonl_trace(io.StringIO("\n".join(lines)),
                                 errors=policy)
        assert len(trace) == 4

    def test_garbage_file_fails_fast(self):
        # Incremental budget check: a long all-garbage file is
        # abandoned after the fast-fail window, not read to the end.
        lines = ["garbage"] * 10_000
        policy = ErrorPolicy("salvage")
        with pytest.raises(SalvageError):
            read_jsonl_trace(io.StringIO("\n".join(lines)),
                             errors=policy)
        assert policy.report.lines_seen < 100

    def test_quarantine_file_gets_the_bad_lines(self, tmp_path):
        quarantine = tmp_path / "bad.txt"
        policy = ErrorPolicy("salvage", quarantine_path=quarantine)
        read_trace(str(FIXTURE), errors=policy)
        quarantined = quarantine.read_text().splitlines()
        assert len(quarantined) == 5
        assert "GARBAGE LINE FROM A CRASHED TRACER" in quarantined[3]

    def test_all_lines_bad_still_reports_no_records(self):
        policy = ErrorPolicy("salvage", max_error_ratio=1.0)
        with pytest.raises(TraceFormatError, match="no records"):
            read_jsonl_trace(io.StringIO("junk\njunk\n"), errors=policy)


class TestCsvSalvage:
    def test_salvage_skips_bad_rows(self):
        rows = ["pid,op,nbytes,start,end",
                "0,read,notanint,0.1,0.2"]
        rows += [f"{i % 2},write,512,{i}.0,{i}.5" for i in range(7)]
        policy = ErrorPolicy("salvage")
        trace = read_csv_trace(io.StringIO("\n".join(rows) + "\n"),
                               errors=policy)
        assert len(trace) == 7
        assert policy.report.skipped == 1
        assert policy.report.entries[0].line_number == 2

    def test_strict_csv_unchanged(self):
        text = ("pid,op,nbytes,start,end\n"
                "0,read,notanint,0.0,0.1\n")
        with pytest.raises(TraceFormatError):
            read_csv_trace(io.StringIO(text))


class TestNoRecordsContext:
    def test_jsonl_error_names_file_and_line_count(self):
        with pytest.raises(TraceFormatError,
                           match=r"0 data line\(s\) examined"):
            read_jsonl_trace(io.StringIO("# only a comment\n"))

    def test_report_summary_mentions_budget(self):
        report = QuarantineReport("x.jsonl", max_error_ratio=0.25)
        report.lines_seen = 10
        report.records_kept = 10
        assert "kept 10 record(s)" in report.summary()


class TestSessionAccounting:
    def test_strict_session_raises_with_location(self):
        session = SalvageSession(None, "trace.jsonl")
        with pytest.raises(TraceFormatError, match="trace.jsonl:7"):
            session.bad(7, "boom")

    def test_finish_applies_exact_budget_to_small_files(self):
        # 2 of 3 lines bad: way past the budget, but below the
        # fast-fail minimum — the EOF check must still catch it.
        session = SalvageSession("salvage", "tiny.jsonl")
        session.kept()
        session.bad(2, "bad")
        session.bad(3, "bad")
        with pytest.raises(SalvageError):
            session.finish()
