"""CSV trace round-trip and error handling."""

import io

import pytest

from repro.core.records import IORecord, TraceCollection
from repro.errors import TraceFormatError
from repro.trace_io.csvtrace import (
    read_csv_trace,
    trace_to_csv_text,
    write_csv_trace,
)


def sample_trace():
    return TraceCollection([
        IORecord(0, "read", 4096, 0.0, 0.125, file="data", offset=0),
        IORecord(1, "write", 512, 0.1, 0.3, file="data", offset=8192,
                 success=False),
    ])


class TestRoundTrip:
    def test_write_read_preserves_records(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv_trace(sample_trace(), path)
        loaded = read_csv_trace(path)
        assert len(loaded) == 2
        first, second = loaded
        assert (first.pid, first.op, first.nbytes) == (0, "read", 4096)
        assert first.start == 0.0 and first.end == 0.125
        assert second.success is False
        assert second.offset == 8192

    def test_stream_round_trip(self):
        text = trace_to_csv_text(sample_trace())
        loaded = read_csv_trace(io.StringIO(text))
        assert len(loaded) == 2

    def test_float_precision_preserved(self):
        trace = TraceCollection([
            IORecord(0, "read", 1, 0.1234567890123456, 1.9876543210987654),
        ])
        loaded = read_csv_trace(io.StringIO(trace_to_csv_text(trace)))
        assert loaded[0].start == trace[0].start
        assert loaded[0].end == trace[0].end


class TestRoundTripProperties:
    import string

    from hypothesis import given, settings, strategies as st

    record_strategy = st.tuples(
        st.integers(min_value=0, max_value=10_000),        # pid
        st.sampled_from(["read", "write"]),                # op
        st.integers(min_value=0, max_value=2**40),         # nbytes
        st.floats(min_value=0, max_value=1e6,
                  allow_nan=False),                        # start
        st.floats(min_value=0, max_value=1e3,
                  allow_nan=False),                        # duration
        st.text(alphabet=string.ascii_letters + "._-/",
                max_size=20),                              # file
        st.integers(min_value=-1, max_value=2**40),        # offset
        st.booleans(),                                     # success
    )

    @given(st.lists(record_strategy, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_csv_round_trip_exact(self, specs):
        from repro.core.records import IORecord, TraceCollection
        trace = TraceCollection([
            IORecord(pid=pid, op=op, nbytes=nbytes, start=start,
                     end=start + duration, file=file,
                     offset=offset, success=success)
            for pid, op, nbytes, start, duration, file, offset, success
            in specs
        ])
        loaded = read_csv_trace(io.StringIO(trace_to_csv_text(trace)))
        assert len(loaded) == len(trace)
        for original, parsed in zip(trace, loaded):
            assert parsed.pid == original.pid
            assert parsed.op == original.op
            assert parsed.nbytes == original.nbytes
            assert parsed.start == original.start   # repr round-trip
            assert parsed.end == original.end
            assert parsed.file == original.file
            assert parsed.offset == original.offset
            assert parsed.success == original.success


class TestReading:
    def test_minimal_columns(self):
        csv_text = "pid,op,nbytes,start,end\n0,read,512,0.0,1.0\n"
        loaded = read_csv_trace(io.StringIO(csv_text))
        assert loaded[0].file == ""
        assert loaded[0].offset == -1
        assert loaded[0].success is True

    def test_comments_and_blanks_skipped(self):
        csv_text = ("# a comment\n\npid,op,nbytes,start,end\n"
                    "# another\n0,read,512,0.0,1.0\n\n")
        assert len(read_csv_trace(io.StringIO(csv_text))) == 1

    def test_missing_required_column(self):
        csv_text = "pid,op,nbytes,start\n0,read,512,0.0\n"
        with pytest.raises(TraceFormatError, match="end"):
            read_csv_trace(io.StringIO(csv_text))

    def test_bad_value_reports_line(self):
        csv_text = "pid,op,nbytes,start,end\n0,read,oops,0.0,1.0\n"
        with pytest.raises(TraceFormatError, match=":2"):
            read_csv_trace(io.StringIO(csv_text))

    def test_bad_boolean(self):
        csv_text = ("pid,op,nbytes,start,end,file,offset,success\n"
                    "0,read,512,0.0,1.0,f,0,maybe\n")
        with pytest.raises(TraceFormatError):
            read_csv_trace(io.StringIO(csv_text))

    def test_empty_file_rejected(self):
        with pytest.raises(TraceFormatError):
            read_csv_trace(io.StringIO(""))

    def test_header_only_rejected(self):
        with pytest.raises(TraceFormatError, match="no records"):
            read_csv_trace(io.StringIO("pid,op,nbytes,start,end\n"))

    def test_bool_spellings(self):
        csv_text = ("pid,op,nbytes,start,end,file,offset,success\n"
                    "0,read,512,0.0,1.0,f,0,yes\n"
                    "1,read,512,0.0,1.0,f,0,FALSE\n")
        loaded = read_csv_trace(io.StringIO(csv_text))
        assert loaded[0].success is True
        assert loaded[1].success is False
