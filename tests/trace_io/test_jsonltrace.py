"""JSONL trace round-trip and error handling."""

import io
import json

import pytest

from repro.core.records import IORecord, TraceCollection
from repro.errors import TraceFormatError
from repro.trace_io.jsonltrace import read_jsonl_trace, write_jsonl_trace


def sample_trace():
    return TraceCollection([
        IORecord(0, "read", 4096, 0.0, 0.125, file="data", offset=0),
        IORecord(1, "write", 512, 0.1, 0.3, success=False, layer="fs"),
    ])


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl_trace(sample_trace(), path)
        loaded = read_jsonl_trace(path)
        assert len(loaded) == 2
        assert loaded[1].layer == "fs"
        assert loaded[1].success is False

    def test_stream_round_trip(self):
        buffer = io.StringIO()
        write_jsonl_trace(sample_trace(), buffer)
        buffer.seek(0)
        assert len(read_jsonl_trace(buffer)) == 2


class TestReading:
    def test_unknown_keys_ignored(self):
        line = json.dumps({"pid": 0, "op": "read", "nbytes": 512,
                           "start": 0.0, "end": 1.0,
                           "queue_depth": 32})
        loaded = read_jsonl_trace(io.StringIO(line + "\n"))
        assert loaded[0].nbytes == 512

    def test_defaults_applied(self):
        line = json.dumps({"pid": 0, "op": "read", "nbytes": 512,
                           "start": 0.0, "end": 1.0})
        record = read_jsonl_trace(io.StringIO(line + "\n"))[0]
        assert record.layer == "app"
        assert record.success is True
        assert record.offset == -1

    def test_missing_key_reports_line(self):
        line = json.dumps({"pid": 0, "op": "read"})
        with pytest.raises(TraceFormatError, match=":1"):
            read_jsonl_trace(io.StringIO(line + "\n"))

    def test_invalid_json_rejected(self):
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            read_jsonl_trace(io.StringIO("{not json\n"))

    def test_non_object_rejected(self):
        with pytest.raises(TraceFormatError, match="expected an object"):
            read_jsonl_trace(io.StringIO("[1, 2]\n"))

    def test_comments_and_blanks_skipped(self):
        line = json.dumps({"pid": 0, "op": "read", "nbytes": 512,
                           "start": 0.0, "end": 1.0})
        text = f"# comment\n\n{line}\n"
        assert len(read_jsonl_trace(io.StringIO(text))) == 1

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError):
            read_jsonl_trace(io.StringIO(""))
