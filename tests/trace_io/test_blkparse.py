"""blkparse text parsing."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.trace_io.blkparse import read_blkparse

SAMPLE = """\
  8,0    3        1     0.000000000   697  Q   R 1000 + 8 [iozone]
  8,0    3        2     0.000100000   697  D   R 1000 + 8 [iozone]
  8,0    1        3     0.000200000   698  Q   W 2000 + 16 [iozone]
  8,0    3        4     0.005000000   697  C   R 1000 + 8 [0]
  8,0    1        5     0.006000000   698  C   W 2000 + 16 [0]
"""


class TestParsing:
    def test_q_to_c_pairing(self):
        trace = read_blkparse(io.StringIO(SAMPLE))
        assert len(trace) == 2
        read = trace.for_op("read")[0]
        assert read.pid == 697
        assert read.nbytes == 8 * 512
        assert read.start == pytest.approx(0.0)
        assert read.end == pytest.approx(0.005)
        write = trace.for_op("write")[0]
        assert write.nbytes == 16 * 512

    def test_d_to_c_pairing(self):
        trace = read_blkparse(io.StringIO(SAMPLE), start_action="D")
        # Only the read has a D event.
        assert len(trace) == 1
        assert trace[0].start == pytest.approx(0.0001)

    def test_offset_from_sector(self):
        trace = read_blkparse(io.StringIO(SAMPLE))
        assert trace.for_op("read")[0].offset == 1000 * 512

    def test_bad_start_action_rejected(self):
        with pytest.raises(TraceFormatError):
            read_blkparse(io.StringIO(SAMPLE), start_action="X")


class TestRobustness:
    def test_summary_lines_ignored(self):
        text = SAMPLE + "\nTotal (8,0):\n Reads Queued: 1, 4KiB\n"
        trace = read_blkparse(io.StringIO(text))
        assert len(trace) == 2

    def test_unmatched_completion_skipped(self):
        text = "  8,0 0 1 1.0 5 C R 42 + 8 [0]\n" + SAMPLE
        trace = read_blkparse(io.StringIO(text))
        assert len(trace) == 2

    def test_unmatched_completion_strict_raises(self):
        text = "  8,0    0    1    1.000000000     5  C   R 42 + 8 [0]\n"
        with pytest.raises(TraceFormatError):
            read_blkparse(io.StringIO(text), strict=True)

    def test_never_completed_strict_raises(self):
        text = "  8,0    0    1    1.000000000     5  Q   R 42 + 8 [x]\n" \
               + SAMPLE
        with pytest.raises(TraceFormatError, match="never completed"):
            read_blkparse(io.StringIO(text), strict=True)

    def test_no_ios_rejected(self):
        with pytest.raises(TraceFormatError, match="no completed"):
            read_blkparse(io.StringIO("garbage\n"))

    def test_zero_sector_events_skipped(self):
        text = ("  8,0    0    1    0.000000000     5  Q   F 0 + 0 [k]\n"
                + SAMPLE)
        trace = read_blkparse(io.StringIO(text))
        assert len(trace) == 2

    def test_completion_before_start_rejected(self):
        text = ("  8,0    0    1    5.000000000     5  Q   R 42 + 8 [x]\n"
                "  8,0    0    2    1.000000000     5  C   R 42 + 8 [0]\n")
        with pytest.raises(TraceFormatError, match="precedes"):
            read_blkparse(io.StringIO(text))
