"""System assembly from declarative configs."""

import pytest

from repro.errors import ExperimentError
from repro.fs.localfs import LocalFileSystem
from repro.pfs.pvfs import PFSClient
from repro.system import SystemConfig, build_system
from repro.util.units import MiB


class TestConfig:
    def test_defaults(self):
        config = SystemConfig()
        assert config.kind == "local"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            SystemConfig(kind="cloud")

    def test_bad_server_count_rejected(self):
        with pytest.raises(ExperimentError):
            SystemConfig(kind="pfs", n_servers=0)

    def test_with_seed(self):
        config = SystemConfig(seed=1)
        assert config.with_seed(2).seed == 2
        assert config.seed == 1  # original untouched


class TestLocalSystem:
    def test_builds_localfs(self):
        system = build_system(SystemConfig(kind="local"))
        assert isinstance(system.localfs, LocalFileSystem)
        assert system.pfs is None
        assert len(system.devices) == 1

    def test_mounts_shared(self):
        system = build_system(SystemConfig(kind="local"))
        assert system.mount_for(0) is system.mount_for(5)
        assert system.shared_mount() is system.localfs

    def test_cache_disabled(self):
        system = build_system(SystemConfig(kind="local", cache_pages=0))
        assert system.localfs.cache is None

    def test_posix_factory(self):
        system = build_system(SystemConfig(kind="local"))
        lib = system.posix()
        assert lib.mount is system.localfs

    def test_drop_caches(self):
        system = build_system(SystemConfig(kind="local"))
        system.drop_caches()  # must not raise


class TestPFSSystem:
    def test_builds_servers_and_network(self):
        system = build_system(SystemConfig(kind="pfs", n_servers=3))
        assert system.pfs is not None
        assert len(system.pfs.servers) == 3
        assert len(system.devices) == 3
        assert system.localfs is None

    def test_per_pid_client_nodes(self):
        system = build_system(SystemConfig(kind="pfs", n_servers=2))
        mount0 = system.mount_for(0)
        mount1 = system.mount_for(1)
        assert isinstance(mount0, PFSClient)
        assert mount0 is not mount1
        assert mount0 is system.mount_for(0)  # cached per pid

    def test_posix_requires_local(self):
        system = build_system(SystemConfig(kind="pfs", n_servers=2))
        with pytest.raises(ExperimentError):
            system.posix()
        lib = system.posix_for(0)  # this is the PFS path
        assert lib.mount is system.mount_for(0)

    def test_client_bandwidth_override(self):
        system = build_system(SystemConfig(
            kind="pfs", n_servers=1, client_bandwidth=1000 * MiB))
        system.mount_for(0)
        node = system.network.node("client0")
        assert node.nic.tx.bandwidth == 1000 * MiB

    def test_default_stripe_spans_all_servers(self):
        system = build_system(SystemConfig(kind="pfs", n_servers=4))
        layout = system.pfs.default_layout
        assert layout.servers == (0, 1, 2, 3)


class TestDeterminism:
    def test_same_seed_same_simulation(self):
        from repro.workloads import IOzoneWorkload
        from repro.util.units import KiB

        def run(seed):
            workload = IOzoneWorkload(file_size=2 * MiB,
                                      record_size=64 * KiB)
            config = SystemConfig(kind="local", jitter_sigma=0.2,
                                  seed=seed)
            return workload.run(config).exec_time

        assert run(1) == run(1)
        assert run(1) != run(2)
