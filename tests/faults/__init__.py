"""Fault-plan subsystem tests."""
