"""Arming fault plans against live systems: windows open, close, restore."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    DEVICE_DEGRADE,
    DEVICE_FAULTS,
    LINK_DOWN,
    LINK_LATENCY,
    SERVER_CRASH,
    SERVER_SLOWDOWN,
    STRAGGLER,
    FaultEvent,
    FaultPlan,
)
from repro.system import SystemConfig, build_system


def pfs_config(plan: FaultPlan) -> SystemConfig:
    return SystemConfig(kind="pfs", n_servers=2, device_spec="ramdisk",
                        fault_plan=plan, seed=4321)


def probe(system, samples, times, read_state):
    """Spawn a process sampling ``read_state()`` at absolute times."""
    def proc():
        for when in times:
            yield system.engine.timeout(when - system.engine.now)
            samples.append(read_state())
    process = system.engine.spawn(proc(), name="probe")
    system.engine.run()
    process.result()


class TestWindowTransitions:
    def test_device_degrade_window_opens_and_restores(self):
        plan = FaultPlan((FaultEvent(kind=DEVICE_DEGRADE,
                                     target="server0.disk", at=1.0,
                                     duration=1.0, factor=4.0),))
        system = build_system(pfs_config(plan))
        device = system.devices[0]
        samples = []
        probe(system, samples, (0.5, 1.5, 2.5), lambda: device.degrade)
        assert samples == [1.0, 4.0, 1.0]

    def test_device_faults_window_sets_and_restores_injector(self):
        plan = FaultPlan((FaultEvent(kind=DEVICE_FAULTS,
                                     target="server1.disk", at=1.0,
                                     duration=1.0, probability=0.5,
                                     time_fraction=0.25,
                                     per_bytes=4096),))
        system = build_system(pfs_config(plan))
        device = system.devices[1]

        def state():
            injector = device.fault_injector
            return (injector.probability, injector.time_fraction,
                    injector.per_bytes)
        samples = []
        probe(system, samples, (0.5, 1.5, 2.5), state)
        # Injector exists from arm time (idle), so draw sequences are
        # aligned between windowed and healthy phases.
        assert samples == [(0.0, 0.5, 0), (0.5, 0.25, 4096), (0.0, 0.5, 0)]

    def test_server_crash_window(self):
        plan = FaultPlan((FaultEvent(kind=SERVER_CRASH, target="server0",
                                     at=1.0, duration=1.0),))
        system = build_system(pfs_config(plan))
        server = system.pfs.servers[0]
        samples = []
        probe(system, samples, (0.5, 1.5, 2.5),
              lambda: (server.available, server.crash_count))
        assert samples == [(True, 0), (False, 1), (True, 1)]

    def test_server_slowdown_window(self):
        plan = FaultPlan((FaultEvent(kind=SERVER_SLOWDOWN,
                                     target="server1", at=1.0,
                                     duration=1.0, factor=3.0),))
        system = build_system(pfs_config(plan))
        server = system.pfs.servers[1]
        samples = []
        probe(system, samples, (0.5, 1.5, 2.5), lambda: server.slowdown)
        assert samples == [1.0, 3.0, 1.0]

    def test_link_latency_window(self):
        plan = FaultPlan((FaultEvent(kind=LINK_LATENCY, target="server0",
                                     at=1.0, duration=1.0, factor=5.0),))
        system = build_system(pfs_config(plan))
        nic = system.network.node("server0").nic
        samples = []
        probe(system, samples, (0.5, 1.5, 2.5),
              lambda: nic.tx.latency_factor)
        assert samples == [1.0, 5.0, 1.0]

    def test_link_down_window_flaps_and_recovers(self):
        plan = FaultPlan((FaultEvent(kind=LINK_DOWN, target="server1",
                                     at=1.0, duration=1.0),))
        system = build_system(pfs_config(plan))
        nic = system.network.node("server1").nic
        samples = []
        probe(system, samples, (0.5, 1.5, 2.5), lambda: nic.tx.up)
        assert samples == [True, False, True]

    def test_straggler_window(self):
        plan = FaultPlan((FaultEvent(kind=STRAGGLER, target="7", at=1.0,
                                     duration=1.0, factor=2.5),))
        system = build_system(pfs_config(plan))
        samples = []
        probe(system, samples, (0.5, 1.5, 2.5),
              lambda: system.fault_state.process_factor(7))
        assert samples == [1.0, 2.5, 1.0]

    def test_infinite_window_never_closes(self):
        plan = FaultPlan((FaultEvent(kind=DEVICE_DEGRADE,
                                     target="server0.disk", at=1.0,
                                     factor=2.0),))
        system = build_system(pfs_config(plan))
        device = system.devices[0]
        samples = []
        probe(system, samples, (0.5, 100.0), lambda: device.degrade)
        assert samples == [1.0, 2.0]
        assert system.fault_plan_injector.windows_closed == 0


class TestArming:
    def test_unknown_device_fails_at_build_time(self):
        plan = FaultPlan((FaultEvent(kind=DEVICE_DEGRADE, target="nope",
                                     at=0.0, factor=2.0),))
        with pytest.raises(FaultPlanError, match="unknown device"):
            build_system(pfs_config(plan))

    def test_unknown_server_fails_at_build_time(self):
        plan = FaultPlan((FaultEvent(kind=SERVER_CRASH, target="server9",
                                     at=0.0, duration=1.0),))
        with pytest.raises(FaultPlanError, match="unknown server"):
            build_system(pfs_config(plan))

    def test_server_events_need_a_pfs(self):
        plan = FaultPlan((FaultEvent(kind=SERVER_CRASH, target="server0",
                                     at=0.0, duration=1.0),))
        config = SystemConfig(kind="local", device_spec="ramdisk",
                              fault_plan=plan)
        with pytest.raises(FaultPlanError, match="no parallel file"):
            build_system(config)

    def test_rearming_rejected(self):
        plan = FaultPlan((FaultEvent(kind=SERVER_CRASH, target="server0",
                                     at=0.0, duration=1.0),))
        system = build_system(pfs_config(plan))
        with pytest.raises(FaultPlanError, match="already armed"):
            system.fault_plan_injector.arm()

    def test_summary_and_log_after_run(self):
        plan = FaultPlan((
            FaultEvent(kind=SERVER_CRASH, target="server0", at=1.0,
                       duration=1.0),
            FaultEvent(kind=DEVICE_DEGRADE, target="server1.disk",
                       at=2.0, duration=1.0, factor=2.0),
        ))
        system = build_system(pfs_config(plan))
        probe(system, [], (5.0,), lambda: None)
        injector = system.fault_plan_injector
        assert injector.summary() == {"events": 2, "windows_opened": 2,
                                      "windows_closed": 2}
        assert len(injector.log) == 4
        assert any("open server-crash on server0" in line
                   for line in injector.log)
