"""FaultEvent/FaultPlan validation and seeded plan generation."""

import math

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import (
    DEVICE_DEGRADE,
    DEVICE_FAULTS,
    LINK_DOWN,
    LINK_LATENCY,
    SERVER_CRASH,
    SERVER_SLOWDOWN,
    STRAGGLER,
    FaultEvent,
    FaultPlan,
    random_fault_plan,
)
from repro.util.rng import RngStream


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultEvent(kind="disk-melt", target="d0", at=0.0)

    def test_empty_target_rejected(self):
        with pytest.raises(FaultPlanError, match="needs a target"):
            FaultEvent(kind=SERVER_CRASH, target="", at=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError, match="bad event time"):
            FaultEvent(kind=SERVER_CRASH, target="s0", at=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(FaultPlanError, match="bad event duration"):
            FaultEvent(kind=SERVER_CRASH, target="s0", at=0.0,
                       duration=0.0)

    def test_infinite_link_down_rejected(self):
        # A link that never comes back deadlocks its waiters; the plan
        # validator refuses it up front.
        with pytest.raises(FaultPlanError, match="finite duration"):
            FaultEvent(kind=LINK_DOWN, target="n0", at=0.0)

    def test_finite_link_down_allowed(self):
        event = FaultEvent(kind=LINK_DOWN, target="n0", at=1.0,
                           duration=0.5)
        assert event.recovery_at == pytest.approx(1.5)

    def test_factor_below_one_rejected(self):
        for kind in (DEVICE_DEGRADE, SERVER_SLOWDOWN, LINK_LATENCY,
                     STRAGGLER):
            with pytest.raises(FaultPlanError, match="factor"):
                FaultEvent(kind=kind, target="3", at=0.0, factor=0.5)

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultEvent(kind=DEVICE_FAULTS, target="d0", at=0.0,
                       probability=1.5)

    def test_straggler_target_must_be_pid(self):
        with pytest.raises(FaultPlanError, match="pid"):
            FaultEvent(kind=STRAGGLER, target="rank-zero", at=0.0)

    def test_infinite_window_never_recovers(self):
        event = FaultEvent(kind=DEVICE_DEGRADE, target="d0", at=2.0,
                           factor=3.0)
        assert math.isinf(event.recovery_at)
        assert "forever" in event.describe()

    def test_describe_mentions_kind_and_target(self):
        event = FaultEvent(kind=SERVER_SLOWDOWN, target="server1",
                           at=0.25, duration=1.0, factor=2.0)
        text = event.describe()
        assert SERVER_SLOWDOWN in text and "server1" in text


class TestFaultPlan:
    def test_events_sorted_by_start_time(self):
        late = FaultEvent(kind=SERVER_CRASH, target="s0", at=5.0,
                          duration=1.0)
        early = FaultEvent(kind=SERVER_CRASH, target="s0", at=1.0,
                           duration=1.0)
        plan = FaultPlan((late, early))
        assert [e.at for e in plan] == [1.0, 5.0]

    def test_overlapping_same_kind_same_target_rejected(self):
        first = FaultEvent(kind=SERVER_CRASH, target="s0", at=1.0,
                           duration=2.0)
        second = FaultEvent(kind=SERVER_CRASH, target="s0", at=2.0,
                            duration=1.0)
        with pytest.raises(FaultPlanError, match="overlapping"):
            FaultPlan((first, second))

    def test_overlap_allowed_across_targets_and_kinds(self):
        plan = FaultPlan((
            FaultEvent(kind=SERVER_CRASH, target="s0", at=1.0,
                       duration=2.0),
            FaultEvent(kind=SERVER_CRASH, target="s1", at=1.5,
                       duration=2.0),
            FaultEvent(kind=SERVER_SLOWDOWN, target="s0", at=1.5,
                       duration=2.0, factor=2.0),
        ))
        assert len(plan) == 3

    def test_targets_filtering(self):
        plan = FaultPlan((
            FaultEvent(kind=SERVER_CRASH, target="s0", at=0.0,
                       duration=1.0),
            FaultEvent(kind=DEVICE_DEGRADE, target="d0", at=0.5,
                       factor=2.0),
        ))
        assert plan.targets() == ["s0", "d0"]
        assert plan.targets(DEVICE_DEGRADE) == ["d0"]

    def test_empty_plan_describes_itself(self):
        assert "empty" in FaultPlan().describe()


class TestRandomFaultPlan:
    def kwargs(self):
        return dict(horizon_s=10.0, devices=("d0", "d1"),
                    servers=("s0",), nodes=("n0",), pids=(0, 3),
                    events_per_target=2, severity=1.0,
                    fault_probability=0.1, per_bytes=4096)

    def test_same_seed_same_plan(self):
        one = random_fault_plan(RngStream.from_seed(99), **self.kwargs())
        two = random_fault_plan(RngStream.from_seed(99), **self.kwargs())
        assert one.events == two.events

    def test_different_seed_different_plan(self):
        one = random_fault_plan(RngStream.from_seed(99), **self.kwargs())
        two = random_fault_plan(RngStream.from_seed(100), **self.kwargs())
        assert one.events != two.events

    def test_covers_every_requested_layer(self):
        plan = random_fault_plan(RngStream.from_seed(7), **self.kwargs())
        kinds = {event.kind for event in plan}
        assert kinds == {DEVICE_DEGRADE, DEVICE_FAULTS, SERVER_SLOWDOWN,
                         LINK_LATENCY, STRAGGLER}
        assert set(plan.targets(STRAGGLER)) == {"0", "3"}

    def test_windows_inside_horizon_and_disjoint(self):
        plan = random_fault_plan(RngStream.from_seed(11), **self.kwargs())
        for event in plan:
            assert 0.0 <= event.at < 10.0
            assert event.recovery_at <= 10.0 + 1e-9

    def test_bad_horizon_rejected(self):
        with pytest.raises(FaultPlanError, match="horizon"):
            random_fault_plan(RngStream.from_seed(1), horizon_s=0.0)
