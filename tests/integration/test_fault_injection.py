"""Failure injection through the whole stack.

Paper section III.A: B counts "all successful accesses, non-successful
ones, and all concurrent ones" — so a trace from a faulty run must still
be analyzable and its B must include the failed accesses.
"""

import pytest

from repro.core.metrics import compute_metrics
from repro.devices.base import FaultInjector
from repro.devices.ramdisk import RamDisk
from repro.fs.localfs import LocalFileSystem
from repro.middleware.posix import PosixIO
from repro.middleware.tracing import TraceRecorder
from repro.util.rng import RngStream
from repro.util.units import KiB, MiB


def run_with_fault_rate(engine, probability):
    rng = RngStream.from_seed(7)
    device = RamDisk(engine, capacity_bytes=64 * MiB,
                     fault_injector=FaultInjector(
                         rng.spawn("faults"), probability))
    fs = LocalFileSystem(engine, device, page_cache=None)
    fs.create("data", 4 * MiB)
    recorder = TraceRecorder(engine)
    lib = PosixIO(engine, fs, recorder)

    def app(eng):
        handle = lib.open("data", 0)
        for i in range(64):
            yield handle.pread(i * 64 * KiB, 64 * KiB)
    process = engine.spawn(app(engine))
    engine.run()
    process.result()
    return recorder


class TestFaultyRuns:
    def test_failed_accesses_present_in_trace(self, engine):
        recorder = run_with_fault_rate(engine, probability=0.5)
        failed = [r for r in recorder.trace if not r.success]
        assert failed, "fault injection produced no failures"
        assert len(recorder.trace) == 64

    def test_b_counts_failed_accesses(self, engine):
        recorder = run_with_fault_rate(engine, probability=1.0)
        assert all(not r.success for r in recorder.trace)
        metrics = compute_metrics(recorder.trace, exec_time=engine.now,
                                  fs_bytes=recorder.fs_bytes_moved)
        # Every issued block still counted in B.
        assert metrics.app_blocks == 64 * (64 * KiB) // 512
        assert metrics.bps > 0

    def test_metrics_computable_at_any_fault_rate(self, engine):
        recorder = run_with_fault_rate(engine, probability=0.2)
        metrics = compute_metrics(recorder.trace, exec_time=engine.now,
                                  fs_bytes=recorder.fs_bytes_moved)
        assert metrics.iops > 0
        assert metrics.arpt > 0

    def test_faulty_run_faster_than_healthy(self):
        # Injected failures abort mid-transfer, so the faulty run takes
        # less simulated time — and the trace still reflects it.
        from repro.sim.engine import Engine
        healthy_engine, faulty_engine = Engine(), Engine()
        run_with_fault_rate(healthy_engine, probability=0.0)
        run_with_fault_rate(faulty_engine, probability=1.0)
        assert faulty_engine.now < healthy_engine.now
