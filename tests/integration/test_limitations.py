"""Honest limitation analysis: where BPS needs care to stay truthful.

BPS counts *blocks*; metadata operations move none.  On a
metadata-heavy workload (small files, getattr storms) the metric's
behaviour depends entirely on a recording convention the paper never
had to spell out:

- if metadata operations' intervals are recorded into the trace (our
  ``record_metadata=True``), they extend T, so BPS falls as metadata
  load grows — it keeps tracking overall performance;
- if only data I/O is recorded (a strict "blocks" reading), T is blind
  to metadata time: BPS stays flat while the application slows — the
  same failure mode the paper pins on bandwidth, now hitting BPS.

These tests document both behaviours; EXPERIMENTS.md carries the
discussion.
"""

import pytest

from repro.core.correlation import normalized_cc
from repro.core.metrics import compute_metrics
from repro.errors import AnalysisError, WorkloadError
from repro.system import SystemConfig
from repro.util.units import KiB
from repro.workloads import SmallFilesWorkload

CONFIG = SystemConfig(kind="pfs", n_servers=4, with_mds=True)

STAT_LADDER = (0, 4, 8, 16)


def run_storm(stats_per_file):
    workload = SmallFilesWorkload(files_per_proc=16,
                                  file_bytes=8 * KiB, nproc=2,
                                  stats_per_file=stats_per_file)
    return workload.run(CONFIG)


@pytest.fixture(scope="module")
def storm_runs():
    return {stats: run_storm(stats) for stats in STAT_LADDER}


class TestWorkloadMechanics:
    def test_requires_pfs(self):
        workload = SmallFilesWorkload()
        with pytest.raises(WorkloadError):
            workload.run(SystemConfig(kind="local"))

    def test_metadata_ops_counted(self, storm_runs):
        base = storm_runs[0]
        # 2 procs x 16 files: 32 creates.
        assert base.extras["metadata_ops"] == 32
        stormy = storm_runs[16]
        # + 16 stats per file.
        assert stormy.extras["metadata_ops"] == 32 + 32 * 16

    def test_metadata_records_have_zero_bytes(self, storm_runs):
        trace = storm_runs[4].trace
        meta = trace.filter(lambda r: r.op in ("create", "stat"))
        assert len(meta) > 0
        assert all(r.nbytes == 0 for r in meta)
        assert meta.total_blocks() == 0

    def test_metadata_load_slows_execution(self, storm_runs):
        times = [storm_runs[s].exec_time for s in STAT_LADDER]
        assert times == sorted(times)
        assert times[-1] > 1.5 * times[0]


class TestBPSUnderMetadataLoad:
    def test_full_trace_bps_tracks_slowdown(self, storm_runs):
        """With metadata intervals in T, BPS keeps the right direction."""
        bps_values = []
        exec_times = []
        for stats in STAT_LADDER:
            measurement = storm_runs[stats]
            metrics = measurement.metrics()
            bps_values.append(metrics.bps)
            exec_times.append(measurement.exec_time)
        result = normalized_cc("BPS", bps_values, exec_times)
        assert result.direction_correct
        assert result.normalized > 0.8

    def test_data_only_bps_is_blind(self, storm_runs):
        """A strict blocks-only trace cannot see the metadata storm."""
        bps_values = []
        exec_times = []
        for stats in STAT_LADDER:
            measurement = storm_runs[stats]
            data_only = measurement.trace.filter(
                lambda r: r.op in ("read", "write"))
            metrics = compute_metrics(data_only,
                                      exec_time=measurement.exec_time)
            bps_values.append(metrics.bps)
            exec_times.append(measurement.exec_time)
        # Data-side BPS barely moves while execution time doubles:
        spread = max(bps_values) / min(bps_values)
        assert spread < 1.05
        assert max(exec_times) > 1.5 * min(exec_times)
        # ... so its correlation is either undefined or weak.
        try:
            result = normalized_cc("BPS", bps_values, exec_times)
        except AnalysisError:
            return  # zero variance: no correlation at all
        assert abs(result.cc) < 0.9 or not result.direction_correct
