"""Live pipeline end to end: tap passivity, streamed==batch, crash flags.

The subsystem's acceptance criteria in one place:

- tapping a simulated run changes nothing — the tapped run is
  bit-identical to the untapped twin (the tap is a pure observer);
- the final cumulative streamed BPS equals the batch
  :func:`~repro.core.metrics.compute_metrics` **bit-identically** on a
  corpus of traces covering every producer we have, including
  out-of-order delivery within the reorder bound;
- during a fault-plan server crash the anomaly detector flags at least
  one window overlapping the crash, while the fault-free twin of the
  same run flags none.
"""

import random

import pytest

from repro.core.metrics import compute_metrics
from repro.core.records import TraceCollection
from repro.faults.plan import SERVER_CRASH, FaultEvent, FaultPlan
from repro.live import BpsAnomalyDetector, LiveTap, MetricStream, watch_trace
from repro.middleware.retry import RetryPolicy
from repro.system import SystemConfig
from repro.util.units import KiB
from repro.workloads.base import run_workload
from repro.workloads.hotspot import HotSpotWorkload
from repro.workloads.iozone import IOzoneWorkload
from repro.workloads.ior import IORWorkload

CRASH_AT, CRASH_FOR = 0.08, 0.1


def crash_config(fault=True):
    """A 3-server PVFS stalled by a mid-run crash (no failover path)."""
    plan = FaultPlan((FaultEvent(kind=SERVER_CRASH, target="server0",
                                 at=CRASH_AT, duration=CRASH_FOR),))
    return SystemConfig(
        kind="pfs", n_servers=3, device_spec="sata-hdd-7200",
        replication=1, fault_plan=plan if fault else None,
        seed=20130520,
        retry_policy=RetryPolicy(max_retries=6, backoff_base_s=0.004,
                                 failover=False),
    )


def hot_workload():
    return HotSpotWorkload(ops_per_proc=48, nproc=4, hot_server=0)


def tapped_run(workload, config, *, window=0.02, detector=None,
               **tap_kwargs):
    holder = {}

    def attach(system):
        holder["tap"] = LiveTap(system, window=window,
                                heartbeat_s=window, detector=detector,
                                **tap_kwargs)

    measurement = run_workload(workload, config, on_system=attach)
    result = holder["tap"].result(exec_time=measurement.exec_time)
    return measurement, result


def record_tuples(trace):
    return [(r.pid, r.op, r.file, r.offset, r.nbytes, r.start, r.end,
             r.success, r.retries) for r in trace]


class TestTapPassivity:
    def test_tapped_run_bit_identical_to_untapped(self):
        untapped = run_workload(hot_workload(), crash_config())
        tapped, _ = tapped_run(hot_workload(), crash_config())
        assert tapped.exec_time == untapped.exec_time
        assert tapped.fs_bytes == untapped.fs_bytes
        assert record_tuples(tapped.trace) == \
            record_tuples(untapped.trace)

    def test_streamed_metrics_match_measurement(self):
        measurement, result = tapped_run(hot_workload(), crash_config())
        batch = measurement.metrics()
        assert result.metrics.bps == batch.bps
        assert result.metrics.iops == batch.iops
        assert result.metrics.union_io_time == batch.union_io_time
        assert result.metrics.exec_time == batch.exec_time

    def test_pfs_run_gets_server_breakdown(self):
        _, result = tapped_run(hot_workload(), crash_config())
        servers = {g.key for g in result.breakdowns["server"]}
        assert {"server0", "server1", "server2"} <= servers
        assert sum(g.ops for g in result.breakdowns["server"]) == \
            result.metrics.app_ops


def corpus():
    """Traces from every producer: simulations, faults, local and PFS."""
    runs = {
        "iozone-local": run_workload(
            IOzoneWorkload(file_size=256 * KiB, record_size=32 * KiB,
                           nproc=2, mode="throughput"),
            SystemConfig(kind="local", device_spec="sata-ssd",
                         seed=7)),
        "ior-pfs": run_workload(
            IORWorkload(file_size=256 * KiB, transfer_size=64 * KiB,
                        nproc=2),
            SystemConfig(kind="pfs", n_servers=3,
                         device_spec="sata-hdd-7200", seed=11)),
        "hotspot-crash": run_workload(hot_workload(), crash_config()),
    }
    return {name: m.trace for name, m in runs.items()}


class TestStreamedEqualsBatchOnCorpus:
    @pytest.fixture(scope="class")
    def traces(self):
        return corpus()

    def test_watch_trace_bit_identical(self, traces):
        for name, trace in traces.items():
            result = watch_trace(trace, bins=12)
            first, last = trace.span()
            batch = compute_metrics(trace, exec_time=last - first,
                                    block_size=512)
            assert result.metrics.bps == batch.bps, name
            assert result.metrics.iops == batch.iops, name
            assert result.metrics.bandwidth == batch.bandwidth, name
            assert result.metrics.union_io_time == \
                batch.union_io_time, name
            assert result.metrics.app_blocks == batch.app_blocks, name

    def test_shuffled_delivery_within_reorder_bound(self, traces):
        for name, trace in traces.items():
            records = list(trace)
            random.Random(13).shuffle(records)
            stream = MetricStream(window=0.02, block_size=512,
                                  reorder_capacity=len(records))
            for record in records:
                stream.ingest(record)
            result = stream.finalize()
            first, last = trace.span()
            batch = compute_metrics(trace, exec_time=last - first,
                                    block_size=512)
            assert result.metrics.bps == batch.bps, name
            assert result.metrics.union_io_time == \
                batch.union_io_time, name

    def test_windowed_mass_conserved(self, traces):
        for name, trace in traces.items():
            result = watch_trace(trace, bins=10)
            assert sum(w.blocks for w in result.windows) == \
                pytest.approx(result.metrics.app_blocks,
                              rel=1e-9), name
            assert sum(w.io_time for w in result.windows) == \
                pytest.approx(result.metrics.union_io_time,
                              rel=1e-9), name


class TestCrashDetection:
    def detector(self):
        return BpsAnomalyDetector(drop_factor=4.0, history=8,
                                  min_history=3)

    def test_crash_window_flagged(self):
        _, result = tapped_run(hot_workload(), crash_config(),
                               detector=self.detector())
        assert result.anomalies, "crash run produced no anomalies"
        hits = [a for a in result.anomalies
                if a.overlaps(CRASH_AT, CRASH_AT + CRASH_FOR)]
        assert hits, (
            "no anomaly overlaps the crash window "
            f"[{CRASH_AT}, {CRASH_AT + CRASH_FOR}): "
            f"{[(a.window_start, a.window_end) for a in result.anomalies]}")

    def test_fault_free_twin_flags_nothing(self):
        _, result = tapped_run(hot_workload(), crash_config(fault=False),
                               detector=self.detector())
        assert result.anomalies == ()

    def test_anomaly_events_reach_sinks(self):
        from repro.live import MemorySink
        sink = MemorySink()
        _, result = tapped_run(hot_workload(), crash_config(),
                               detector=self.detector(), sinks=[sink])
        assert len(sink.of_type("anomaly")) == len(result.anomalies)


class TestReplayedTraceRoundTrip:
    def test_jsonl_round_trip_streams_identically(self, tmp_path):
        from repro.trace_io import read_jsonl_trace, write_jsonl_trace
        measurement = run_workload(hot_workload(), crash_config())
        path = tmp_path / "run.jsonl"
        write_jsonl_trace(measurement.trace, path)
        loaded = read_jsonl_trace(path)
        direct = watch_trace(measurement.trace, bins=8)
        round_tripped = watch_trace(loaded, bins=8)
        assert round_tripped.metrics.bps == direct.metrics.bps
        assert round_tripped.metrics.union_io_time == \
            direct.metrics.union_io_time
