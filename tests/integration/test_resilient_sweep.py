"""Resilient execution end-to-end: the PR's acceptance scenarios.

1. Kill a worker mid-sweep (chaos hook) — the sweep completes and its
   analysis is bit-identical to an undisturbed serial run.
2. Interrupt a checkpointed sweep partway, resume it — the final
   analysis is identical and only the incomplete jobs re-run.
3. Tear the journal's trailing line (crash mid-append) — resume still
   works, losing at most the torn entry.
"""

import pytest

from repro.errors import CheckpointError
from repro.exec.checkpoint import CheckpointJournal
from repro.exec.supervisor import SupervisorPolicy, fork_available
from repro.experiments import runner as runner_module
from repro.experiments.runner import (
    ExperimentScale,
    SweepSpec,
    run_sweep,
)
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.iozone import IOzoneWorkload


def make_spec():
    config = SystemConfig(kind="local", jitter_sigma=0.1)
    points = []
    for record in (64 * KiB, 128 * KiB, 256 * KiB):
        def make(_record=record):
            return IOzoneWorkload(file_size=1 * MiB,
                                  record_size=_record)
        points.append((str(record), make, config))
    return SweepSpec(knob="record", points=points)


def metric_tuples(sweep):
    return [
        (m.iops, m.bandwidth, m.arpt, m.bps, m.exec_time,
         m.union_io_time, m.app_ops, m.app_blocks, m.fs_bytes)
        for _label, reps in sweep._points for m in reps
    ]


SCALE = ExperimentScale(repetitions=2)


@pytest.mark.skipif(not fork_available(),
                    reason="needs the fork start method")
class TestChaosSweep:
    def test_sweep_survives_worker_kill_bit_identically(self, monkeypatch):
        serial = run_sweep(make_spec(), SCALE, parallel=False)
        # Kill the worker running job 1 and crash job 4's first attempt.
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "1:exit,4:raise")
        chaotic = run_sweep(make_spec(), SCALE, parallel=True, workers=2)
        assert metric_tuples(chaotic) == metric_tuples(serial)
        assert chaotic.supervision.crashes == 1
        assert chaotic.supervision.job_errors == 1
        assert chaotic.supervision.total_retries == 2


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_identically(self, tmp_path,
                                                   monkeypatch):
        serial = run_sweep(make_spec(), SCALE, parallel=False)
        path = tmp_path / "sweep.ckpt.jsonl"

        # Interrupt the first (serial, checkpointed) run after 3 jobs.
        real_run_job = runner_module._run_job
        calls = {"n": 0}

        def interrupting(spec, job):
            if calls["n"] == 3:
                raise KeyboardInterrupt
            calls["n"] += 1
            return real_run_job(spec, job)

        monkeypatch.setattr(runner_module, "_run_job", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(make_spec(), SCALE, parallel=False,
                      checkpoint=path)
        monkeypatch.setattr(runner_module, "_run_job", real_run_job)

        journal = CheckpointJournal(path)
        assert len(journal) == 3
        assert not journal.finalized
        journal.close()

        # Resume: only the remaining jobs run, result is identical.
        reran = {"n": 0}

        def counting(spec, job):
            reran["n"] += 1
            return real_run_job(spec, job)

        monkeypatch.setattr(runner_module, "_run_job", counting)
        resumed = run_sweep(make_spec(), SCALE, parallel=False,
                            checkpoint=path)
        assert metric_tuples(resumed) == metric_tuples(serial)
        assert reran["n"] == 3 * SCALE.repetitions - 3

        # A second resume of the finalized journal re-runs nothing.
        reran["n"] = 0
        replayed = run_sweep(make_spec(), SCALE, parallel=False,
                             checkpoint=path)
        assert reran["n"] == 0
        assert metric_tuples(replayed) == metric_tuples(serial)

    def test_torn_journal_tail_resumes(self, tmp_path, monkeypatch):
        path = tmp_path / "sweep.ckpt.jsonl"
        run_sweep(make_spec(), SCALE, parallel=False, checkpoint=path)
        serial = run_sweep(make_spec(), SCALE, parallel=False)

        # Drop the final marker and tear the last entry, as a crash
        # mid-append would.
        lines = path.read_text().splitlines()
        assert '"kind": "final"' in lines[-1]
        torn = lines[:-2] + [lines[-2][: len(lines[-2]) // 2]]
        path.write_text("\n".join(torn) + "\n")

        resumed = run_sweep(make_spec(), SCALE, parallel=False,
                            checkpoint=path)
        assert metric_tuples(resumed) == metric_tuples(serial)

    def test_checkpoint_refuses_a_different_sweep(self, tmp_path):
        path = tmp_path / "sweep.ckpt.jsonl"
        run_sweep(make_spec(), SCALE, parallel=False, checkpoint=path)
        other_scale = ExperimentScale(repetitions=3)
        with pytest.raises(CheckpointError, match="different run"):
            run_sweep(make_spec(), other_scale, parallel=False,
                      checkpoint=path)

    @pytest.mark.skipif(not fork_available(),
                        reason="needs the fork start method")
    def test_pooled_checkpointed_chaotic_run_matches_serial(
            self, tmp_path, monkeypatch):
        serial = run_sweep(make_spec(), SCALE, parallel=False)
        monkeypatch.setenv("REPRO_TEST_KILL_JOB", "2:exit")
        path = tmp_path / "sweep.ckpt.jsonl"
        chaotic = run_sweep(make_spec(), SCALE, parallel=True,
                            workers=2, checkpoint=path,
                            policy=SupervisorPolicy(max_retries=2))
        assert metric_tuples(chaotic) == metric_tuples(serial)
        journal = CheckpointJournal(path)
        assert journal.finalized
        assert len(journal) == 3 * SCALE.repetitions
        journal.close()
