"""Integration: the paper's evaluation shapes, end to end.

Each test runs a (scaled-down) experiment sweep and asserts the paper's
*qualitative* result: which metrics keep the Table 1 direction and which
flip.  These are the reproduction's acceptance tests; EXPERIMENTS.md
records the measured values next to the paper's.
"""

import pytest

from repro.experiments.runner import ExperimentScale
from repro.experiments.set1 import run_set1
from repro.experiments.set2 import run_set2
from repro.experiments.set3 import run_set3_ior, run_set3_pure
from repro.experiments.set4 import run_set4

SCALE = ExperimentScale(factor=0.25, repetitions=2)


@pytest.fixture(scope="module")
def set1():
    return run_set1(SCALE)


@pytest.fixture(scope="module")
def set2_hdd():
    return run_set2("hdd", SCALE)


@pytest.fixture(scope="module")
def set2_ssd():
    return run_set2("ssd", SCALE)


@pytest.fixture(scope="module")
def set3_pure():
    return run_set3_pure(SCALE)


@pytest.fixture(scope="module")
def set3_ior():
    # The ARPT flip needs enough per-rank work to leave the startup
    # transient; factor 0.5 is the smallest scale where it shows.
    return run_set3_ior(ExperimentScale(factor=0.5, repetitions=2))


@pytest.fixture(scope="module")
def set4():
    return run_set4(SCALE)


class TestFig4Devices:
    def test_all_metrics_correct_and_strong(self, set1):
        table = set1.correlations()
        for name, result in table.items():
            assert result.direction_correct, f"{name} flipped"
            assert abs(result.cc) > 0.7, f"{name} weak: {result.cc}"

    def test_ssd_beats_hdd(self, set1):
        averaged = {m.label: m for m in set1.averaged()}
        assert averaged["ssd"].exec_time < averaged["hdd"].exec_time

    def test_more_servers_never_slower(self, set1):
        averaged = {m.label: m for m in set1.averaged()}
        pvfs = [averaged[f"pvfs-{n}"].exec_time for n in (1, 2, 4, 8)]
        assert pvfs == sorted(pvfs, reverse=True)


class TestFig5Fig6IOSizes:
    @pytest.mark.parametrize("device", ["hdd", "ssd"])
    def test_iops_and_arpt_flip_bw_bps_hold(self, device, set2_hdd,
                                            set2_ssd):
        sweep = set2_hdd if device == "hdd" else set2_ssd
        table = sweep.correlations()
        assert not table["IOPS"].direction_correct
        assert not table["ARPT"].direction_correct
        assert table["BW"].direction_correct
        assert table["BPS"].direction_correct
        assert table["BW"].normalized > 0.8
        assert table["BPS"].normalized > 0.8

    def test_fig7_iops_and_time_both_fall(self, set2_hdd):
        """Fig. 7: from 4KB to 64KB, IOPS drops while the application
        gets faster — the paper's headline IOPS indictment."""
        iops_series = set2_hdd.series("IOPS")
        time_series = set2_hdd.series("exec_time")
        labels = set2_hdd.labels
        i4k, i64k = labels.index("4.0KiB"), labels.index("64.0KiB")
        assert iops_series[i64k] < iops_series[i4k]
        assert time_series[i64k] < time_series[i4k]

    def test_fig8_arpt_rises_while_time_falls(self, set2_ssd):
        arpt_series = set2_ssd.series("ARPT")
        time_series = set2_ssd.series("exec_time")
        assert arpt_series[-1] > arpt_series[0]
        assert time_series[-1] < time_series[0]


class TestFig9Fig10PureConcurrency:
    def test_throughput_metrics_correct_arpt_flips(self, set3_pure):
        table = set3_pure.correlations()
        for name in ("IOPS", "BW", "BPS"):
            assert table[name].direction_correct
            assert table[name].normalized > 0.7
        assert not table["ARPT"].direction_correct

    def test_fig10_time_collapses_arpt_flat(self, set3_pure):
        times = set3_pure.series("exec_time")
        arpts = set3_pure.series("ARPT")
        assert times[-1] < times[0] / 4  # near-linear scaling to n=8
        spread = max(arpts) / min(arpts)
        assert spread < 1.5  # ARPT barely moves


class TestFig11IOR:
    def test_throughput_metrics_correct_arpt_flips(self, set3_ior):
        table = set3_ior.correlations()
        for name in ("IOPS", "BW", "BPS"):
            assert table[name].direction_correct
            assert table[name].normalized > 0.6
        assert not table["ARPT"].direction_correct

    def test_concurrency_helps_overall(self, set3_ior):
        times = set3_ior.series("exec_time")
        assert times[-1] < times[0]


class TestFig12DataSieving:
    def test_bw_flips_others_hold(self, set4):
        table = set4.correlations()
        assert not table["BW"].direction_correct, \
            "bandwidth should be misled by sieved holes"
        for name in ("IOPS", "ARPT", "BPS"):
            assert table[name].direction_correct, f"{name} flipped"
            assert table[name].normalized > 0.7

    def test_amplification_grows_with_spacing(self, set4):
        averaged = set4.averaged()
        amplifications = [m.fs_amplification for m in averaged]
        assert amplifications[-1] > amplifications[0] * 3

    def test_app_bytes_constant_across_sweep(self, set4):
        app_bytes = {m.app_bytes for m in set4.averaged()}
        assert len(app_bytes) == 1


class TestHeadline:
    def test_bps_correct_in_every_sweep(self, set1, set2_hdd, set2_ssd,
                                        set3_pure, set3_ior, set4):
        """Section IV.C.5: BPS is the only metric that works in all
        scenarios."""
        sweeps = [set1, set2_hdd, set2_ssd, set3_pure, set3_ior, set4]
        flips = {name: 0 for name in ("IOPS", "BW", "ARPT", "BPS")}
        for sweep in sweeps:
            for name, result in sweep.correlations().items():
                if not result.direction_correct:
                    flips[name] += 1
        assert flips["BPS"] == 0
        for name in ("IOPS", "BW", "ARPT"):
            assert flips[name] > 0, f"{name} never flipped — sweep too easy"
