"""Cross-backend identity: one sweep, any executor, the same bits.

The backend contract (DESIGN.md §14) says a sweep's analysis is a pure
function of (spec, scale) — never of where the cells ran.  These tests
drive the same Set 1 smoke grid through the fork pool, the in-process
async backend, and the socket dispatcher (real ``bps grid-worker``
subprocesses), including an interrupted run resumed on a *different*
backend than it started on, and require bit-identical output each time.
"""

import os
import subprocess
import sys

import pytest

from repro.exec.checkpoint import CheckpointJournal
from repro.exec.supervisor import fork_available
from repro.experiments.runner import ExperimentScale
from repro.experiments.set1 import run_set1

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

SCALE = ExperimentScale(factor=0.25, repetitions=2)


def metric_tuples(sweep):
    return [
        (m.iops, m.bandwidth, m.arpt, m.bps, m.exec_time,
         m.union_io_time, m.app_ops, m.app_blocks, m.fs_bytes)
        for _label, reps in sweep._points for m in reps
    ]


@pytest.fixture(scope="module")
def serial_sweep():
    return run_set1(SCALE, parallel=False)


@pytest.fixture
def grid_worker():
    procs = []

    def spawn(*extra_args):
        env = dict(os.environ,
                   PYTHONPATH=os.path.abspath(REPO_SRC))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "grid-worker",
             "--listen", "127.0.0.1:0", *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        procs.append(proc)
        banner = proc.stdout.readline().strip()
        assert "grid-worker listening on" in banner, banner
        return banner.rsplit(" ", 1)[-1]

    yield spawn
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


class TestBackendIdentity:
    def test_async_matches_serial(self, serial_sweep):
        asy = run_set1(SCALE, backend="async")
        assert metric_tuples(asy) == metric_tuples(serial_sweep)
        assert asy.supervision.backend == "async"

    @pytest.mark.skipif(not fork_available(),
                        reason="needs the fork start method")
    def test_fork_matches_serial(self, serial_sweep):
        fork = run_set1(SCALE, backend="fork", parallel=True, workers=2)
        assert metric_tuples(fork) == metric_tuples(serial_sweep)

    def test_socket_matches_serial(self, serial_sweep, grid_worker):
        addrs = f"{grid_worker()},{grid_worker()}"
        sock = run_set1(SCALE, backend="socket", grid_workers=addrs)
        assert metric_tuples(sock) == metric_tuples(serial_sweep)
        assert sock.supervision.backend == "socket"

    def test_socket_with_worker_death_matches_serial(
            self, serial_sweep, grid_worker):
        # One worker exits mid-sweep; its in-flight cell re-queues.
        addrs = f"{grid_worker('--exit-after-jobs', '2')},{grid_worker()}"
        sock = run_set1(SCALE, backend="socket", grid_workers=addrs)
        assert metric_tuples(sock) == metric_tuples(serial_sweep)

    def test_env_var_selects_backend(self, serial_sweep, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "async")
        asy = run_set1(SCALE)
        assert asy.supervision.backend == "async"
        assert metric_tuples(asy) == metric_tuples(serial_sweep)


@pytest.mark.skipif(not fork_available(),
                    reason="needs the fork start method")
class TestCrossBackendResume:
    def _interrupted_fork_journal(self, tmp_path, keep: int):
        """A checkpoint journal from a fork run cut off after ``keep``
        completed cells — the on-disk state of an interrupted sweep."""
        path = tmp_path / "sweep.ckpt.jsonl"
        run_set1(SCALE, backend="fork", parallel=True, workers=2,
                 checkpoint=path)
        lines = path.read_text().splitlines()
        header, entries = lines[0], [l for l in lines[1:]
                                     if '"kind": "entry"' in l]
        assert len(entries) == 6 * SCALE.repetitions
        path.write_text("\n".join([header] + entries[:keep]) + "\n")
        return path

    def test_fork_interrupt_resume_on_async(self, tmp_path, serial_sweep):
        path = self._interrupted_fork_journal(tmp_path, keep=5)
        resumed = run_set1(SCALE, backend="async", checkpoint=path)
        assert metric_tuples(resumed) == metric_tuples(serial_sweep)
        # Only the journal's missing cells re-ran.
        assert resumed.supervision.jobs == 6 * SCALE.repetitions - 5
        journal = CheckpointJournal(path)
        assert journal.finalized
        journal.close()

    def test_fork_interrupt_resume_on_socket(self, tmp_path, serial_sweep,
                                             grid_worker):
        path = self._interrupted_fork_journal(tmp_path, keep=5)
        addrs = f"{grid_worker()},{grid_worker()}"
        resumed = run_set1(SCALE, backend="socket", grid_workers=addrs,
                           checkpoint=path)
        assert metric_tuples(resumed) == metric_tuples(serial_sweep)
        assert resumed.supervision.jobs == 6 * SCALE.repetitions - 5
        journal = CheckpointJournal(path)
        assert journal.finalized
        journal.close()
