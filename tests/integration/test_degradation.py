"""Graceful degradation end-to-end: faulted runs finish, reproducibly.

The robustness acceptance criteria in one place: a crash window against
one PVFS server with failover enabled completes the workload with the
recovery traffic visible; fixed-seed faulted runs are bit-identical
(serial or parallel); and the set-6 fault sweep shows BPS correlating
with execution time more strongly than bandwidth and IOPS.
"""

import pytest

from repro.experiments.runner import ExperimentScale, run_sweep
from repro.experiments.set6 import (
    build_sweep,
    compare_policies,
    fault_plan,
    point_config,
    run_set6,
)
from repro.faults.plan import SERVER_CRASH, FaultEvent, FaultPlan
from repro.middleware.retry import RetryPolicy
from repro.system import SystemConfig
from repro.workloads.hotspot import HotSpotWorkload
from repro.workloads.base import run_workload


def crash_config(**overrides) -> SystemConfig:
    """A 3-server PVFS whose server0 crashes mid-run."""
    plan = FaultPlan((FaultEvent(kind=SERVER_CRASH, target="server0",
                                 at=0.02, duration=0.1),))
    settings = dict(
        kind="pfs", n_servers=3, device_spec="sata-hdd-7200",
        replication=2, fault_plan=plan, seed=20130520,
        retry_policy=RetryPolicy(max_retries=4, backoff_base_s=0.001,
                                 failover=True),
    )
    settings.update(overrides)
    return SystemConfig(**settings)


def record_tuples(trace):
    return [(r.pid, r.op, r.file, r.offset, r.nbytes, r.start, r.end,
             r.success, r.retries) for r in trace]


class TestCrashFailover:
    def workload(self):
        return HotSpotWorkload(ops_per_proc=24, nproc=2, hot_server=0)

    def test_crashed_server_with_failover_completes(self):
        measurement = run_workload(self.workload(), crash_config())
        # Every op completed: nothing gave up, every record successful.
        assert measurement.extras["retry"]["giveups"] == 0
        assert all(r.success for r in measurement.trace)
        # The crash actually happened and the replica absorbed it.
        servers = {s["name"]: s for s in measurement.extras["servers"]}
        assert servers["server0"]["crashes"] == 1
        assert servers["server0"]["requests_failed"] > 0
        assert measurement.extras["pfs_failovers"] > 0

    def test_recovery_traffic_visible_in_trace_totals(self):
        faulted = run_workload(self.workload(), crash_config())
        healthy = run_workload(self.workload(),
                               crash_config(fault_plan=None))
        # Failover redirections cost extra wire exchanges, so the same
        # demand takes longer under the crash...
        assert faulted.exec_time > healthy.exec_time
        # ...while the application's demand (ops, bytes) is unchanged.
        assert len(faulted.trace) == len(healthy.trace)
        metrics = faulted.metrics()
        assert metrics.bps < healthy.metrics().bps

    def test_without_recovery_ops_fail_but_run_survives(self):
        config = crash_config(retry_policy=None, replication=1)
        measurement = run_workload(self.workload(), config)
        failed = [r for r in measurement.trace if not r.success]
        assert failed, "crash window produced no failed accesses"
        # Failed accesses still count toward B (paper section III.A).
        assert measurement.metrics().app_blocks > 0

    def test_retries_column_records_attempt_indices(self):
        config = crash_config(replication=1, retry_policy=RetryPolicy(
            max_retries=4, backoff_base_s=0.001, failover=False))
        measurement = run_workload(self.workload(), config)
        assert measurement.trace.total_retries() > 0
        retried = [r for r in measurement.trace if r.retries > 0]
        assert retried
        # Attempt indices are dense per retried op: a record with
        # retries=k implies sibling records with 0..k-1 at that offset.
        sample = retried[0]
        siblings = [r.retries for r in measurement.trace
                    if (r.pid, r.file, r.offset) ==
                    (sample.pid, sample.file, sample.offset)]
        assert set(range(sample.retries + 1)) <= set(siblings)


class TestFaultedDeterminism:
    def test_fixed_seed_faulted_runs_bit_identical(self):
        first = run_workload(HotSpotWorkload(ops_per_proc=16, nproc=2),
                             crash_config())
        second = run_workload(HotSpotWorkload(ops_per_proc=16, nproc=2),
                              crash_config())
        assert first.exec_time == second.exec_time
        assert first.fs_bytes == second.fs_bytes
        assert record_tuples(first.trace) == record_tuples(second.trace)
        assert first.extras["retry"] == second.extras["retry"]

    def test_fault_plumbing_leaves_healthy_rng_untouched(self):
        # A faulted config and its fault-free twin must draw identical
        # device/workload streams: fault streams spawn after the build.
        workload = HotSpotWorkload(ops_per_proc=16, nproc=2)
        healthy = run_workload(workload, crash_config(
            fault_plan=None, retry_policy=None, replication=1))
        baseline = run_workload(
            HotSpotWorkload(ops_per_proc=16, nproc=2),
            SystemConfig(kind="pfs", n_servers=3,
                         device_spec="sata-hdd-7200", seed=20130520))
        assert healthy.exec_time == baseline.exec_time
        assert record_tuples(healthy.trace) == \
            record_tuples(baseline.trace)

    def test_faulted_sweep_serial_matches_parallel(self):
        scale = ExperimentScale(factor=0.25, repetitions=2)
        spec = build_sweep(scale)
        serial = run_sweep(spec, scale, parallel=False)
        parallel = run_sweep(spec, scale, workers=2, parallel=True)
        for ser, par in zip(serial.averaged(), parallel.averaged()):
            assert ser.bps == par.bps
            assert ser.exec_time == par.exec_time
            assert ser.bandwidth == par.bandwidth


class TestSet6Regime:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_set6(smoke=True)

    def test_execution_time_degrades_with_severity(self, sweep):
        times = [m.exec_time for m in sweep.averaged()]
        assert times[-1] > 2 * times[0]

    def test_bps_outcorrelates_bandwidth_and_iops(self, sweep):
        table = sweep.correlations()
        assert abs(table["BPS"].cc) > abs(table["BW"].cc)
        assert abs(table["BPS"].cc) > abs(table["IOPS"].cc)
        assert table["BPS"].direction_correct

    def test_attempt_inflation_is_the_iops_corruptor(self, sweep):
        ops = [m.app_ops for m in sweep.averaged()]
        assert ops[-1] > 1.5 * ops[0]

    def test_fault_plan_covers_multiple_layers(self):
        plan = fault_plan(1.0)
        kinds = {event.kind for event in plan}
        assert len(kinds) >= 4
        assert SERVER_CRASH in kinds

    def test_point_config_healthy_at_zero_severity(self):
        config = point_config(0.0)
        assert config.fault_plan is None
        assert config.fault_probability == 0.0


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return compare_policies(ExperimentScale(factor=0.25,
                                                repetitions=2))

    def test_covers_the_policy_ladder(self, rows):
        assert set(rows) == {"no-retry", "retry", "retry+failover"}

    def test_recovery_reduces_giveups(self, rows):
        assert rows["no-retry"]["giveups"] > rows["retry"]["giveups"] \
            >= rows["retry+failover"]["giveups"] == 0

    def test_failover_redirects_instead_of_retrying(self, rows):
        assert rows["retry+failover"]["failovers"] > 0
        assert rows["retry+failover"]["retries"] < rows["retry"]["retries"]
