"""Multi-application I/O systems (paper §III.B: "If the I/O system
services more than one application concurrently, we record the I/O
access information of all the applications").

The global BPS must reflect the whole system, while per-application
views remain recoverable from the same trace.
"""

import pytest

from repro.core.intervals import union_time
from repro.core.metrics import compute_metrics
from repro.core.timeline import overlap_matrix
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads import (
    CompositeWorkload,
    IORWorkload,
    IOzoneWorkload,
    RandomAccessWorkload,
)

PFS = SystemConfig(kind="pfs", n_servers=4)


@pytest.fixture(scope="module")
def mixed_run():
    composite = CompositeWorkload(members=[
        IORWorkload(file_size=8 * MiB, transfer_size=256 * KiB, nproc=2),
        RandomAccessWorkload(file_size=8 * MiB, io_size=4 * KiB,
                             ops_per_proc=64, nproc=2),
    ])
    return composite, composite.run(PFS)


class TestGlobalView:
    def test_global_b_is_sum_of_members(self, mixed_run):
        composite, measurement = mixed_run
        total = measurement.trace.total_blocks()
        parts = sum(
            composite.member_trace(measurement.trace, i).total_blocks()
            for i in range(2))
        assert total == parts

    def test_global_t_collapses_cross_app_overlap(self, mixed_run):
        composite, measurement = mixed_run
        global_t = union_time(measurement.trace.intervals())
        member_ts = [
            union_time(composite.member_trace(measurement.trace,
                                              i).intervals())
            for i in range(2)
        ]
        # Both apps ran concurrently: the union is less than the sum.
        assert global_t < sum(member_ts)
        assert global_t >= max(member_ts) - 1e-12

    def test_apps_actually_overlapped(self, mixed_run):
        _composite, measurement = mixed_run
        pids, matrix = overlap_matrix(measurement.trace)
        ior_pids = [p for p in pids if p < 1000]
        random_pids = [p for p in pids if p >= 1000]
        cross = sum(matrix[pids.index(a), pids.index(b)]
                    for a in ior_pids for b in random_pids)
        assert cross > 0

    def test_global_metrics_computable(self, mixed_run):
        _composite, measurement = mixed_run
        metrics = measurement.metrics()
        assert metrics.bps > 0
        assert metrics.app_ops == len(measurement.trace)


class TestPerApplicationView:
    def test_member_metrics_differ_by_design(self, mixed_run):
        composite, measurement = mixed_run
        ior = compute_metrics(
            composite.member_trace(measurement.trace, 0),
            exec_time=measurement.exec_time)
        random_app = compute_metrics(
            composite.member_trace(measurement.trace, 1),
            exec_time=measurement.exec_time)
        # Big sequential transfers vs tiny random ones.
        assert ior.bps > random_app.bps
        assert ior.app_bytes > random_app.app_bytes

    def test_interference_visible_in_member_latency(self):
        solo = IOzoneWorkload(file_size=4 * MiB,
                              record_size=64 * KiB).run(PFS)
        noisy = CompositeWorkload(members=[
            IOzoneWorkload(file_size=4 * MiB, record_size=64 * KiB),
            IORWorkload(file_size=8 * MiB, transfer_size=256 * KiB,
                        nproc=4),
        ])
        shared = noisy.run(PFS)
        victim = noisy.member_trace(shared.trace, 0)
        solo_arpt = solo.trace.response_times().mean()
        noisy_arpt = victim.response_times().mean()
        assert noisy_arpt > solo_arpt  # the bandwidth hog hurt it
