"""Network links: serialization, queueing, stats."""

import pytest

from repro.errors import SimulationError
from repro.net.link import NetworkLink, NICPair
from repro.util.units import MiB


class TestNetworkLink:
    def test_transfer_time_is_latency_plus_serialization(self, engine):
        link = NetworkLink(engine, bandwidth=1 * MiB, latency_s=0.001)
        done = link.transmit(512 * 1024)
        engine.run()
        assert engine.now == pytest.approx(0.5 + 0.001)
        assert done.result() == 512 * 1024

    def test_messages_serialize_on_the_wire(self, engine):
        link = NetworkLink(engine, bandwidth=1 * MiB, latency_s=0.0)
        link.transmit(512 * 1024)
        link.transmit(512 * 1024)
        engine.run()
        assert engine.now == pytest.approx(1.0)

    def test_propagation_pipelines_after_wire(self, engine):
        # Second message starts serializing while the first propagates.
        link = NetworkLink(engine, bandwidth=1 * MiB, latency_s=0.5)
        first = link.transmit(512 * 1024)
        second = link.transmit(512 * 1024)
        engine.run()
        assert engine.now == pytest.approx(0.5 + 0.5 + 0.5)

    def test_stats(self, engine):
        link = NetworkLink(engine, bandwidth=1 * MiB)
        link.transmit(1024)
        link.transmit(2048)
        engine.run()
        assert link.stats.messages == 2
        assert link.stats.bytes_moved == 3072

    def test_bad_construction_rejected(self, engine):
        with pytest.raises(SimulationError):
            NetworkLink(engine, bandwidth=0)
        with pytest.raises(SimulationError):
            NetworkLink(engine, latency_s=-1)

    def test_bad_size_rejected(self, engine):
        link = NetworkLink(engine)
        with pytest.raises(SimulationError):
            link.serialization_time(0)


class TestNICPair:
    def test_duplex_directions_independent(self, engine):
        nic = NICPair(engine, bandwidth=1 * MiB, latency_s=0.0)
        nic.tx.transmit(512 * 1024)
        nic.rx.transmit(512 * 1024)
        engine.run()
        # Full duplex: both finish in the time of one.
        assert engine.now == pytest.approx(0.5)

    def test_bytes_moved_sums_directions(self, engine):
        nic = NICPair(engine)
        nic.tx.transmit(100)
        nic.rx.transmit(200)
        engine.run()
        assert nic.bytes_moved == 300
