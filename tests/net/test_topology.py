"""Star topology: sends, contention, loopback, cut-through."""

import pytest

from repro.errors import SimulationError
from repro.net.topology import StarTopology
from repro.util.units import MiB


@pytest.fixture
def net(engine):
    topology = StarTopology(engine, bandwidth=1 * MiB, latency_s=0.001)
    for name in ("a", "b", "c"):
        topology.add_node(name)
    return topology


class TestBasics:
    def test_send_delivers(self, engine, net):
        done = net.send("a", "b", 512 * 1024)
        engine.run()
        assert done.result() == 512 * 1024
        assert engine.now == pytest.approx(0.5 + 0.001)

    def test_loopback_is_free(self, engine, net):
        net.send("a", "a", 10 * MiB)
        engine.run()
        assert engine.now == 0.0

    def test_duplicate_node_rejected(self, engine, net):
        with pytest.raises(SimulationError):
            net.add_node("a")

    def test_unknown_node_rejected(self, engine, net):
        with pytest.raises(SimulationError):
            net.send("a", "ghost", 100)

    def test_zero_bytes_rejected(self, engine, net):
        with pytest.raises(SimulationError):
            net.send("a", "b", 0)

    def test_counters(self, engine, net):
        net.send("a", "b", 100)
        net.send("b", "c", 200)
        engine.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 300

    def test_node_names(self, net):
        assert net.node_names == ["a", "b", "c"]


class TestContention:
    def test_two_senders_one_receiver_serialize(self, engine, net):
        net.send("a", "c", 512 * 1024)
        net.send("b", "c", 512 * 1024)
        engine.run()
        # Both transfers contend on c's RX wire.
        assert engine.now == pytest.approx(1.0 + 0.001, rel=0.01)

    def test_disjoint_pairs_proceed_in_parallel(self, engine, net):
        net.add_node("d")
        net.send("a", "b", 512 * 1024)
        net.send("c", "d", 512 * 1024)
        engine.run()
        assert engine.now == pytest.approx(0.5 + 0.001, rel=0.01)

    def test_fast_receiver_not_blocked_by_slow_sender(self, engine):
        # Cut-through: a 10x faster receiver's RX wire is busy only for
        # its own serialization time, so two slow senders can feed it
        # concurrently.
        topology = StarTopology(engine, bandwidth=1 * MiB, latency_s=0.0)
        topology.add_node("slow1")
        topology.add_node("slow2")
        topology.add_node("fast", bandwidth=10 * MiB)
        topology.send("slow1", "fast", 512 * 1024)
        topology.send("slow2", "fast", 512 * 1024)
        engine.run()
        assert engine.now == pytest.approx(0.5, rel=0.15)

    def test_bidirectional_exchange_full_duplex(self, engine, net):
        net.send("a", "b", 512 * 1024)
        net.send("b", "a", 512 * 1024)
        engine.run()
        assert engine.now == pytest.approx(0.5 + 0.001, rel=0.01)


class TestOversubscription:
    def make_oversubscribed(self, engine, n_pairs, backplane):
        topology = StarTopology(engine, bandwidth=100 * MiB,
                                latency_s=0.0,
                                backplane_bandwidth=backplane)
        for i in range(n_pairs):
            topology.add_node(f"src{i}")
            topology.add_node(f"dst{i}")
        return topology

    def test_aggregate_capped_by_backplane(self, engine):
        # 4 disjoint pairs, each NIC 100 MiB/s, backplane only 100 MiB/s:
        # moving 4 x 32MiB takes ~ (128 MiB / 100 MiB/s), not ~0.32s.
        topology = self.make_oversubscribed(engine, 4,
                                            backplane=100 * MiB)
        for i in range(4):
            topology.send(f"src{i}", f"dst{i}", 32 * MiB)
        engine.run()
        assert engine.now >= 128 / 100 * 0.9

    def test_nonblocking_without_backplane(self, engine):
        topology = self.make_oversubscribed(engine, 4, backplane=None)
        for i in range(4):
            topology.send(f"src{i}", f"dst{i}", 32 * MiB)
        engine.run()
        assert engine.now == pytest.approx(32 / 100, rel=0.05)

    def test_single_flow_unaffected_by_big_backplane(self, engine):
        topology = self.make_oversubscribed(engine, 1,
                                            backplane=1000 * MiB)
        topology.send("src0", "dst0", 32 * MiB)
        engine.run()
        assert engine.now == pytest.approx(32 / 100, rel=0.05)

    def test_bad_backplane_rejected(self, engine):
        with pytest.raises(SimulationError):
            StarTopology(engine, backplane_bandwidth=0)

    def test_loopback_skips_backplane(self, engine):
        topology = self.make_oversubscribed(engine, 1,
                                            backplane=1 * MiB)
        topology.send("src0", "src0", 512 * MiB)
        engine.run()
        assert engine.now == 0.0
