"""Trace recorder: app records, fs byte accounting, gather."""

import pytest

from repro.errors import MiddlewareError
from repro.middleware.tracing import TraceRecorder


class TestAppRecords:
    def test_record_app(self, engine):
        recorder = TraceRecorder(engine)
        record = recorder.record_app(3, "read", "f", 0, 4096, 1.0, 2.0)
        assert record.pid == 3
        assert record.layer == "app"
        assert len(recorder.trace) == 1

    def test_failed_access_recorded(self, engine):
        recorder = TraceRecorder(engine)
        recorder.record_app(0, "read", "f", 0, 4096, 0.0, 1.0,
                            success=False)
        assert not recorder.trace[0].success
        # Still contributes blocks to B (paper section III.A).
        assert recorder.app_trace.total_blocks() == 8

    def test_closed_recorder_rejects(self, engine):
        recorder = TraceRecorder(engine)
        recorder.close()
        with pytest.raises(MiddlewareError):
            recorder.record_app(0, "read", "f", 0, 1, 0.0, 1.0)


class TestFsBytes:
    def test_accumulates(self, engine):
        recorder = TraceRecorder(engine)
        recorder.note_fs_bytes(100)
        recorder.note_fs_bytes(200)
        assert recorder.fs_bytes_moved == 300

    def test_negative_rejected(self, engine):
        recorder = TraceRecorder(engine)
        with pytest.raises(MiddlewareError):
            recorder.note_fs_bytes(-1)

    def test_fs_records_optional(self, engine):
        recorder = TraceRecorder(engine, keep_fs_records=True)
        recorder.record_app(0, "read", "f", 0, 100, 0.0, 1.0)
        recorder.note_fs_bytes(4096, pid=0, start=0.0, end=1.0)
        assert len(recorder.trace) == 2
        assert len(recorder.app_trace) == 1

    def test_fs_records_off_by_default(self, engine):
        recorder = TraceRecorder(engine)
        recorder.note_fs_bytes(4096)
        assert len(recorder.trace) == 0


class TestGather:
    def test_merge_from(self, engine):
        main = TraceRecorder(engine)
        worker = TraceRecorder(engine)
        worker.record_app(1, "read", "f", 0, 100, 0.0, 1.0)
        worker.note_fs_bytes(4096)
        main.merge_from(worker)
        assert len(main.trace) == 1
        assert main.fs_bytes_moved == 4096
