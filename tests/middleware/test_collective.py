"""Two-phase planning: domain tiling invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MiddlewareError
from repro.middleware.collective import (
    FileDomain,
    domain_for_offset,
    two_phase_plan,
)


class TestPlan:
    def test_single_rank_single_aggregator(self):
        domains = two_phase_plan({0: (100, 50)}, 1)
        assert domains == [FileDomain(0, 100, 50)]

    def test_even_split(self):
        domains = two_phase_plan({0: (0, 100), 1: (100, 100)}, 2)
        assert domains == [FileDomain(0, 0, 100), FileDomain(1, 100, 100)]

    def test_covers_holes_between_requests(self):
        # Rank requests with a gap: ROMIO reads the covering extent.
        domains = two_phase_plan({0: (0, 10), 1: (90, 10)}, 1)
        assert domains == [FileDomain(0, 0, 100)]

    def test_never_more_domains_than_bytes(self):
        domains = two_phase_plan({0: (0, 3)}, 10)
        assert len(domains) == 3

    def test_empty_requests_rejected(self):
        with pytest.raises(MiddlewareError):
            two_phase_plan({}, 2)

    def test_bad_cb_nodes_rejected(self):
        with pytest.raises(MiddlewareError):
            two_phase_plan({0: (0, 10)}, 0)

    def test_bad_request_rejected(self):
        with pytest.raises(MiddlewareError):
            two_phase_plan({0: (-5, 10)}, 1)
        with pytest.raises(MiddlewareError):
            two_phase_plan({0: (0, 0)}, 1)


class TestDomainLookup:
    def test_finds_containing_domain(self):
        domains = two_phase_plan({0: (0, 100), 1: (100, 100)}, 2)
        assert domain_for_offset(domains, 0).aggregator == 0
        assert domain_for_offset(domains, 150).aggregator == 1

    def test_outside_raises(self):
        domains = two_phase_plan({0: (0, 100)}, 1)
        with pytest.raises(MiddlewareError):
            domain_for_offset(domains, 100)


requests_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=31),
    st.tuples(st.integers(min_value=0, max_value=100000),
              st.integers(min_value=1, max_value=5000)),
    min_size=1, max_size=32,
)


class TestPlanProperties:
    @given(requests_strategy, st.integers(min_value=1, max_value=16))
    def test_tiling_invariants(self, requests, cb_nodes):
        domains = two_phase_plan(requests, cb_nodes)
        start = min(off for off, _n in requests.values())
        end = max(off + n for off, n in requests.values())

        # Contiguous ascending tiling of [start, end).
        assert domains[0].offset == start
        assert domains[-1].end == end
        for a, b in zip(domains, domains[1:]):
            assert a.end == b.offset

        # Balance: sizes differ by at most one.
        sizes = [d.nbytes for d in domains]
        assert max(sizes) - min(sizes) <= 1

        # Aggregator ids are 0..k-1.
        assert [d.aggregator for d in domains] == list(range(len(domains)))

        # Every requested byte falls in exactly one domain.
        for offset, nbytes in requests.values():
            first = domain_for_offset(domains, offset)
            last = domain_for_offset(domains, offset + nbytes - 1)
            assert first.offset <= offset
            assert last.end >= offset + nbytes
