"""Sequential prefetcher: hits, frontier, waste accounting."""

import pytest

from repro.devices.ramdisk import RamDisk
from repro.fs.localfs import LocalFileSystem
from repro.middleware.posix import PosixIO
from repro.middleware.prefetch import PrefetchConfig, SequentialPrefetcher
from repro.middleware.tracing import TraceRecorder
from repro.errors import MiddlewareError
from repro.util.units import KiB, MiB


@pytest.fixture
def stack(engine):
    device = RamDisk(engine, capacity_bytes=64 * MiB)
    fs = LocalFileSystem(engine, device, page_cache=None)
    fs.create("data", 8 * MiB)
    recorder = TraceRecorder(engine)
    lib = PosixIO(engine, fs, recorder)
    return lib, recorder


def sequential_scan(engine, reader, total, step):
    def proc(eng):
        offset = 0
        while offset < total:
            yield reader.pread(offset, step)
            offset += step
    process = engine.spawn(proc(engine))
    engine.run()
    process.result()


class TestPrefetching:
    def test_sequential_scan_triggers_prefetches(self, engine, stack):
        lib, _recorder = stack
        prefetcher = SequentialPrefetcher(lib.open("data", 0))
        sequential_scan(engine, prefetcher, 4 * MiB, 256 * KiB)
        assert prefetcher.stats_prefetches > 0
        assert prefetcher.stats_buffered_hits > 0

    def test_no_refetch_of_buffered_data(self, engine, stack):
        lib, recorder = stack
        prefetcher = SequentialPrefetcher(lib.open("data", 0))
        sequential_scan(engine, prefetcher, 4 * MiB, 256 * KiB)
        # fs traffic is bounded by the consumed data plus the read-ahead
        # overshoot at end of scan (at most two windows ahead).
        assert recorder.fs_bytes_moved <= 4 * MiB + \
            2 * prefetcher.config.window_bytes
        assert prefetcher.stats_wasted_bytes == 0

    def test_random_access_never_prefetches(self, engine, stack):
        lib, _recorder = stack
        prefetcher = SequentialPrefetcher(lib.open("data", 0))

        def proc(eng):
            for offset in (0, 2 * MiB, 1 * MiB, 3 * MiB):
                yield prefetcher.pread(offset, 64 * KiB)
        process = engine.spawn(proc(engine))
        engine.run()
        process.result()
        assert prefetcher.stats_prefetches == 0

    def test_buffered_hits_are_traced_as_app_records(self, engine, stack):
        lib, recorder = stack
        prefetcher = SequentialPrefetcher(lib.open("data", 0))
        sequential_scan(engine, prefetcher, 2 * MiB, 256 * KiB)
        assert len(recorder.app_trace) == 8  # every pread traced

    def test_buffered_hits_are_fast(self, engine, stack):
        lib, _recorder = stack
        prefetcher = SequentialPrefetcher(lib.open("data", 0))
        sequential_scan(engine, prefetcher, 4 * MiB, 256 * KiB)
        records = _recorder = None  # silence linter
        # compare a late (buffered) read's latency to the first (cold)
        trace = lib.recorder.app_trace
        cold = trace[0].duration
        warm = min(r.duration for r in trace)
        assert warm < cold

    def test_write_invalidates_buffer(self, engine, stack):
        lib, _recorder = stack
        prefetcher = SequentialPrefetcher(lib.open("data", 0))

        def proc(eng):
            yield prefetcher.pread(0, 256 * KiB)
            yield prefetcher.pread(256 * KiB, 256 * KiB)  # arms prefetch
            yield prefetcher.pread(512 * KiB, 256 * KiB)
            yield prefetcher.pwrite(0, 4 * KiB)           # invalidates
            assert prefetcher._buffered is None
        process = engine.spawn(proc(engine))
        engine.run()
        process.result()

    def test_abandoned_prefetch_counts_as_waste(self, engine, stack):
        lib, _recorder = stack
        prefetcher = SequentialPrefetcher(
            lib.open("data", 0),
            PrefetchConfig(window_bytes=1 * MiB, trigger_after=1))

        def proc(eng):
            yield prefetcher.pread(0, 64 * KiB)   # arms prefetch
            # wait for the prefetch to land, then jump far away
            yield eng.timeout(1.0)
            yield prefetcher.pread(4 * MiB, 64 * KiB)
        process = engine.spawn(proc(engine))
        engine.run()
        process.result()
        assert prefetcher.stats_wasted_bytes > 0

    def test_config_validation(self):
        with pytest.raises(MiddlewareError):
            PrefetchConfig(window_bytes=0)
        with pytest.raises(MiddlewareError):
            PrefetchConfig(trigger_after=0)
        with pytest.raises(MiddlewareError):
            PrefetchConfig(memcpy_rate=0)
