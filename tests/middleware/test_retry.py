"""Retry policy: backoff schedules, timeout races, giveups — exact times."""

from dataclasses import dataclass

import pytest

from repro.errors import MiddlewareError
from repro.middleware.retry import (
    AttemptOutcome,
    RetryPolicy,
    RetryStats,
    execute_attempts,
)
from repro.util.rng import RngStream


@dataclass
class FakeResult:
    success: bool = True


def failing_issuer(engine, fail_times, attempt_cost_s=0.01):
    """issue() that fails the first ``fail_times`` attempts."""
    count = {"n": 0}

    def issue():
        count["n"] += 1
        ok = count["n"] > fail_times
        return engine.timeout(attempt_cost_s, FakeResult(success=ok))
    return issue


def drive(engine, issue, policy, **kwargs):
    holder = {}

    def proc():
        holder["outcomes"] = yield from execute_attempts(
            engine, issue, policy, **kwargs)
    process = engine.spawn(proc(), name="retry-driver")
    engine.run()
    process.result()
    return holder["outcomes"]


class TestRetryPolicyValidation:
    def test_rejects_negative_retries(self):
        with pytest.raises(MiddlewareError):
            RetryPolicy(max_retries=-1)

    def test_rejects_backoff_factor_below_one(self):
        with pytest.raises(MiddlewareError):
            RetryPolicy(backoff_factor=0.5)

    def test_rejects_jitter_of_one(self):
        with pytest.raises(MiddlewareError):
            RetryPolicy(backoff_jitter=1.0)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(MiddlewareError):
            RetryPolicy(timeout_s=0.0)

    def test_backoff_delay_schedule(self):
        policy = RetryPolicy(backoff_base_s=0.002, backoff_factor=2.0)
        assert [policy.backoff_delay(k) for k in range(4)] == \
            pytest.approx([0.002, 0.004, 0.008, 0.016])

    def test_jittered_backoff_needs_rng(self):
        policy = RetryPolicy(backoff_jitter=0.5)
        with pytest.raises(MiddlewareError, match="RngStream"):
            policy.backoff_delay(0)

    def test_jittered_backoff_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.01, backoff_factor=1.0,
                             backoff_jitter=0.5)
        rng = RngStream.from_seed(3)
        delays = [policy.backoff_delay(0, rng) for _ in range(64)]
        assert all(0.01 <= d < 0.015 for d in delays)
        assert len(set(delays)) > 1


class TestExecuteAttempts:
    def test_success_first_try_single_outcome(self, engine):
        policy = RetryPolicy(max_retries=3)
        stats = RetryStats()
        outcomes = drive(engine, failing_issuer(engine, 0), policy,
                         stats=stats)
        assert len(outcomes) == 1
        assert outcomes[0].success
        assert stats.as_dict() == {"attempts": 1, "retries": 0,
                                   "timeouts": 0, "giveups": 0}

    def test_backoff_schedule_exact_timestamps(self, engine):
        # attempt 0: [0, 0.01]; backoff 0.002 -> attempt 1: [0.012, 0.022];
        # backoff 0.004 -> attempt 2: [0.026, 0.036] succeeds.
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.002,
                             backoff_factor=2.0)
        outcomes = drive(engine, failing_issuer(engine, 2), policy)
        assert [(o.start, o.end) for o in outcomes] == [
            (pytest.approx(0.0), pytest.approx(0.010)),
            (pytest.approx(0.012), pytest.approx(0.022)),
            (pytest.approx(0.026), pytest.approx(0.036)),
        ]
        assert [o.success for o in outcomes] == [False, False, True]
        assert engine.now == pytest.approx(0.036)

    def test_first_start_backdates_attempt_zero(self, engine):
        policy = RetryPolicy(max_retries=0)

        def proc():
            yield engine.timeout(0.005)  # library overhead, pre-paid
            outcomes = yield from execute_attempts(
                engine, failing_issuer(engine, 0), policy,
                first_start=0.0)
            return outcomes
        process = engine.spawn(proc(), name="backdate")
        engine.run()
        outcomes = process.result()
        assert outcomes[0].start == pytest.approx(0.0)
        assert outcomes[0].end == pytest.approx(0.015)

    def test_giveup_after_budget(self, engine):
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.001)
        stats = RetryStats()
        outcomes = drive(engine, failing_issuer(engine, 99), policy,
                         stats=stats)
        assert len(outcomes) == 3
        assert not outcomes[-1].success
        assert stats.as_dict() == {"attempts": 3, "retries": 2,
                                   "timeouts": 0, "giveups": 1}

    def test_timeout_race_cuts_attempt_short(self, engine):
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.001,
                             timeout_s=0.004)
        stats = RetryStats()
        # Each attempt takes 0.01 > timeout 0.004: both time out.
        outcomes = drive(engine, failing_issuer(engine, 0, 0.01), policy,
                         stats=stats)
        assert [o.timed_out for o in outcomes] == [True, True]
        assert all(o.result is None for o in outcomes)
        assert outcomes[0].end == pytest.approx(0.004)
        assert outcomes[1].start == pytest.approx(0.005)
        assert outcomes[1].end == pytest.approx(0.009)
        assert stats.timeouts == 2 and stats.giveups == 1

    def test_fast_attempt_beats_timeout(self, engine):
        policy = RetryPolicy(max_retries=1, timeout_s=0.1)
        outcomes = drive(engine, failing_issuer(engine, 0, 0.01), policy)
        assert len(outcomes) == 1
        assert outcomes[0].success and not outcomes[0].timed_out

    def test_no_policy_is_single_attempt(self, engine):
        stats = RetryStats()
        outcomes = drive(engine, failing_issuer(engine, 99), None,
                         stats=stats)
        assert len(outcomes) == 1
        assert not outcomes[0].success
        assert engine.now == pytest.approx(0.01)
        assert stats.attempts == 1 and stats.retries == 0

    def test_jittered_schedule_is_seeded(self):
        from repro.sim.engine import Engine
        policy = RetryPolicy(max_retries=2, backoff_base_s=0.002,
                             backoff_jitter=0.3)

        def timestamps(seed):
            engine = Engine()
            outcomes = drive(engine, failing_issuer(engine, 99), policy,
                             rng=RngStream.from_seed(seed))
            return [(o.start, o.end) for o in outcomes]
        assert timestamps(5) == timestamps(5)
        assert timestamps(5) != timestamps(6)


class TestAttemptOutcome:
    def test_timed_out_attempt_is_not_success(self):
        outcome = AttemptOutcome(0.0, 1.0, None, timed_out=True)
        assert not outcome.success

    def test_failed_result_is_not_success(self):
        outcome = AttemptOutcome(0.0, 1.0, FakeResult(success=False))
        assert not outcome.success
