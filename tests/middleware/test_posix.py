"""POSIX middleware: tracing semantics, cursors, handle lifecycle."""

import pytest

from repro.devices.ramdisk import RamDisk
from repro.errors import MiddlewareError
from repro.fs.localfs import LocalFileSystem
from repro.middleware.posix import PosixIO
from repro.middleware.tracing import TraceRecorder
from repro.util.units import KiB, MiB


@pytest.fixture
def stack(engine):
    device = RamDisk(engine, capacity_bytes=64 * MiB)
    fs = LocalFileSystem(engine, device, page_cache=None)
    fs.create("data", 4 * MiB)
    recorder = TraceRecorder(engine)
    lib = PosixIO(engine, fs, recorder)
    return lib, recorder, fs


class TestTracing:
    def test_each_call_emits_one_app_record(self, engine, stack):
        lib, recorder, _fs = stack
        handle = lib.open("data", pid=7)
        handle.pread(0, 64 * KiB)
        handle.pwrite(0, 32 * KiB)
        engine.run()
        assert len(recorder.app_trace) == 2
        reads = recorder.trace.for_op("read")
        assert reads[0].pid == 7
        assert reads[0].nbytes == 64 * KiB
        assert reads[0].end > reads[0].start

    def test_fs_bytes_match_device_traffic(self, engine, stack):
        lib, recorder, fs = stack
        handle = lib.open("data", pid=0)
        handle.pread(0, 64 * KiB)
        engine.run()
        assert recorder.fs_bytes_moved == 64 * KiB
        assert recorder.fs_bytes_moved == \
            fs.stats.bytes_read_from_device

    def test_record_times_bracket_the_call(self, engine, stack):
        lib, recorder, _fs = stack
        handle = lib.open("data", pid=0)

        def app(eng):
            yield eng.timeout(1.0)
            yield handle.pread(0, 4 * KiB)
        engine.spawn(app(engine))
        engine.run()
        record = recorder.trace[0]
        assert record.start == pytest.approx(1.0)
        assert record.end == pytest.approx(engine.now)


class TestCursor:
    def test_sequential_reads_advance(self, engine, stack):
        lib, recorder, _fs = stack
        handle = lib.open("data", pid=0)
        handle.read(64 * KiB)
        handle.read(64 * KiB)
        engine.run()
        offsets = [r.offset for r in recorder.trace]
        assert offsets == [0, 64 * KiB]
        assert handle.position == 128 * KiB

    def test_seek(self, engine, stack):
        lib, _recorder, _fs = stack
        handle = lib.open("data", pid=0)
        handle.seek(1 * MiB)
        assert handle.position == 1 * MiB
        with pytest.raises(MiddlewareError):
            handle.seek(-1)
        with pytest.raises(MiddlewareError):
            handle.seek(5 * MiB)


class TestHandleLifecycle:
    def test_open_missing_file_rejected(self, stack):
        lib, _recorder, _fs = stack
        with pytest.raises(MiddlewareError):
            lib.open("ghost", pid=0)

    def test_closed_handle_rejects_io(self, stack):
        lib, _recorder, _fs = stack
        handle = lib.open("data", pid=0)
        handle.close()
        with pytest.raises(MiddlewareError):
            handle.pread(0, 4096)

    def test_out_of_range_rejected(self, stack):
        lib, _recorder, _fs = stack
        handle = lib.open("data", pid=0)
        with pytest.raises(MiddlewareError):
            handle.pread(4 * MiB - 10, 100)

    def test_overhead_validated(self, engine, stack):
        _lib, recorder, fs = stack
        with pytest.raises(MiddlewareError):
            PosixIO(engine, fs, recorder, call_overhead_s=-1.0)
