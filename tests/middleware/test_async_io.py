"""Asynchronous I/O context: overlap, queue depth, tracing."""

import pytest

from repro.devices.ssd import SSDModel
from repro.errors import MiddlewareError
from repro.fs.localfs import LocalFileSystem
from repro.middleware.async_io import AsyncIOContext
from repro.middleware.tracing import TraceRecorder
from repro.util.units import KiB, MiB


@pytest.fixture
def stack(engine):
    device = SSDModel(engine, capacity_bytes=64 * MiB, channels=4)
    fs = LocalFileSystem(engine, device, page_cache=None,
                         per_call_overhead_s=0.0)
    fs.create("data", 16 * MiB)
    recorder = TraceRecorder(engine)
    return fs, recorder


def make_ctx(engine, stack, depth):
    fs, recorder = stack
    return AsyncIOContext(engine, fs, "data", pid=0, recorder=recorder,
                          queue_depth=depth), recorder


class TestSubmission:
    def test_submissions_overlap(self, engine, stack):
        ctx, recorder = make_ctx(engine, stack, depth=4)

        def app(eng):
            for i in range(4):
                ctx.submit_read(i * MiB, 256 * KiB)
            yield ctx.drain()
        process = engine.spawn(app(engine))
        engine.run()
        process.result()
        intervals = recorder.app_trace.intervals()
        from repro.core.intervals import max_concurrency, union_time
        assert max_concurrency(intervals) == 4
        # Union time much less than the sum: requests truly overlapped.
        durations = recorder.app_trace.response_times().sum()
        assert union_time(intervals) < durations * 0.5

    def test_depth_one_serialises(self, engine, stack):
        ctx, recorder = make_ctx(engine, stack, depth=1)

        def app(eng):
            for i in range(3):
                ctx.submit_read(i * MiB, 256 * KiB)
            yield ctx.drain()
        process = engine.spawn(app(engine))
        engine.run()
        process.result()
        # With one slot, later requests' response times include waiting.
        times = recorder.app_trace.response_times()
        assert times[2] > times[0] * 2

    def test_queue_depth_bounds_in_flight(self, engine, stack):
        ctx, _recorder = make_ctx(engine, stack, depth=2)
        observed = []

        def app(eng):
            for i in range(6):
                ctx.submit_read(i * MiB, 512 * KiB)
            while ctx.completed < 6:
                observed.append(ctx.in_flight)
                yield eng.timeout(0.0001)
            yield ctx.drain()
        process = engine.spawn(app(engine))
        engine.run()
        process.result()
        assert max(observed) <= 2

    def test_counters(self, engine, stack):
        ctx, _recorder = make_ctx(engine, stack, depth=4)

        def app(eng):
            for i in range(5):
                ctx.submit_read(i * KiB * 4, 4 * KiB)
            yield ctx.drain()
        engine.spawn(app(engine))
        engine.run()
        assert ctx.submitted == 5
        assert ctx.completed == 5

    def test_individual_token_waitable(self, engine, stack):
        ctx, _recorder = make_ctx(engine, stack, depth=4)

        def app(eng):
            token = ctx.submit_read(0, 4 * KiB)
            result = yield token
            return result.nbytes
        process = engine.spawn(app(engine))
        engine.run()
        assert process.result() == 4 * KiB

    def test_writes_supported(self, engine, stack):
        ctx, recorder = make_ctx(engine, stack, depth=2)

        def app(eng):
            ctx.submit_write(0, 64 * KiB)
            yield ctx.drain()
        engine.spawn(app(engine))
        engine.run()
        assert recorder.trace[0].op == "write"

    def test_drain_only_waits_for_submitted(self, engine, stack):
        ctx, _recorder = make_ctx(engine, stack, depth=2)

        def app(eng):
            ctx.submit_read(0, 4 * KiB)
            yield ctx.drain()
            first_done_at = eng.now
            ctx.submit_read(MiB, 4 * KiB)
            yield ctx.drain()
            return first_done_at, eng.now
        process = engine.spawn(app(engine))
        engine.run()
        first, second = process.result()
        assert second > first


class TestValidation:
    def test_bad_depth(self, engine, stack):
        fs, recorder = stack
        with pytest.raises(MiddlewareError):
            AsyncIOContext(engine, fs, "data", 0, recorder,
                           queue_depth=0)

    def test_missing_file(self, engine, stack):
        fs, recorder = stack
        with pytest.raises(MiddlewareError):
            AsyncIOContext(engine, fs, "ghost", 0, recorder)

    def test_bad_range(self, engine, stack):
        ctx, _recorder = make_ctx(engine, stack, depth=2)
        with pytest.raises(MiddlewareError):
            ctx.submit_read(16 * MiB, 4 * KiB)
