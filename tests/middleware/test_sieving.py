"""Data sieving planner: coverage, buffer bounds, hole thresholds."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MiddlewareError
from repro.middleware.sieving import (
    SievingConfig,
    SieveRead,
    plan_sieving,
    sieving_efficiency,
    validate_regions,
)


def strided(count, size, gap, base=0):
    return [(base + i * (size + gap), size) for i in range(count)]


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(MiddlewareError):
            validate_regions([])

    def test_unsorted_rejected(self):
        with pytest.raises(MiddlewareError):
            validate_regions([(100, 10), (50, 10)])

    def test_overlap_rejected(self):
        with pytest.raises(MiddlewareError):
            validate_regions([(0, 100), (50, 10)])

    def test_adjacent_allowed(self):
        validate_regions([(0, 100), (100, 10)])

    def test_bad_region_rejected(self):
        with pytest.raises(MiddlewareError):
            validate_regions([(0, 0)])
        with pytest.raises(MiddlewareError):
            validate_regions([(-5, 10)])

    def test_bad_config_rejected(self):
        with pytest.raises(MiddlewareError):
            SievingConfig(buffer_size=0)
        with pytest.raises(MiddlewareError):
            SievingConfig(max_hole=-1)


class TestPlanning:
    def test_disabled_gives_one_read_per_region(self):
        regions = strided(5, 256, 256)
        plan = plan_sieving(regions, SievingConfig(enabled=False))
        assert len(plan) == 5
        assert all(r.hole_bytes == 0 for r in plan)

    def test_small_holes_coalesce(self):
        regions = strided(4, 256, 100)
        plan = plan_sieving(regions, SievingConfig(max_hole=1000))
        assert len(plan) == 1
        sieve = plan[0]
        assert sieve.offset == 0
        assert sieve.nbytes == 4 * 256 + 3 * 100
        assert sieve.useful_bytes == 1024
        assert sieve.hole_bytes == 300

    def test_large_holes_split(self):
        regions = [(0, 256), (10_000, 256)]
        plan = plan_sieving(regions, SievingConfig(max_hole=1000))
        assert len(plan) == 2
        assert all(r.hole_bytes == 0 for r in plan)

    def test_buffer_size_bounds_reads(self):
        regions = strided(100, 256, 0)   # contiguous 25600 bytes
        plan = plan_sieving(regions, SievingConfig(buffer_size=4096,
                                                   max_hole=4096))
        assert all(r.nbytes <= 4096 for r in plan)

    def test_oversized_single_region_gets_exact_read(self):
        regions = [(0, 10_000)]
        plan = plan_sieving(regions, SievingConfig(buffer_size=4096))
        assert plan == [SieveRead(0, 10_000, ((0, 10_000),))]

    def test_efficiency(self):
        regions = strided(2, 100, 100)
        plan = plan_sieving(regions, SievingConfig(max_hole=1000))
        assert sieving_efficiency(plan) == pytest.approx(200 / 300)

    def test_efficiency_empty_plan_rejected(self):
        with pytest.raises(MiddlewareError):
            sieving_efficiency([])


regions_strategy = st.lists(
    st.tuples(st.integers(min_value=1, max_value=500),   # gap before
              st.integers(min_value=1, max_value=300)),  # length
    min_size=1, max_size=50,
).map(lambda gaps: _to_regions(gaps))


def _to_regions(gap_length_pairs):
    regions = []
    cursor = 0
    for gap, length in gap_length_pairs:
        cursor += gap
        regions.append((cursor, length))
        cursor += length
    return regions


class TestPlanningProperties:
    @given(regions_strategy,
           st.integers(min_value=256, max_value=8192),   # buffer
           st.integers(min_value=0, max_value=600))      # max hole
    def test_invariants(self, regions, buffer_size, max_hole):
        config = SievingConfig(buffer_size=buffer_size, max_hole=max_hole)
        plan = plan_sieving(regions, config)

        # 1. Every region covered exactly once, in order.
        covered = [region for sieve in plan for region in sieve.regions]
        assert covered == regions

        # 2. Each sieve read spans exactly its regions.
        for sieve in plan:
            first_offset = sieve.regions[0][0]
            last_end = sieve.regions[-1][0] + sieve.regions[-1][1]
            assert sieve.offset == first_offset
            assert sieve.end == last_end

        # 3. Buffer bound (except dedicated single-region reads).
        for sieve in plan:
            if len(sieve.regions) > 1:
                assert sieve.nbytes <= buffer_size

        # 4. No sieve read spans a hole wider than max_hole.
        for sieve in plan:
            for (off_a, len_a), (off_b, _len_b) in zip(
                    sieve.regions, sieve.regions[1:]):
                assert off_b - (off_a + len_a) <= max_hole

        # 5. Total useful bytes are conserved.
        useful = sum(s.useful_bytes for s in plan)
        assert useful == sum(length for _off, length in regions)

    @given(regions_strategy)
    def test_disabled_plan_is_identity(self, regions):
        plan = plan_sieving(regions, SievingConfig(enabled=False))
        assert [(s.offset, s.nbytes) for s in plan] == regions
