"""MPI-IO middleware: independent, sieved, and collective reads."""

import pytest

from repro.devices.ramdisk import RamDisk
from repro.errors import MiddlewareError
from repro.fs.localfs import LocalFileSystem
from repro.middleware.mpiio import MPIIO, MPIIOHints
from repro.middleware.sieving import SievingConfig
from repro.middleware.tracing import TraceRecorder
from repro.util.units import KiB, MiB


@pytest.fixture
def stack(engine):
    device = RamDisk(engine, capacity_bytes=64 * MiB)
    fs = LocalFileSystem(engine, device, page_cache=None)
    fs.create("shared", 8 * MiB)
    recorder = TraceRecorder(engine)
    return fs, recorder


class TestIndependent:
    def test_read_at_traced_per_rank(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 2, recorder)
        for rank in range(2):
            handle = mpi.open(fs, "shared", rank)
            handle.read_at(rank * MiB, 64 * KiB)
        engine.run()
        assert len(recorder.app_trace) == 2
        assert recorder.trace.pids() == [0, 1]

    def test_write_at(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0)
        handle.write_at(0, 64 * KiB)
        engine.run()
        assert recorder.trace[0].op == "write"
        assert recorder.fs_bytes_moved == 64 * KiB

    def test_rank_range_checked(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 2, recorder)
        with pytest.raises(MiddlewareError):
            mpi.open(fs, "shared", 5)

    def test_missing_file_rejected(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        with pytest.raises(MiddlewareError):
            mpi.open(fs, "ghost", 0)

    def test_bad_range_rejected(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0)
        with pytest.raises(MiddlewareError):
            handle.read_at(8 * MiB, 1)


class TestSievedRegions:
    def test_app_bytes_exclude_holes(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0,
                          MPIIOHints(sieving=SievingConfig(
                              max_hole=4096)))
        regions = [(i * 1024, 256) for i in range(16)]
        handle.read_regions(regions)
        engine.run()
        record = recorder.trace[0]
        assert record.nbytes == 16 * 256          # useful bytes only
        assert recorder.fs_bytes_moved > record.nbytes  # holes read below

    def test_sieving_off_moves_exact_bytes(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0,
                          MPIIOHints(sieving=SievingConfig(enabled=False)))
        regions = [(i * 1024, 256) for i in range(16)]
        handle.read_regions(regions)
        engine.run()
        assert recorder.fs_bytes_moved == 16 * 256

    def test_sieving_faster_when_overheads_dominate(self, engine, stack):
        fs, recorder = stack
        # Heavy per-call fs overhead: fewer, larger sieve reads win.
        fs.per_call_overhead_s = 0.001
        mpi = MPIIO(engine, 1, recorder)
        regions = [(i * 1024, 256) for i in range(64)]

        sieved = mpi.open(fs, "shared", 0,
                          MPIIOHints(sieving=SievingConfig(max_hole=8192)))
        sieved.read_regions(regions)
        engine.run()
        sieved_time = engine.now

        engine2 = type(engine)()
        device2 = RamDisk(engine2, capacity_bytes=64 * MiB)
        fs2 = LocalFileSystem(engine2, device2, page_cache=None,
                              per_call_overhead_s=0.001)
        fs2.create("shared", 8 * MiB)
        recorder2 = TraceRecorder(engine2)
        mpi2 = MPIIO(engine2, 1, recorder2)
        plain = mpi2.open(fs2, "shared", 0,
                          MPIIOHints(sieving=SievingConfig(enabled=False)))
        plain.read_regions(regions)
        engine2.run()
        assert sieved_time < engine2.now

    def test_invalid_regions_rejected(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0)
        with pytest.raises(MiddlewareError):
            handle.read_regions([])
        with pytest.raises(MiddlewareError):
            handle.read_regions([(8 * MiB - 10, 100)])


class TestSievedWriteRegions:
    def test_rmw_roughly_doubles_fs_traffic(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0,
                          MPIIOHints(sieving=SievingConfig(
                              max_hole=4096)))
        regions = [(i * 1024, 256) for i in range(16)]
        done = handle.write_regions(regions)
        engine.run()
        result = done.result()
        assert result.success
        covering = regions[-1][0] + 256 - regions[0][0]
        # Read-modify-write: covering range in, covering range out.
        assert recorder.fs_bytes_moved == 2 * covering
        # App record counts only the useful bytes, as a write.
        record = recorder.trace[0]
        assert record.op == "write"
        assert record.nbytes == 16 * 256

    def test_sieving_off_writes_exact_regions(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0,
                          MPIIOHints(sieving=SievingConfig(
                              enabled=False)))
        regions = [(i * 1024, 256) for i in range(16)]
        handle.write_regions(regions)
        engine.run()
        assert recorder.fs_bytes_moved == 16 * 256

    def test_contiguous_regions_skip_rmw(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0)
        regions = [(i * 256, 256) for i in range(16)]  # no holes
        handle.write_regions(regions)
        engine.run()
        # One coalesced plain write: no read-back.
        assert recorder.fs_bytes_moved == 16 * 256

    def test_validation(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 1, recorder)
        handle = mpi.open(fs, "shared", 0)
        with pytest.raises(MiddlewareError):
            handle.write_regions([])
        with pytest.raises(MiddlewareError):
            handle.write_regions([(8 * MiB - 10, 100)])


class TestCollective:
    def test_all_ranks_complete_together(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 4, recorder)
        done = []
        for rank in range(4):
            handle = mpi.open(fs, "shared", rank,
                              MPIIOHints(cb_nodes=2))
            done.append(handle.read_at_all(rank * MiB, 1 * MiB))
        engine.run()
        ends = [d.result().end for d in done]
        assert max(ends) == pytest.approx(min(ends))
        assert len(recorder.app_trace) == 4

    def test_ranks_wait_for_stragglers(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 2, recorder)
        handles = [mpi.open(fs, "shared", r) for r in range(2)]

        early = handles[0].read_at_all(0, 64 * KiB)

        def late_rank(eng):
            yield eng.timeout(5.0)
            result = yield handles[1].read_at_all(1 * MiB, 64 * KiB)
            return result
        engine.spawn(late_rank(engine))
        engine.run()
        assert early.result().end >= 5.0  # rank 0 waited for rank 1

    def test_two_rounds_sequence_correctly(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 2, recorder)
        handles = [mpi.open(fs, "shared", r) for r in range(2)]

        def rank_proc(eng, rank):
            yield handles[rank].read_at_all(rank * MiB, 64 * KiB)
            yield handles[rank].read_at_all(
                2 * MiB + rank * MiB, 64 * KiB)
        for rank in range(2):
            engine.spawn(rank_proc(engine, rank))
        engine.run()
        assert len(recorder.app_trace) == 4

    def test_double_join_same_round_rejected(self, engine, stack):
        fs, recorder = stack
        mpi = MPIIO(engine, 2, recorder)
        handle = mpi.open(fs, "shared", 0)
        handle.read_at_all(0, 64 * KiB)
        with pytest.raises(MiddlewareError):
            handle.read_at_all(0, 64 * KiB)
