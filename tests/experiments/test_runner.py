"""Sweep runner: scaling, repetitions, seeds."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentScale, SweepSpec, run_sweep
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.iozone import IOzoneWorkload


class TestScale:
    def test_size_scaling_respects_granule(self):
        scale = ExperimentScale(factor=0.5)
        assert scale.size(16 * MiB, granule=1 * MiB) == 8 * MiB
        # Scaled value floors to the granule: 5000 -> 4096.
        assert scale.size(10000, granule=4096) == 4096

    def test_size_never_below_granule(self):
        scale = ExperimentScale(factor=0.001)
        assert scale.size(1 * MiB, granule=64 * KiB) == 64 * KiB

    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(factor=0)
        with pytest.raises(ExperimentError):
            ExperimentScale(repetitions=0)


class TestSweep:
    def make_spec(self):
        config = SystemConfig(kind="local", jitter_sigma=0.1)
        points = []
        for record in (64 * KiB, 256 * KiB):
            def make(_record=record):
                return IOzoneWorkload(file_size=1 * MiB,
                                      record_size=_record)
            points.append((str(record), make, config))
        return SweepSpec(knob="record", points=points)

    def test_runs_all_points_and_reps(self):
        scale = ExperimentScale(repetitions=3)
        sweep = run_sweep(self.make_spec(), scale)
        assert sweep.labels == ["65536", "262144"]
        assert len(sweep._points[0][1]) == 3

    def test_repetitions_use_distinct_seeds(self):
        scale = ExperimentScale(repetitions=3)
        sweep = run_sweep(self.make_spec(), scale)
        times = [m.exec_time for m in sweep._points[0][1]]
        assert len(set(times)) == 3  # jitter + distinct seeds

    def test_deterministic_given_same_scale(self):
        scale = ExperimentScale(repetitions=2)
        first = run_sweep(self.make_spec(), scale)
        second = run_sweep(self.make_spec(), scale)
        assert [m.exec_time for m in first.averaged()] == \
            [m.exec_time for m in second.averaged()]

    def test_single_point_sweep_rejected(self):
        config = SystemConfig(kind="local")
        with pytest.raises(ExperimentError):
            SweepSpec(knob="x", points=[
                ("only", lambda: IOzoneWorkload(), config)])


def _metric_tuples(sweep):
    return [
        (m.iops, m.bandwidth, m.arpt, m.bps, m.exec_time, m.union_io_time,
         m.app_ops, m.app_bytes, m.app_blocks, m.fs_bytes)
        for _label, reps in sweep._points for m in reps
    ]


class TestParallelSweep:
    def make_spec(self):
        config = SystemConfig(kind="local", jitter_sigma=0.1)
        points = []
        for record in (64 * KiB, 256 * KiB):
            def make(_record=record):
                return IOzoneWorkload(file_size=1 * MiB,
                                      record_size=_record)
            points.append((str(record), make, config))
        return SweepSpec(knob="record", points=points)

    def test_parallel_matches_serial_exactly(self):
        scale = ExperimentScale(repetitions=2)
        serial = run_sweep(self.make_spec(), scale, parallel=False)
        parallel = run_sweep(self.make_spec(), scale, parallel=True,
                             workers=2)
        assert serial.labels == parallel.labels
        assert _metric_tuples(serial) == _metric_tuples(parallel)

    def test_parallel_false_is_the_escape_hatch(self):
        scale = ExperimentScale(repetitions=2)
        sweep = run_sweep(self.make_spec(), scale, parallel=False,
                          workers=8)
        assert len(sweep._points[0][1]) == 2

    def test_env_override_resolves_workers(self, monkeypatch):
        from repro.experiments.runner import resolve_workers
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert resolve_workers() == 3
        assert resolve_workers(5) == 5  # explicit argument wins
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "zero")
        with pytest.raises(ExperimentError):
            resolve_workers()

    def test_env_nonpositive_clamps_with_warning(self, monkeypatch):
        # A bad site-wide env var degrades to serial, never aborts.
        from repro.experiments.runner import resolve_workers
        for bad in ("0", "-4"):
            monkeypatch.setenv("REPRO_SWEEP_WORKERS", bad)
            with pytest.warns(RuntimeWarning, match="clamping to 1"):
                assert resolve_workers() == 1

    def test_explicit_nonpositive_workers_still_raises(self):
        from repro.experiments.runner import resolve_workers
        with pytest.raises(ExperimentError):
            resolve_workers(0)
        with pytest.raises(ExperimentError):
            resolve_workers(-2)

    def test_env_workers_one_disables_parallelism(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        scale = ExperimentScale(repetitions=2)
        sweep = run_sweep(self.make_spec(), scale)
        assert len(sweep._points) == 2
