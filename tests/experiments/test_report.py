"""One-command report generation."""

import pytest

from repro.experiments.report import REPORT_ORDER, generate_report
from repro.experiments.figures import FIGURES
from repro.experiments.runner import ExperimentScale


class TestReportStructure:
    def test_order_covers_all_figures(self):
        assert set(REPORT_ORDER) == set(FIGURES)

    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(
            ExperimentScale(factor=0.25, repetitions=2))

    def test_every_section_present(self, report):
        for figure_id in REPORT_ORDER:
            assert f"## {figure_id}:" in report

    def test_expectations_quoted(self, report):
        assert "Paper expectation" in report
        assert "BW flipped" in report or "BW negative" in report \
            or "flips" in report

    def test_contains_cc_tables(self, report):
        assert "MISLEADING" in report
        assert "correct" in report

    def test_markdown_code_fences_balanced(self, report):
        assert report.count("```") % 2 == 0

    def test_cli_writes_file(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "r.md"
        assert main(["report", "--scale", "0.25", "--reps", "2",
                     "--out", str(out)]) == 0
        assert out.read_text().startswith("# BPS reproduction report")
