"""Experiment registry (Table 2) and figure catalog completeness."""

from repro.experiments.figures import FIGURES
from repro.experiments.registry import EXPERIMENT_SETS


class TestRegistry:
    def test_four_sets(self):
        assert sorted(EXPERIMENT_SETS) == [1, 2, 3, 4]

    def test_descriptions_match_paper_table2(self):
        assert EXPERIMENT_SETS[1].description == "various storage device"
        assert EXPERIMENT_SETS[2].description == "various I/O request size"
        assert EXPERIMENT_SETS[3].description == "various I/O concurrency"
        assert EXPERIMENT_SETS[4].description == \
            "various additional data movement"

    def test_expected_misleading_metrics(self):
        assert EXPERIMENT_SETS[1].expected_misleading == ()
        assert set(EXPERIMENT_SETS[2].expected_misleading) == \
            {"IOPS", "ARPT"}
        assert EXPERIMENT_SETS[3].expected_misleading == ("ARPT",)
        assert EXPERIMENT_SETS[4].expected_misleading == ("BW",)


class TestFigureCatalog:
    def test_every_evaluation_figure_present(self):
        expected = {"table1", "table2", "fig4", "fig5", "fig6", "fig7",
                    "fig8", "fig9", "fig10", "fig11", "fig12", "summary"}
        assert expected <= set(FIGURES)

    def test_registry_figures_resolve(self):
        for spec in EXPERIMENT_SETS.values():
            for figure_id in spec.figures:
                assert figure_id in FIGURES

    def test_specs_have_expectations(self):
        for spec in FIGURES.values():
            assert spec.title
            assert spec.paper_expectation
