"""IORecord and TraceCollection (measurement steps 1-2)."""

import pytest

from repro.core.records import IORecord, LAYER_FS, TraceCollection
from repro.errors import AnalysisError


def rec(pid=0, op="read", nbytes=512, start=0.0, end=1.0, **kwargs):
    return IORecord(pid=pid, op=op, nbytes=nbytes, start=start, end=end,
                    **kwargs)


class TestIORecord:
    def test_duration(self):
        assert rec(start=1.0, end=2.5).duration == 1.5

    def test_blocks_round_up(self):
        assert rec(nbytes=512).blocks() == 1
        assert rec(nbytes=513).blocks() == 2
        assert rec(nbytes=100).blocks(block_size=4096) == 1

    def test_invalid_rejected(self):
        with pytest.raises(AnalysisError):
            rec(nbytes=-1)
        with pytest.raises(AnalysisError):
            rec(start=2.0, end=1.0)

    def test_shifted(self):
        shifted = rec(start=1.0, end=2.0).shifted(10.0)
        assert (shifted.start, shifted.end) == (11.0, 12.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            rec().pid = 5


class TestCollection:
    def test_add_and_iterate(self):
        trace = TraceCollection()
        trace.add(rec(pid=1))
        trace.extend([rec(pid=2), rec(pid=3)])
        assert len(trace) == 3
        assert [r.pid for r in trace] == [1, 2, 3]
        assert trace[0].pid == 1

    def test_gather_merges_processes(self):
        per_process = [TraceCollection([rec(pid=i)]) for i in range(4)]
        gathered = TraceCollection.gather(per_process)
        assert len(gathered) == 4
        assert gathered.pids() == [0, 1, 2, 3]

    def test_merge(self):
        a = TraceCollection([rec(pid=0)])
        b = TraceCollection([rec(pid=1)])
        merged = a.merge(b)
        assert len(merged) == 2
        assert len(a) == 1  # originals untouched

    def test_filters(self):
        trace = TraceCollection([
            rec(pid=0, op="read"),
            rec(pid=1, op="write"),
            rec(pid=0, op="read", layer=LAYER_FS),
        ])
        assert len(trace.for_pid(0)) == 2
        assert len(trace.for_op("write")) == 1
        assert len(trace.app_records()) == 2


class TestAggregates:
    def test_total_blocks_rounds_per_record(self):
        trace = TraceCollection([rec(nbytes=100), rec(nbytes=100)])
        # Two 100-byte accesses are two blocks, not ceil(200/512) = 1.
        assert trace.total_blocks() == 2
        assert trace.total_bytes() == 200

    def test_intervals_array(self):
        trace = TraceCollection([rec(start=0.0, end=1.0),
                                 rec(start=2.0, end=3.5)])
        arr = trace.intervals()
        assert arr.shape == (2, 2)
        assert arr.tolist() == [[0.0, 1.0], [2.0, 3.5]]

    def test_empty_intervals(self):
        assert TraceCollection().intervals().shape == (0, 2)

    def test_span(self):
        trace = TraceCollection([rec(start=1.0, end=2.0),
                                 rec(start=0.5, end=1.5)])
        assert trace.span() == (0.5, 2.0)

    def test_span_empty_raises(self):
        with pytest.raises(AnalysisError):
            TraceCollection().span()

    def test_response_times(self):
        trace = TraceCollection([rec(start=0.0, end=1.0),
                                 rec(start=0.0, end=3.0)])
        assert trace.response_times().tolist() == [1.0, 3.0]

    def test_record_space_overhead(self):
        # Paper section III.C: 32 bytes per record.
        trace = TraceCollection([rec() for _ in range(100)])
        assert trace.estimated_record_bytes() == 3200
