"""Correlation analysis: Table 1 directions and sign normalisation."""

import pytest

from repro.core.correlation import (
    EXPECTED_DIRECTIONS,
    METRIC_ORDER,
    average_strength,
    correlation_table,
    misleading_metrics,
    normalized_cc,
)
from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.errors import AnalysisError


class TestTable1:
    def test_expected_directions_match_paper(self):
        assert EXPECTED_DIRECTIONS == {
            "IOPS": -1, "BW": -1, "ARPT": +1, "BPS": -1,
        }

    def test_metric_order_matches_figures(self):
        assert METRIC_ORDER == ("IOPS", "BW", "ARPT", "BPS")


class TestNormalization:
    def test_matching_direction_positive(self):
        # BPS falling while exec time rises: correct direction.
        result = normalized_cc("BPS", [10, 8, 6], [1, 2, 3])
        assert result.cc == pytest.approx(-1.0)
        assert result.normalized == pytest.approx(1.0)
        assert result.direction_correct

    def test_flipped_direction_negative(self):
        # IOPS falling while exec time also falls: misleading.
        result = normalized_cc("IOPS", [10, 8, 6], [3, 2, 1])
        assert result.cc == pytest.approx(1.0)
        assert result.normalized == pytest.approx(-1.0)
        assert not result.direction_correct

    def test_arpt_expected_positive(self):
        result = normalized_cc("ARPT", [1, 2, 3], [1, 2, 3])
        assert result.normalized == pytest.approx(1.0)

    def test_bandwidth_alias(self):
        result = normalized_cc("bandwidth", [3, 2, 1], [1, 2, 3])
        assert result.metric == "BW"
        assert result.normalized == pytest.approx(1.0)

    def test_unknown_metric_rejected(self):
        with pytest.raises(AnalysisError):
            normalized_cc("latency", [1, 2], [1, 2])

    def test_degenerate_series_rejected(self):
        with pytest.raises(AnalysisError):
            normalized_cc("BPS", [1, 1], [1, 2])


def _metric_set(iops_v, bw_v, arpt_v, bps_v, exec_v):
    trace = TraceCollection([IORecord(0, "read", 512, 0.0, 1.0)])
    base = compute_metrics(trace, exec_time=exec_v)
    from dataclasses import replace
    return replace(base, iops=iops_v, bandwidth=bw_v, arpt=arpt_v,
                   bps=bps_v)


class TestCorrelationTable:
    def test_full_table(self):
        # A well-behaved sweep: throughput up, time down, latency down.
        runs = [
            _metric_set(10, 100, 5.0, 20, 8.0),
            _metric_set(20, 200, 3.0, 40, 4.0),
            _metric_set(40, 400, 2.0, 80, 2.0),
        ]
        table = correlation_table(runs)
        assert set(table) == set(METRIC_ORDER)
        assert table["IOPS"].direction_correct
        assert table["BW"].direction_correct
        assert table["ARPT"].direction_correct
        assert table["BPS"].direction_correct
        assert misleading_metrics(table) == []
        # The series are monotone but not perfectly linear in exec time.
        assert average_strength(table) > 0.9

    def test_set4_style_bw_flip(self):
        # Data-sieving style: bandwidth up while execution time rises.
        runs = [
            _metric_set(30, 100, 1.0, 30, 1.0),
            _metric_set(20, 200, 2.0, 20, 2.0),
            _metric_set(10, 400, 3.0, 10, 3.0),
        ]
        table = correlation_table(runs)
        assert misleading_metrics(table) == ["BW"]
        assert table["BW"].normalized < 0
        assert table["BPS"].normalized > 0

    def test_too_few_points_rejected(self):
        with pytest.raises(AnalysisError):
            correlation_table([_metric_set(1, 1, 1, 1, 1)])

    def test_average_strength_empty_rejected(self):
        with pytest.raises(AnalysisError):
            average_strength({})
