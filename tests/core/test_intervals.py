"""Interval union — the heart of BPS's time measurement (paper Fig. 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.intervals import (
    concurrency_profile,
    idle_time,
    max_concurrency,
    merge_intervals,
    total_request_time,
    union_time,
    union_time_paper,
)
from repro.errors import AnalysisError

BOTH_IMPLS = pytest.mark.parametrize("union", [union_time,
                                               union_time_paper],
                                     ids=["numpy", "paper"])


class TestPaperWorkedExamples:
    """Exact scenarios from the paper's figures."""

    @BOTH_IMPLS
    def test_paper_figure2_example(self, union):
        """Fig. 2: R1-R3 overlap pairwise, R4 is separate; the idle gap
        between t6 and t7 is excluded.  T = dt1 + dt2."""
        r1 = (0.0, 3.0)   # t1..t4
        r2 = (1.0, 4.0)   # t2..t5
        r3 = (2.0, 5.0)   # t3..t6
        r4 = (7.0, 9.0)   # t7..t8
        dt1 = 5.0 - 0.0
        dt2 = 9.0 - 7.0
        assert union([r1, r2, r3, r4]) == pytest.approx(dt1 + dt2)

    @BOTH_IMPLS
    def test_figure2_is_not_the_sum_of_times(self, union):
        """The paper stresses T != T1+T2+T3 for overlapped requests."""
        intervals = [(0.0, 3.0), (1.0, 4.0), (2.0, 5.0)]
        assert union(intervals) == pytest.approx(5.0)
        assert total_request_time(intervals) == pytest.approx(9.0)

    @BOTH_IMPLS
    def test_figure1c_concurrent_vs_sequential(self, union):
        """Fig. 1(c): two requests of time T run sequentially (total 2T)
        or concurrently (total T).  Union time tells them apart; ARPT
        does not — that asymmetry is BPS's selling point."""
        sequential = [(0.0, 1.0), (1.0, 2.0)]
        concurrent = [(0.0, 1.0), (0.0, 1.0)]
        assert union(sequential) == pytest.approx(2.0)
        assert union(concurrent) == pytest.approx(1.0)

    @BOTH_IMPLS
    def test_idle_time_excluded(self, union):
        """Section III.A: inactive periods are not included in T."""
        intervals = [(0.0, 1.0), (10.0, 11.0)]
        assert union(intervals) == pytest.approx(2.0)
        assert idle_time(intervals) == pytest.approx(9.0)


class TestBasics:
    @BOTH_IMPLS
    def test_empty(self, union):
        assert union([]) == 0.0
        assert union(np.empty((0, 2))) == 0.0

    @BOTH_IMPLS
    def test_single_interval(self, union):
        assert union([(2.0, 5.5)]) == pytest.approx(3.5)

    @BOTH_IMPLS
    def test_zero_length_intervals(self, union):
        assert union([(1.0, 1.0)]) == 0.0
        assert union([(1.0, 1.0), (1.0, 2.0)]) == pytest.approx(1.0)

    @BOTH_IMPLS
    def test_identical_intervals_count_once(self, union):
        assert union([(0.0, 1.0)] * 10) == pytest.approx(1.0)

    @BOTH_IMPLS
    def test_touching_intervals_merge(self, union):
        assert union([(0.0, 1.0), (1.0, 2.0)]) == pytest.approx(2.0)

    @BOTH_IMPLS
    def test_containment(self, union):
        assert union([(0.0, 10.0), (2.0, 3.0)]) == pytest.approx(10.0)

    @BOTH_IMPLS
    def test_unsorted_input(self, union):
        assert union([(5.0, 6.0), (0.0, 1.0), (2.0, 3.0)]) == \
            pytest.approx(3.0)

    def test_invalid_interval_rejected(self):
        with pytest.raises(AnalysisError):
            union_time([(2.0, 1.0)])
        with pytest.raises(AnalysisError):
            union_time([(float("nan"), 1.0)])
        with pytest.raises(AnalysisError):
            union_time([(1.0, 2.0, 3.0)])


intervals_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    ).map(lambda p: (p[0], p[0] + p[1])),
    min_size=0, max_size=200,
)


class TestProperties:
    @given(intervals_strategy)
    @settings(max_examples=200)
    def test_implementations_agree(self, intervals):
        assert union_time(intervals) == pytest.approx(
            union_time_paper(intervals), abs=1e-9)

    @given(intervals_strategy)
    def test_union_bounds(self, intervals):
        t = union_time(intervals)
        assert t >= 0.0
        assert t <= total_request_time(intervals) + 1e-9
        if intervals:
            longest = max(e - s for s, e in intervals)
            span = max(e for _s, e in intervals) - \
                min(s for s, _e in intervals)
            assert t >= longest - 1e-9
            assert t <= span + 1e-9

    @given(intervals_strategy, st.randoms())
    def test_permutation_invariance(self, intervals, rnd):
        shuffled = intervals.copy()
        rnd.shuffle(shuffled)
        assert union_time(shuffled) == pytest.approx(
            union_time(intervals), abs=1e-9)

    @given(intervals_strategy)
    def test_idempotent_under_duplication(self, intervals):
        assert union_time(intervals + intervals) == pytest.approx(
            union_time(intervals), abs=1e-9)

    @given(intervals_strategy,
           st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_translation_invariance(self, intervals, delta):
        shifted = [(s + delta, e + delta) for s, e in intervals]
        assert union_time(shifted) == pytest.approx(
            union_time(intervals), abs=1e-6)

    @given(intervals_strategy)
    def test_merge_intervals_consistent_with_union(self, intervals):
        merged = merge_intervals(intervals)
        lengths = float(np.sum(merged[:, 1] - merged[:, 0])) \
            if merged.size else 0.0
        assert lengths == pytest.approx(union_time(intervals), abs=1e-9)
        # Merged intervals are disjoint and sorted.
        for (s1, e1), (s2, _e2) in zip(merged, merged[1:]):
            assert e1 < s2

    @given(intervals_strategy)
    def test_concurrency_profile_consistent(self, intervals):
        times, depth = concurrency_profile(intervals)
        if len(times) == 0:
            assert union_time(intervals) == 0.0
            return
        assert depth[-1] == 0
        assert np.all(depth >= 0)
        # Integrating (depth > 0) over time reproduces the union time.
        widths = np.diff(times)
        busy = float(np.sum(widths[depth[:-1] > 0]))
        assert busy == pytest.approx(union_time(intervals), abs=1e-9)
        # Integrating depth itself reproduces the total request time.
        weighted = float(np.sum(widths * depth[:-1]))
        assert weighted == pytest.approx(
            total_request_time(intervals), abs=1e-6)


class TestConcurrencyProfile:
    def test_profile_example(self):
        times, depth = concurrency_profile(
            [(0.0, 3.0), (1.0, 4.0), (2.0, 5.0), (7.0, 9.0)])
        assert times.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 7.0, 9.0]
        assert depth.tolist() == [1, 2, 3, 2, 1, 0, 1, 0]

    def test_max_concurrency(self):
        assert max_concurrency(
            [(0.0, 3.0), (1.0, 4.0), (2.0, 5.0)]) == 3
        assert max_concurrency([]) == 0

    def test_zero_length_intervals_add_no_depth(self):
        _times, depth = concurrency_profile([(1.0, 1.0), (0.0, 2.0)])
        assert max(depth) == 1


class TestComplexity:
    def test_large_input_fast_and_correct(self):
        rng = np.random.default_rng(0)
        n = 100_000
        starts = rng.uniform(0, 1000, n)
        intervals = np.column_stack([starts, starts + rng.uniform(0, 1, n)])
        t = union_time(intervals)
        assert 0 < t <= 1001
