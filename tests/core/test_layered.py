"""Layered app-vs-fs BPS comparison."""

import pytest

from repro.core.metrics import layered_comparison
from repro.core.records import IORecord, LAYER_FS, TraceCollection
from repro.errors import AnalysisError
from repro.middleware.sieving import SievingConfig
from repro.system import SystemConfig
from repro.workloads import HpioWorkload, IOzoneWorkload
from repro.util.units import KiB, MiB


def trace_with_layers(app_bytes, fs_bytes):
    return TraceCollection([
        IORecord(0, "read", app_bytes, 0.0, 1.0),
        IORecord(0, "read", fs_bytes, 0.0, 1.0, layer=LAYER_FS),
    ])


class TestDirect:
    def test_equal_layers(self):
        result = layered_comparison(trace_with_layers(4096, 4096))
        assert result.app_bps == result.fs_bps
        assert result.block_amplification == pytest.approx(1.0)

    def test_amplified_fs_layer(self):
        result = layered_comparison(trace_with_layers(4096, 16384))
        assert result.fs_bps == pytest.approx(4 * result.app_bps)
        assert result.block_amplification == pytest.approx(4.0)

    def test_missing_fs_records_rejected(self):
        trace = TraceCollection([IORecord(0, "read", 4096, 0.0, 1.0)])
        with pytest.raises(AnalysisError, match="keep_fs_records"):
            layered_comparison(trace)

    def test_empty_app_rejected(self):
        trace = TraceCollection([
            IORecord(0, "read", 4096, 0.0, 1.0, layer=LAYER_FS)])
        with pytest.raises(AnalysisError):
            layered_comparison(trace)


class TestEndToEnd:
    def test_plain_read_has_no_amplification(self):
        config = SystemConfig(kind="local", keep_fs_records=True,
                              cache_pages=0)
        measurement = IOzoneWorkload(file_size=4 * MiB,
                                     record_size=64 * KiB).run(config)
        result = layered_comparison(measurement.trace)
        assert result.block_amplification == pytest.approx(1.0)

    def test_sieving_amplifies_fs_layer(self):
        config = SystemConfig(kind="pfs", n_servers=2,
                              keep_fs_records=True)
        workload = HpioWorkload(region_count=256, region_size=256,
                                region_spacing=1024, nproc=1,
                                sieving=SievingConfig(max_hole=4 * KiB))
        measurement = workload.run(config)
        result = layered_comparison(measurement.trace)
        # fs moved regions + 4x holes.
        assert result.block_amplification > 3.0
        assert result.fs_bps > result.app_bps
        # The fs-layer blocks match the recorder's byte counter.
        assert result.fs_blocks * 512 == pytest.approx(
            measurement.fs_bytes, rel=0.01)

    def test_metrics_unaffected_by_fs_records(self):
        plain = IOzoneWorkload(file_size=2 * MiB,
                               record_size=64 * KiB).run(
            SystemConfig(kind="local"))
        layered = IOzoneWorkload(file_size=2 * MiB,
                                 record_size=64 * KiB).run(
            SystemConfig(kind="local", keep_fs_records=True))
        # app-layer metrics identical; the fs records are additive only.
        assert plain.metrics().bps == pytest.approx(layered.metrics().bps)
        assert len(layered.trace) > len(plain.trace)
