"""Fisher-z confidence machinery for correlation coefficients."""

import pytest
from hypothesis import given, strategies as st

from repro.core.confidence import (
    cc_significant,
    compare_cc,
    fisher_ci,
)
from repro.errors import AnalysisError


class TestFisherCI:
    def test_interval_contains_estimate(self):
        interval = fisher_ci(0.8, 10)
        assert interval.low < 0.8 < interval.high
        assert interval.contains(0.8)

    def test_more_points_tighten_interval(self):
        wide = fisher_ci(0.7, 6)
        narrow = fisher_ci(0.7, 60)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_bounds_stay_in_range(self):
        interval = fisher_ci(0.99, 5)
        assert -1.0 <= interval.low <= interval.high <= 1.0

    def test_perfect_correlation_degenerate(self):
        interval = fisher_ci(1.0, 6)
        assert interval.low == interval.high == 1.0

    def test_symmetry_under_negation(self):
        pos = fisher_ci(0.6, 8)
        neg = fisher_ci(-0.6, 8)
        assert neg.low == pytest.approx(-pos.high)
        assert neg.high == pytest.approx(-pos.low)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fisher_ci(1.5, 10)
        with pytest.raises(AnalysisError):
            fisher_ci(0.5, 3)
        with pytest.raises(AnalysisError):
            fisher_ci(0.5, 10, level=1.5)

    def test_str_format(self):
        text = str(fisher_ci(0.5, 10))
        assert "+0.500" in text and "95%" in text

    @given(st.floats(min_value=-0.999, max_value=0.999,
                     allow_nan=False),
           st.integers(min_value=4, max_value=200))
    def test_interval_always_brackets_cc(self, cc, n):
        interval = fisher_ci(cc, n)
        assert interval.low <= cc <= interval.high
        assert -1.0 <= interval.low <= interval.high <= 1.0


class TestSignificance:
    def test_strong_cc_with_enough_points(self):
        assert cc_significant(0.95, 10)

    def test_weak_cc_with_few_points(self):
        assert not cc_significant(0.3, 6)

    def test_paper_sweeps_are_marginal(self):
        # The paper's 6-8 point sweeps: 0.9 is significant, 0.4 is not —
        # a caveat worth quantifying in a reproduction.
        assert cc_significant(0.9, 7)
        assert not cc_significant(0.39, 6)


class TestCompare:
    def test_identical_not_different(self):
        assert not compare_cc(0.8, 10, 0.8, 10)

    def test_very_different_with_many_points(self):
        assert compare_cc(0.95, 100, 0.1, 100)

    def test_small_samples_cannot_distinguish(self):
        assert not compare_cc(0.9, 6, 0.6, 6)

    def test_degenerate_inputs(self):
        assert compare_cc(1.0, 6, 0.5, 6)
        assert not compare_cc(1.0, 6, 1.0, 6)
        with pytest.raises(AnalysisError):
            compare_cc(0.5, 3, 0.5, 10)


class TestSweepIntegration:
    def test_render_cc_table_with_ci(self):
        from repro.core.analysis import RunMeasurement, SweepAnalysis
        from repro.core.records import IORecord, TraceCollection

        sweep = SweepAnalysis("size")
        for index, duration in enumerate((4.0, 2.0, 1.3, 1.0, 0.8)):
            trace = TraceCollection([
                IORecord(0, "read", 1024 * (index + 1), 0.0, duration),
            ])
            run = RunMeasurement(trace=trace, exec_time=duration,
                                 fs_bytes=1024 * (index + 1))
            sweep.add_runs(str(index), [run])
        text = sweep.render_cc_table_with_ci()
        assert "95% CI" in text
        assert "significant?" in text
        assert "BPS" in text
