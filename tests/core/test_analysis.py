"""Sweep analysis: averaging, CC tables, renderings."""

import pytest

from repro.core.analysis import (
    RunMeasurement,
    SweepAnalysis,
    average_metric_sets,
)
from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.errors import AnalysisError


def run_measurement(duration, nbytes=1024, fs_bytes=None):
    trace = TraceCollection([
        IORecord(0, "read", nbytes, 0.0, duration),
    ])
    return RunMeasurement(trace=trace, exec_time=duration,
                          fs_bytes=fs_bytes if fs_bytes is not None
                          else nbytes)


class TestRunMeasurement:
    def test_metrics_computed_from_run(self):
        run = run_measurement(2.0, nbytes=2048)
        metrics = run.metrics()
        assert metrics.bps == pytest.approx(4 / 2.0)
        assert metrics.fs_bytes == 2048


class TestAveraging:
    def test_average_of_identical_is_identity(self):
        metrics = run_measurement(1.0).metrics()
        averaged = average_metric_sets([metrics, metrics])
        assert averaged.bps == metrics.bps
        assert averaged.app_ops == metrics.app_ops

    def test_average_of_two(self):
        fast = run_measurement(1.0).metrics()
        slow = run_measurement(3.0).metrics()
        averaged = average_metric_sets([fast, slow])
        assert averaged.exec_time == pytest.approx(2.0)
        assert averaged.bps == pytest.approx((fast.bps + slow.bps) / 2)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            average_metric_sets([])


class TestSweepAnalysis:
    def make_sweep(self):
        sweep = SweepAnalysis("record size")
        # Execution time falls across the sweep; throughput rises.
        for label, duration in (("4KB", 4.0), ("64KB", 2.0),
                                ("1MB", 1.0)):
            runs = [run_measurement(duration + jitter * 0.01)
                    for jitter in range(3)]
            sweep.add_runs(label, runs)
        return sweep

    def test_labels_and_averaged(self):
        sweep = self.make_sweep()
        assert sweep.labels == ["4KB", "64KB", "1MB"]
        averaged = sweep.averaged()
        assert len(averaged) == 3
        assert averaged[0].label == "4KB"

    def test_correlations(self):
        sweep = self.make_sweep()
        table = sweep.correlations()
        assert table["BPS"].direction_correct
        # ARPT == exec duration here, so it tracks exec time: correct.
        assert table["ARPT"].direction_correct

    def test_series(self):
        sweep = self.make_sweep()
        times = sweep.series("exec_time")
        assert times == sorted(times, reverse=True)

    def test_renderings_contain_metrics(self):
        sweep = self.make_sweep()
        figure = sweep.render_cc_figure("Fig.X")
        assert "Fig.X" in figure
        assert "BPS" in figure
        table = sweep.render_cc_table()
        assert "MISLEADING" in table or "correct" in table
        detail = sweep.render_detail(["ARPT", "exec_time"])
        assert "4KB" in detail

    def test_empty_sweep_rejected(self):
        sweep = SweepAnalysis("nothing")
        with pytest.raises(AnalysisError):
            sweep.averaged()

    def test_point_without_reps_rejected(self):
        sweep = SweepAnalysis("x")
        with pytest.raises(AnalysisError):
            sweep.add_point("p", [])
