"""Timeline analytics: breakdowns, binned BPS, overlap, Gantt."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.intervals import union_time
from repro.core.records import IORecord, TraceCollection
from repro.core.timeline import (
    binned_bps,
    overlap_matrix,
    overlap_surplus,
    per_process_breakdown,
    render_gantt,
)
from repro.errors import AnalysisError


def rec(pid, start, end, nbytes=512):
    return IORecord(pid=pid, op="read", nbytes=nbytes, start=start,
                    end=end)


@pytest.fixture
def two_process_trace():
    return TraceCollection([
        rec(0, 0.0, 1.0, 1024),
        rec(0, 1.0, 2.0, 1024),
        rec(1, 0.5, 1.5, 2048),
    ])


class TestBreakdown:
    def test_per_process_values(self, two_process_trace):
        summaries = per_process_breakdown(two_process_trace)
        assert [s.pid for s in summaries] == [0, 1]
        first, second = summaries
        assert first.ops == 2
        assert first.blocks == 4
        assert first.union_time == pytest.approx(2.0)
        assert first.bps == pytest.approx(2.0)
        assert second.union_time == pytest.approx(1.0)
        assert second.mean_response == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            per_process_breakdown(TraceCollection())


class TestOverlapSurplus:
    def test_no_overlap(self):
        trace = TraceCollection([rec(0, 0.0, 1.0), rec(1, 2.0, 3.0)])
        assert overlap_surplus(trace) == pytest.approx(0.0)

    def test_full_overlap(self):
        trace = TraceCollection([rec(0, 0.0, 1.0), rec(1, 0.0, 1.0)])
        assert overlap_surplus(trace) == pytest.approx(1.0)

    def test_example(self, two_process_trace):
        # pids: 2.0 + 1.0 per-process; global union = 2.0.
        assert overlap_surplus(two_process_trace) == pytest.approx(1.0)

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.floats(min_value=0, max_value=50, allow_nan=False),
                  st.floats(min_value=0.01, max_value=5,
                            allow_nan=False)),
        min_size=1, max_size=40))
    def test_surplus_nonnegative(self, specs):
        trace = TraceCollection([
            rec(pid, start, start + duration)
            for pid, start, duration in specs
        ])
        assert overlap_surplus(trace) >= -1e-9


class TestBinnedBPS:
    def test_uniform_activity(self):
        # One record of 10 blocks over [0, 1): every bin equally busy.
        trace = TraceCollection([rec(0, 0.0, 1.0, nbytes=5120)])
        _edges, values = binned_bps(trace, bins=5)
        assert values == pytest.approx([10.0] * 5)

    def test_phased_activity(self):
        trace = TraceCollection([rec(0, 0.0, 1.0, nbytes=5120),
                                 rec(0, 3.0, 4.0, nbytes=5120)])
        _edges, values = binned_bps(trace, bins=4)
        assert values[0] > 0 and values[3] > 0
        assert values[1] == pytest.approx(0.0)

    def test_blocks_conserved(self):
        trace = TraceCollection([rec(0, 0.2, 1.7, nbytes=4096),
                                 rec(1, 0.9, 2.3, nbytes=9999)])
        edges, values = binned_bps(trace, bins=7)
        widths = np.diff(edges)
        assert float(np.sum(values * widths)) == pytest.approx(
            trace.total_blocks())

    def test_zero_length_record_lands_in_a_bin(self):
        trace = TraceCollection([rec(0, 0.0, 2.0, nbytes=512),
                                 rec(0, 1.0, 1.0, nbytes=512)])
        _edges, values = binned_bps(trace, bins=2)
        assert float(np.sum(values)) > 0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            binned_bps(TraceCollection())
        with pytest.raises(AnalysisError):
            binned_bps(TraceCollection([rec(0, 1.0, 1.0)]), bins=4)


class TestOverlapMatrix:
    def test_diagonal_is_union_time(self, two_process_trace):
        pids, matrix = overlap_matrix(two_process_trace)
        assert pids == [0, 1]
        app = two_process_trace
        for i, pid in enumerate(pids):
            assert matrix[i, i] == pytest.approx(
                union_time(app.for_pid(pid).intervals()))

    def test_symmetric_with_expected_overlap(self, two_process_trace):
        _pids, matrix = overlap_matrix(two_process_trace)
        # pid0 busy [0,2]; pid1 busy [0.5,1.5] -> overlap 1.0.
        assert matrix[0, 1] == pytest.approx(1.0)
        assert matrix[1, 0] == pytest.approx(1.0)

    def test_disjoint_processes(self):
        trace = TraceCollection([rec(0, 0.0, 1.0), rec(1, 5.0, 6.0)])
        _pids, matrix = overlap_matrix(trace)
        assert matrix[0, 1] == pytest.approx(0.0)


class TestConcurrencyHistogram:
    def test_depths_and_times(self, two_process_trace):
        from repro.core.timeline import concurrency_histogram
        histogram = concurrency_histogram(two_process_trace)
        # [0, 0.5) depth 1; [0.5, 1.5) depth 2; [1.5, 2] depth 1.
        assert histogram == pytest.approx({1: 1.0, 2: 1.0})

    def test_sums_to_union_time(self, two_process_trace):
        from repro.core.timeline import concurrency_histogram
        histogram = concurrency_histogram(two_process_trace)
        assert sum(histogram.values()) == pytest.approx(
            union_time(two_process_trace.intervals()))

    def test_depth_weighted_sum_is_total_request_time(
            self, two_process_trace):
        from repro.core.intervals import total_request_time
        from repro.core.timeline import concurrency_histogram
        histogram = concurrency_histogram(two_process_trace)
        weighted = sum(depth * seconds
                       for depth, seconds in histogram.items())
        assert weighted == pytest.approx(
            total_request_time(two_process_trace.intervals()))

    def test_empty_rejected(self):
        from repro.core.timeline import concurrency_histogram
        with pytest.raises(AnalysisError):
            concurrency_histogram(TraceCollection())


class TestGantt:
    def test_renders_rows_per_pid(self, two_process_trace):
        chart = render_gantt(two_process_trace, width=40)
        lines = chart.splitlines()
        assert lines[0].startswith("pid    0")
        assert lines[1].startswith("pid    1")
        assert "#" in lines[0]

    def test_overlap_deepens_marks(self):
        trace = TraceCollection([rec(0, 0.0, 1.0), rec(0, 0.0, 1.0)])
        chart = render_gantt(trace, width=20)
        assert "2" in chart.splitlines()[0]

    def test_idle_shown_as_dots(self):
        trace = TraceCollection([rec(0, 0.0, 1.0), rec(0, 9.0, 10.0)])
        row = render_gantt(trace, width=40).splitlines()[0]
        assert "." in row

    def test_validation(self):
        with pytest.raises(AnalysisError):
            render_gantt(TraceCollection())
        with pytest.raises(AnalysisError):
            render_gantt(TraceCollection([rec(0, 0.0, 1.0)]), width=3)
