"""Jackknife sensitivity of correlation results."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sensitivity import (
    influence,
    jackknife_cc,
    sweep_direction_robust,
)
from repro.errors import AnalysisError


class TestJackknife:
    def test_perfectly_linear_is_robust(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [10.0, 8.0, 6.0, 4.0, 2.0]
        result = jackknife_cc(x, y)
        assert result.cc == pytest.approx(-1.0)
        assert all(v == pytest.approx(-1.0) for v in result.loo)
        assert result.direction_robust()

    def test_single_pivotal_point_detected(self):
        # Four flat points plus one huge outlier carrying all the
        # correlation: removing it destroys the relationship.
        x = [1.0, 1.1, 0.9, 1.05, 10.0]
        y = [5.0, 4.9, 5.1, 5.05, 50.0]
        result = jackknife_cc(x, y, labels="abcde")
        assert result.cc > 0.99
        label, delta = result.most_influential()
        assert label == "e"
        assert delta > 0.5

    def test_direction_flip_detected(self):
        # Weak relation that changes sign when one point leaves.
        x = [1.0, 2.0, 3.0, 10.0]
        y = [3.0, 2.0, 1.0, 9.0]
        result = jackknife_cc(x, y)
        assert not result.direction_robust()

    def test_min_max_consistent(self):
        x = [1.0, 2.0, 3.0, 4.0, 7.0]
        y = [2.0, 1.0, 4.0, 3.0, 6.0]
        result = jackknife_cc(x, y)
        assert result.min_cc <= result.max_cc
        assert result.min_cc in result.loo
        assert result.max_cc in result.loo

    def test_validation(self):
        with pytest.raises(AnalysisError):
            jackknife_cc([1, 2, 3], [1, 2, 3])
        with pytest.raises(AnalysisError):
            jackknife_cc([1, 2, 3, 4], [1, 2, 3])
        with pytest.raises(AnalysisError):
            jackknife_cc([1, 2, 3, 4], [1, 2, 3, 4], labels=["a"])

    @given(st.lists(st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False)),
        min_size=4, max_size=20))
    @settings(max_examples=60)
    def test_loo_values_in_range(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        try:
            result = jackknife_cc(x, y)
        except AnalysisError:
            return  # degenerate variance
        assert all(-1.0 <= v <= 1.0 for v in result.loo)
        assert len(result.loo) == len(pairs)


class TestInfluence:
    def test_sorted_descending(self):
        x = [1.0, 1.1, 0.9, 1.05, 10.0]
        y = [5.0, 4.9, 5.1, 5.05, 50.0]
        ranking = influence(x, y)
        deltas = [delta for _label, delta in ranking]
        assert deltas == sorted(deltas, reverse=True)


class TestSweepIntegration:
    def test_paper_sweeps_are_direction_robust(self):
        """The reproduction's headline must not hinge on one point."""
        from repro.experiments.runner import ExperimentScale
        from repro.experiments.set4 import run_set4
        sweep = run_set4(ExperimentScale(factor=0.25, repetitions=2))
        assert sweep_direction_robust(sweep, "BPS")
        assert sweep_direction_robust(sweep, "BW")  # robustly WRONG
