"""Metrics: BPS (Eq. 1), IOPS, bandwidth, ARPT — including the paper's
Figure 1 discrimination scenarios."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    MetricSet,
    arpt,
    bandwidth,
    bps,
    compute_metrics,
    iops,
    union_io_time,
)
from repro.core.records import IORecord, LAYER_FS, TraceCollection
from repro.errors import AnalysisError


def trace_of(*specs):
    """specs: (nbytes, start, end) or (nbytes, start, end, pid)."""
    trace = TraceCollection()
    for spec in specs:
        nbytes, start, end = spec[:3]
        pid = spec[3] if len(spec) > 3 else 0
        trace.add(IORecord(pid=pid, op="read", nbytes=nbytes,
                           start=start, end=end))
    return trace


class TestPaperFigure1:
    """Fig. 1: six two-request cases showing when each metric lies."""

    def test_case_a_iops_misses_io_size(self):
        """(a) Left: two size-S requests served in 2T → IOPS = 2/(2T) =
        1/T.  Right: both served as one size-2S request in T → IOPS =
        1/T as well.  IOPS cannot tell them apart; BPS doubles for the
        right case, which finished in half the time."""
        small_separate = trace_of((512, 0.0, 1.0), (512, 1.0, 2.0))
        merged = trace_of((1024, 0.0, 1.0))
        assert iops(small_separate) == pytest.approx(
            iops(merged))  # IOPS cannot tell them apart...
        assert bps(merged) == pytest.approx(
            2 * bps(small_separate))  # ...BPS can.

    def test_case_b_bandwidth_credits_extra_movement(self):
        """(b) Same application data, but the right case moves twice the
        data through the file system in the same time: bandwidth doubles,
        BPS stays put (it counts application-required blocks)."""
        app = trace_of((1024, 0.0, 1.0), (1024, 1.0, 2.0))
        plain_bw = bandwidth(app, fs_bytes=2048)
        amplified_bw = bandwidth(app, fs_bytes=4096)
        assert amplified_bw == pytest.approx(2 * plain_bw)
        assert bps(app) == bps(app)  # unchanged by fs_bytes

    def test_case_c_arpt_misses_concurrency(self):
        """(c) Sequential vs concurrent service of two T-long requests:
        same ARPT, but BPS doubles for the concurrent case."""
        sequential = trace_of((512, 0.0, 1.0), (512, 1.0, 2.0))
        concurrent = trace_of((512, 0.0, 1.0), (512, 0.0, 1.0))
        assert arpt(sequential) == pytest.approx(arpt(concurrent))
        assert bps(concurrent) == pytest.approx(2 * bps(sequential))


class TestBPS:
    def test_equation_one(self):
        # B = 4 blocks, T = 2s of overlapped I/O time.
        trace = trace_of((1024, 0.0, 1.0), (1024, 1.0, 2.0))
        assert bps(trace) == pytest.approx(4 / 2)

    def test_failed_accesses_counted_in_b(self):
        trace = TraceCollection([
            IORecord(0, "read", 1024, 0.0, 1.0, success=True),
            IORecord(0, "read", 1024, 1.0, 2.0, success=False),
        ])
        assert bps(trace) == pytest.approx(4 / 2)

    def test_fs_layer_records_excluded(self):
        trace = trace_of((1024, 0.0, 1.0))
        trace.add(IORecord(0, "read", 10 * 1024, 0.0, 1.0,
                           layer=LAYER_FS))
        assert bps(trace) == pytest.approx(2 / 1)

    def test_custom_block_size(self):
        trace = trace_of((4096, 0.0, 1.0))
        assert bps(trace, block_size=4096) == pytest.approx(1.0)

    def test_idle_time_not_charged(self):
        busy = trace_of((1024, 0.0, 1.0), (1024, 1.0, 2.0))
        gappy = trace_of((1024, 0.0, 1.0), (1024, 100.0, 101.0))
        assert bps(busy) == pytest.approx(bps(gappy))

    def test_empty_trace_rejected(self):
        with pytest.raises(AnalysisError):
            bps(TraceCollection())

    def test_zero_time_rejected(self):
        with pytest.raises(AnalysisError):
            bps(trace_of((512, 1.0, 1.0)))

    def test_impl_selection(self):
        trace = trace_of((512, 0.0, 1.0))
        assert bps(trace, impl="paper") == bps(trace, impl="numpy")
        with pytest.raises(AnalysisError):
            bps(trace, impl="magic")


class TestOtherMetrics:
    def test_iops(self):
        trace = trace_of((512, 0.0, 1.0), (512, 0.5, 2.0))
        assert iops(trace) == pytest.approx(2 / 2.0)

    def test_bandwidth_defaults_to_app_bytes(self):
        trace = trace_of((1000, 0.0, 2.0))
        assert bandwidth(trace) == pytest.approx(500.0)

    def test_bandwidth_negative_fs_bytes_rejected(self):
        with pytest.raises(AnalysisError):
            bandwidth(trace_of((512, 0.0, 1.0)), fs_bytes=-1)

    def test_arpt_is_plain_mean(self):
        trace = trace_of((512, 0.0, 1.0), (512, 0.0, 3.0))
        assert arpt(trace) == pytest.approx(2.0)

    def test_union_io_time_exposed(self):
        trace = trace_of((512, 0.0, 2.0), (512, 1.0, 3.0))
        assert union_io_time(trace) == pytest.approx(3.0)


class TestComputeMetrics:
    def test_bundles_everything(self):
        trace = trace_of((1024, 0.0, 1.0), (1024, 0.0, 1.0))
        metrics = compute_metrics(trace, exec_time=2.0, fs_bytes=4096,
                                  label="demo")
        assert metrics.bps == pytest.approx(4.0)
        assert metrics.iops == pytest.approx(2.0)
        assert metrics.bandwidth == pytest.approx(4096.0)
        assert metrics.arpt == pytest.approx(1.0)
        assert metrics.exec_time == 2.0
        assert metrics.app_ops == 2
        assert metrics.app_blocks == 4
        assert metrics.fs_amplification == pytest.approx(2.0)
        assert metrics.label == "demo"

    def test_value_of_aliases(self):
        trace = trace_of((512, 0.0, 1.0))
        metrics = compute_metrics(trace, exec_time=1.0)
        assert metrics.value_of("BW") == metrics.bandwidth
        assert metrics.value_of("bandwidth") == metrics.bandwidth
        assert metrics.value_of("exec_time") == 1.0
        with pytest.raises(AnalysisError):
            metrics.value_of("latency99")

    def test_bad_exec_time_rejected(self):
        with pytest.raises(AnalysisError):
            compute_metrics(trace_of((512, 0.0, 1.0)), exec_time=0.0)


class TestMetricProperties:
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=10**6),
                  st.floats(min_value=0, max_value=100, allow_nan=False),
                  st.floats(min_value=0.001, max_value=10,
                            allow_nan=False)),
        min_size=1, max_size=50))
    def test_bps_scale_and_positivity(self, specs):
        trace = TraceCollection([
            IORecord(0, "read", nbytes, start, start + duration)
            for nbytes, start, duration in specs
        ])
        value = bps(trace)
        assert value > 0
        # Halving the block size grows B, at most doubling it:
        # ceil(n/512) <= ceil(n/256) <= 2*ceil(n/512).
        finer = bps(trace, block_size=256)
        assert value * 0.999 <= finer <= 2 * value * 1.001

    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False),
                  st.floats(min_value=0.001, max_value=10,
                            allow_nan=False)),
        min_size=1, max_size=50),
        st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_time_shift_invariance(self, spans, delta):
        base = TraceCollection([
            IORecord(0, "read", 512, start, start + duration)
            for start, duration in spans
        ])
        shifted = TraceCollection([r.shifted(delta) for r in base])
        assert bps(shifted) == pytest.approx(bps(base), rel=1e-9)
        assert arpt(shifted) == pytest.approx(arpt(base), rel=1e-9)
