"""Columnar TraceCollection vs a pure-Python reference (property-based).

The structure-of-arrays backend must be observationally identical to
the seed's list-of-dataclass implementation.  Hypothesis drives both
over arbitrary record mixes — empty traces, zero-length intervals,
mixed app/fs layers, failed accesses, duplicate timestamps — and every
aggregate, filter, merge, and gather must agree exactly.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import union_time, union_time_paper
from repro.core.records import (
    IORecord,
    LAYER_APP,
    LAYER_FS,
    TraceCollection,
)
from repro.errors import AnalysisError
from repro.util.units import bytes_to_blocks

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)


@st.composite
def records(draw):
    start = draw(times)
    duration = draw(st.floats(min_value=0.0, max_value=1e3,
                              allow_nan=False, allow_infinity=False))
    return IORecord(
        pid=draw(st.integers(min_value=0, max_value=7)),
        op=draw(st.sampled_from(["read", "write", "fsync"])),
        nbytes=draw(st.integers(min_value=0, max_value=10 * 1024 * 1024)),
        start=start,
        end=start + duration,
        file=draw(st.sampled_from(["", "a.dat", "b.dat"])),
        offset=draw(st.integers(min_value=-1, max_value=1 << 40)),
        success=draw(st.booleans()),
        layer=draw(st.sampled_from([LAYER_APP, LAYER_FS])),
    )


record_lists = st.lists(records(), min_size=0, max_size=60)


class PyReference:
    """The seed implementation: a plain list of records, Python loops."""

    def __init__(self, recs):
        self.recs = list(recs)

    def total_bytes(self):
        return sum(r.nbytes for r in self.recs)

    def total_blocks(self, block_size=512):
        return sum(bytes_to_blocks(r.nbytes, block_size) for r in self.recs)

    def intervals(self):
        return [[r.start, r.end] for r in self.recs]

    def response_times(self):
        return [r.end - r.start for r in self.recs]

    def pids(self):
        return sorted({r.pid for r in self.recs})

    def span(self):
        return (min(r.start for r in self.recs),
                max(r.end for r in self.recs))


def fields(r):
    return (r.pid, r.op, r.nbytes, r.start, r.end, r.file, r.offset,
            r.success, r.layer)


def assert_same_records(trace, recs):
    assert len(trace) == len(recs)
    assert [fields(r) for r in trace] == [fields(r) for r in recs]


class TestAggregatesAgree:
    @given(record_lists)
    def test_totals_and_columns(self, recs):
        trace = TraceCollection(recs)
        ref = PyReference(recs)
        assert trace.total_bytes() == ref.total_bytes()
        assert trace.total_blocks() == ref.total_blocks()
        assert trace.total_blocks(4096) == ref.total_blocks(4096)
        assert trace.intervals().tolist() == ref.intervals()
        assert trace.response_times().tolist() == ref.response_times()
        assert trace.pids() == ref.pids()

    @given(record_lists)
    def test_span(self, recs):
        trace = TraceCollection(recs)
        if not recs:
            with pytest.raises(AnalysisError):
                trace.span()
        else:
            assert trace.span() == PyReference(recs).span()

    @given(record_lists)
    def test_row_round_trip(self, recs):
        # Iteration and indexing materialise rows identical to the input.
        trace = TraceCollection(recs)
        assert_same_records(trace, recs)
        for i in range(len(recs)):
            assert fields(trace[i]) == fields(recs[i])

    @given(record_lists)
    def test_union_time_matches_paper_port(self, recs):
        trace = TraceCollection(recs)
        expected = union_time_paper([[r.start, r.end] for r in recs])
        assert trace.union_time() == pytest.approx(expected)
        assert trace.union_time(impl="paper") == pytest.approx(expected)


class TestViewsAgree:
    @given(record_lists)
    def test_filters_match_reference(self, recs):
        trace = TraceCollection(recs)
        assert_same_records(trace.app_records(),
                            [r for r in recs if r.layer == LAYER_APP])
        assert_same_records(trace.fs_records(),
                            [r for r in recs if r.layer == LAYER_FS])
        for pid in {r.pid for r in recs}:
            assert_same_records(trace.for_pid(pid),
                                [r for r in recs if r.pid == pid])
        for op in ("read", "write", "never-seen"):
            assert_same_records(trace.for_op(op),
                                [r for r in recs if r.op == op])
        assert_same_records(
            trace.for_pid_range(range(2, 5)),
            [r for r in recs if 2 <= r.pid < 5])

    @given(record_lists)
    def test_generic_predicate_filter(self, recs):
        trace = TraceCollection(recs)
        predicate = lambda r: r.success and r.nbytes > 1024
        assert_same_records(trace.filter(predicate),
                            [r for r in recs if predicate(r)])

    @given(record_lists, record_lists)
    def test_merge_and_gather(self, left, right):
        a, b = TraceCollection(left), TraceCollection(right)
        merged = a.merge(b)
        assert_same_records(merged, left + right)
        assert len(a) == len(left)  # originals untouched
        gathered = TraceCollection.gather(
            [TraceCollection(left), TraceCollection(right),
             TraceCollection()])
        assert_same_records(gathered, left + right)

    @given(record_lists)
    def test_views_after_incremental_build(self, recs):
        # Interleave appends and queries: consolidation must never lose
        # or reorder the tail.
        trace = TraceCollection()
        for i, r in enumerate(recs):
            trace.add(r)
            if i % 7 == 0:
                trace.total_bytes()  # force consolidation mid-build
        assert_same_records(trace, recs)
        assert trace.total_bytes() == PyReference(recs).total_bytes()


class TestCacheInvalidation:
    def rec(self, start, end, **kw):
        kw.setdefault("pid", 0)
        kw.setdefault("op", "read")
        kw.setdefault("nbytes", 512)
        return IORecord(start=start, end=end, **kw)

    def test_add_invalidates_union_time(self):
        trace = TraceCollection([self.rec(0.0, 1.0)])
        assert trace.union_time() == 1.0
        trace.add(self.rec(5.0, 7.0))
        assert trace.union_time() == 3.0
        trace.extend([self.rec(10.0, 11.5)])
        assert trace.union_time() == 4.5
        assert trace.union_time(impl="paper") == 4.5

    def test_add_invalidates_aggregates(self):
        trace = TraceCollection([self.rec(0.0, 1.0, nbytes=100)])
        assert trace.total_bytes() == 100
        assert trace.total_blocks() == 1
        trace.add(self.rec(1.0, 2.0, nbytes=513))
        assert trace.total_bytes() == 613
        assert trace.total_blocks() == 3
        assert trace.intervals().shape == (2, 2)
        assert trace.span() == (0.0, 2.0)

    def test_view_caching_and_invalidation(self):
        trace = TraceCollection([self.rec(0.0, 1.0),
                                 self.rec(0.0, 1.0, layer=LAYER_FS)])
        first = trace.app_records()
        # Repeated queries reuse the cached view (shared memoisation).
        assert trace.app_records() is first
        trace.add(self.rec(2.0, 3.0))
        fresh = trace.app_records()
        assert fresh is not first
        assert len(fresh) == 2
        assert len(first) == 1  # the old snapshot is unchanged

    def test_mutated_view_detaches_from_parent(self):
        trace = TraceCollection([self.rec(0.0, 1.0)])
        view = trace.app_records()
        view.add(self.rec(4.0, 5.0))
        assert len(view) == 2
        # The parent serves a fresh snapshot, not the mutated view.
        assert len(trace.app_records()) == 1
        assert trace.app_records() is not view

    def test_cached_arrays_are_read_only(self):
        trace = TraceCollection([self.rec(0.0, 1.0)])
        with pytest.raises(ValueError):
            trace.intervals()[0, 0] = 99.0
        with pytest.raises(ValueError):
            trace.response_times()[0] = 99.0


class TestFromArrays:
    def test_broadcast_scalars(self):
        trace = TraceCollection.from_arrays(
            pid=[1, 2], nbytes=[512, 1024],
            start=[0.0, 0.5], end=[1.0, 2.0])
        assert len(trace) == 2
        assert trace[0].op == "read"
        assert trace[1].layer == LAYER_APP
        assert trace.total_blocks() == 3

    def test_column_sequences(self):
        trace = TraceCollection.from_arrays(
            pid=[1, 2], nbytes=[0, 10], start=[0.0, 1.0], end=[0.0, 2.0],
            op=["read", "write"], layer=[LAYER_APP, LAYER_FS],
            file=["x", "y"], offset=[0, 4096], success=[True, False])
        assert fields(trace[1]) == (2, "write", 10, 1.0, 2.0, "y", 4096,
                                    False, LAYER_FS)
        assert len(trace.app_records()) == 1

    def test_validation(self):
        with pytest.raises(AnalysisError):
            TraceCollection.from_arrays(pid=[1], nbytes=[-1],
                                        start=[0.0], end=[1.0])
        with pytest.raises(AnalysisError):
            TraceCollection.from_arrays(pid=[1], nbytes=[1],
                                        start=[2.0], end=[1.0])
        with pytest.raises(AnalysisError):
            TraceCollection.from_arrays(pid=[1], nbytes=[1],
                                        start=[math.nan], end=[1.0])
        with pytest.raises(AnalysisError):
            TraceCollection.from_arrays(pid=[1, 2], nbytes=[1],
                                        start=[0.0, 0.0], end=[1.0, 1.0])

    @given(record_lists)
    def test_matches_record_ingest(self, recs):
        by_rows = TraceCollection(recs)
        by_cols = TraceCollection.from_arrays(
            pid=[r.pid for r in recs],
            nbytes=[r.nbytes for r in recs],
            start=np.array([r.start for r in recs]),
            end=np.array([r.end for r in recs]),
            op=[r.op for r in recs],
            file=[r.file for r in recs],
            offset=[r.offset for r in recs],
            success=[r.success for r in recs],
            layer=[r.layer for r in recs],
        )
        assert_same_records(by_cols, list(by_rows))
        assert by_cols.union_time() == pytest.approx(by_rows.union_time())


class TestPickleRoundTrip:
    @given(record_lists)
    @settings(max_examples=25)
    def test_pickle_preserves_records(self, recs):
        import pickle
        trace = TraceCollection(recs)
        trace.union_time()  # warm caches; they must not leak into pickle
        clone = pickle.loads(pickle.dumps(trace))
        assert_same_records(clone, recs)
        assert clone.union_time() == pytest.approx(trace.union_time())
