"""Synthetic workloads: random, mixed, replay."""

import pytest

from repro.errors import WorkloadError
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.synthetic import (
    MixedReadWriteWorkload,
    RandomAccessWorkload,
    ReplayOp,
    ReplayWorkload,
)

LOCAL = SystemConfig(kind="local")


class TestRandomAccess:
    def test_op_count(self):
        workload = RandomAccessWorkload(file_size=8 * MiB,
                                        ops_per_proc=32, nproc=2)
        measurement = workload.run(LOCAL)
        assert len(measurement.trace) == 64

    def test_offsets_aligned_and_in_range(self):
        workload = RandomAccessWorkload(file_size=8 * MiB,
                                        ops_per_proc=50, nproc=1)
        measurement = workload.run(LOCAL)
        for record in measurement.trace:
            assert record.offset % workload.align == 0
            assert record.offset + record.nbytes <= 8 * MiB

    def test_determinism_per_seed(self):
        workload = RandomAccessWorkload(ops_per_proc=16, nproc=2)
        a = workload.run(LOCAL.with_seed(9))
        b = RandomAccessWorkload(ops_per_proc=16, nproc=2).run(
            LOCAL.with_seed(9))
        assert [r.offset for r in a.trace] == [r.offset for r in b.trace]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RandomAccessWorkload(io_size=2 * MiB, file_size=1 * MiB)
        with pytest.raises(WorkloadError):
            RandomAccessWorkload(ops_per_proc=0)


class TestMixed:
    def test_mix_ratio_roughly_respected(self):
        workload = MixedReadWriteWorkload(file_size=16 * MiB,
                                          record_size=64 * KiB,
                                          nproc=2, read_fraction=0.7)
        measurement = workload.run(LOCAL)
        reads = len(measurement.trace.for_op("read"))
        writes = len(measurement.trace.for_op("write"))
        assert reads + writes == 256
        assert 0.55 < reads / 256 < 0.85

    def test_all_reads_at_fraction_one(self):
        workload = MixedReadWriteWorkload(file_size=2 * MiB,
                                          record_size=64 * KiB,
                                          nproc=1, read_fraction=1.0)
        measurement = workload.run(LOCAL)
        assert len(measurement.trace.for_op("write")) == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MixedReadWriteWorkload(read_fraction=1.5)


class TestReplay:
    def test_exact_script(self):
        ops = [
            ReplayOp(0, "read", 0, 64 * KiB),
            ReplayOp(0, "write", 64 * KiB, 64 * KiB),
            ReplayOp(1, "read", 1 * MiB, 64 * KiB,
                     think_before_s=0.5),
        ]
        workload = ReplayWorkload(ops=ops, file_size=4 * MiB)
        measurement = workload.run(LOCAL)
        assert len(measurement.trace) == 3
        late = measurement.trace.for_pid(1)[0]
        assert late.start >= 0.5

    def test_controlled_overlap(self):
        # Two processes reading at the same instant: union < sum.
        ops = [
            ReplayOp(0, "read", 0, 1 * MiB),
            ReplayOp(1, "read", 2 * MiB, 1 * MiB),
        ]
        measurement = ReplayWorkload(ops=ops, file_size=4 * MiB).run(LOCAL)
        metrics = measurement.metrics()
        durations = measurement.trace.response_times().sum()
        assert metrics.union_io_time < durations

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ReplayWorkload(ops=[])
        with pytest.raises(WorkloadError):
            ReplayWorkload(ops=[ReplayOp(0, "read", 0, 32 * MiB)],
                           file_size=16 * MiB)
        with pytest.raises(WorkloadError):
            ReplayOp(0, "erase", 0, 10)
