"""Hpio-shaped workload: noncontiguous reads under data sieving."""

import pytest

from repro.errors import WorkloadError
from repro.middleware.sieving import SievingConfig
from repro.system import SystemConfig
from repro.util.units import KiB
from repro.workloads.hpio import HpioWorkload

PFS = SystemConfig(kind="pfs", n_servers=4)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            HpioWorkload(region_count=0)
        with pytest.raises(WorkloadError):
            HpioWorkload(region_size=0)
        with pytest.raises(WorkloadError):
            HpioWorkload(region_spacing=-1)
        with pytest.raises(WorkloadError):
            HpioWorkload(regions_per_call=0)


class TestAccessPattern:
    def test_app_bytes_are_region_bytes_only(self):
        workload = HpioWorkload(region_count=256, region_size=256,
                                region_spacing=1024, nproc=2)
        measurement = workload.run(PFS)
        assert measurement.trace.total_bytes() == 2 * 256 * 256

    def test_sieving_reads_holes_below(self):
        workload = HpioWorkload(region_count=256, region_size=256,
                                region_spacing=1024, nproc=1,
                                sieving=SievingConfig(max_hole=4 * KiB))
        measurement = workload.run(PFS)
        metrics = measurement.metrics()
        # fs moved regions + holes: amplification ~ (256+1024)/256 = 5.
        assert metrics.fs_amplification == pytest.approx(5.0, rel=0.05)

    def test_sieving_off_moves_exact_bytes(self):
        workload = HpioWorkload(region_count=256, region_size=256,
                                region_spacing=1024, nproc=1,
                                sieving=SievingConfig(enabled=False))
        measurement = workload.run(PFS)
        assert measurement.metrics().fs_amplification == \
            pytest.approx(1.0)

    def test_batching_controls_call_count(self):
        workload = HpioWorkload(region_count=256, region_size=256,
                                region_spacing=64, nproc=1,
                                regions_per_call=64)
        measurement = workload.run(PFS)
        assert len(measurement.trace) == 4  # 256 / 64 calls

    def test_processes_have_disjoint_sections(self):
        workload = HpioWorkload(region_count=64, region_size=256,
                                region_spacing=256, nproc=2)
        section = workload.section_bytes
        regions0 = workload._regions_for(0)
        regions1 = workload._regions_for(1)
        assert max(o + n for o, n in regions0) <= section
        assert min(o for o, _n in regions1) >= section

    def test_wider_spacing_slows_execution(self):
        tight = HpioWorkload(region_count=512, region_size=256,
                             region_spacing=8, nproc=2).run(PFS)
        sparse = HpioWorkload(region_count=512, region_size=256,
                              region_spacing=4096, nproc=2).run(PFS)
        assert sparse.exec_time > tight.exec_time
        # ... while the application got the same data.
        assert sparse.trace.total_bytes() == tight.trace.total_bytes()
