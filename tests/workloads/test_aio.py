"""Async read workload and the Set 5 extension sweep."""

import pytest

from repro.errors import WorkloadError
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.aio import AsyncReadWorkload

SSD = SystemConfig(kind="local", device_spec="pcie-ssd", cache_pages=0)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            AsyncReadWorkload(queue_depth=0)
        with pytest.raises(WorkloadError):
            AsyncReadWorkload(total_ops=0)
        with pytest.raises(WorkloadError):
            AsyncReadWorkload(pattern="zigzag")
        with pytest.raises(WorkloadError):
            AsyncReadWorkload(io_size=2 * MiB, file_size=1 * MiB)

    def test_sequential_overrun_rejected(self):
        with pytest.raises(WorkloadError):
            AsyncReadWorkload(file_size=1 * MiB, io_size=64 * KiB,
                              total_ops=100, pattern="sequential")


class TestExecution:
    def test_all_ops_complete_and_traced(self):
        workload = AsyncReadWorkload(total_ops=64, queue_depth=8)
        measurement = workload.run(SSD)
        assert len(measurement.trace) == 64
        assert measurement.extras["queue_depth"] == 8

    def test_deeper_queue_is_faster(self):
        shallow = AsyncReadWorkload(total_ops=64, queue_depth=1).run(SSD)
        deep = AsyncReadWorkload(total_ops=64, queue_depth=16).run(SSD)
        assert deep.exec_time < shallow.exec_time / 2

    def test_deeper_queue_raises_arpt(self):
        shallow = AsyncReadWorkload(total_ops=64, queue_depth=1).run(SSD)
        deep = AsyncReadWorkload(total_ops=64, queue_depth=32).run(SSD)
        assert deep.metrics().arpt > shallow.metrics().arpt

    def test_sequential_pattern(self):
        workload = AsyncReadWorkload(file_size=4 * MiB, io_size=16 * KiB,
                                     total_ops=64, queue_depth=4,
                                     pattern="sequential")
        measurement = workload.run(SSD)
        offsets = [r.offset for r in measurement.trace]
        assert sorted(offsets) == [i * 16 * KiB for i in range(64)]

    def test_determinism(self):
        a = AsyncReadWorkload(total_ops=32).run(SSD.with_seed(1))
        b = AsyncReadWorkload(total_ops=32).run(SSD.with_seed(1))
        assert a.exec_time == b.exec_time


class TestSet5Sweep:
    def test_extension_shape(self):
        from repro.experiments.runner import ExperimentScale
        from repro.experiments.set5 import run_set5
        sweep = run_set5(ExperimentScale(factor=0.5, repetitions=2))
        table = sweep.correlations()
        for name in ("IOPS", "BW", "BPS"):
            assert table[name].direction_correct
        assert not table["ARPT"].direction_correct
