"""Small-files workload and the PFS metadata path."""

import pytest

from repro.errors import WorkloadError
from repro.system import SystemConfig, build_system
from repro.util.units import KiB
from repro.workloads import SmallFilesWorkload

MDS = SystemConfig(kind="pfs", n_servers=2, with_mds=True)
NO_MDS = SystemConfig(kind="pfs", n_servers=2, with_mds=False)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            SmallFilesWorkload(files_per_proc=0)
        with pytest.raises(WorkloadError):
            SmallFilesWorkload(file_bytes=0)
        with pytest.raises(WorkloadError):
            SmallFilesWorkload(stats_per_file=-1)


class TestExecution:
    def test_files_created_and_written(self):
        workload = SmallFilesWorkload(files_per_proc=8, nproc=2)
        measurement = workload.run(MDS)
        writes = measurement.trace.for_op("write")
        assert len(writes) == 16
        assert all(r.nbytes == 4 * KiB for r in writes)

    def test_mds_makes_creates_cost_time(self):
        with_mds = SmallFilesWorkload(files_per_proc=16,
                                      nproc=1).run(MDS)
        without = SmallFilesWorkload(files_per_proc=16,
                                     nproc=1).run(NO_MDS)
        assert with_mds.exec_time > without.exec_time

    def test_metadata_recording_optional(self):
        silent = SmallFilesWorkload(files_per_proc=4, nproc=1,
                                    record_metadata=False).run(MDS)
        assert all(r.op == "write" for r in silent.trace)

    def test_stats_storm_is_pure_metadata(self):
        workload = SmallFilesWorkload(files_per_proc=4, nproc=1,
                                      stats_per_file=8)
        measurement = workload.run(MDS)
        stats = measurement.trace.filter(lambda r: r.op == "stat")
        assert len(stats) == 32
        assert measurement.trace.total_bytes() == \
            len(measurement.trace.for_op("write")) * 4 * KiB


class TestMetadataPath:
    def test_create_async_registers_file(self, engine):
        system = build_system(MDS)
        client = system.mount_for(0)

        def proc(eng):
            layout, start, end = yield client.create_async("f", 8 * KiB)
            return layout, start, end
        process = system.engine.spawn(proc(system.engine))
        system.engine.run()
        layout, start, end = process.result()
        assert client.exists("f")
        assert end > start  # the round trip cost simulated time
        assert system.pfs.metadata_ops == 1

    def test_stat_async_returns_size(self):
        system = build_system(MDS)
        client = system.mount_for(0)
        client.create("f", 8 * KiB)

        def proc(eng):
            size, _start, _end = yield client.stat_async("f")
            return size
        process = system.engine.spawn(proc(system.engine))
        system.engine.run()
        assert process.result() == 8 * KiB

    def test_mds_concurrency_limited(self):
        config = SystemConfig(kind="pfs", n_servers=2, with_mds=True,
                              mds_overhead_s=0.01)
        system = build_system(config)
        client = system.mount_for(0)

        def proc(eng, i):
            yield client.create_async(f"f{i}", 4 * KiB)
        for i in range(32):
            system.engine.spawn(proc(system.engine, i))
        system.engine.run()
        # 32 creates, 16 MDS threads, 10ms each: at least two waves.
        assert system.engine.now >= 0.02
