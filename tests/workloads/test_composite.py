"""Composite (multi-application) workloads."""

import pytest

from repro.errors import WorkloadError
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads import (
    CompositeWorkload,
    IORWorkload,
    IOzoneWorkload,
    RandomAccessWorkload,
)

LOCAL = SystemConfig(kind="local")
PFS = SystemConfig(kind="pfs", n_servers=4)


def two_apps():
    return CompositeWorkload(members=[
        IOzoneWorkload(file_size=4 * MiB, record_size=64 * KiB),
        RandomAccessWorkload(file_size=4 * MiB, ops_per_proc=32,
                             nproc=2),
    ])


class TestValidation:
    def test_no_members_rejected(self):
        with pytest.raises(WorkloadError):
            CompositeWorkload(members=[])

    def test_delay_count_mismatch(self):
        with pytest.raises(WorkloadError):
            CompositeWorkload(
                members=[IOzoneWorkload(file_size=1 * MiB,
                                        record_size=64 * KiB)],
                delays=(0.0, 1.0))

    def test_negative_delay(self):
        with pytest.raises(WorkloadError):
            CompositeWorkload(
                members=[IOzoneWorkload(file_size=1 * MiB,
                                        record_size=64 * KiB)],
                delays=(-1.0,))

    def test_member_pid_range_bounds(self):
        composite = two_apps()
        assert composite.member_pid_range(0) == range(0, 1000)
        assert composite.member_pid_range(1) == range(1000, 2000)
        with pytest.raises(WorkloadError):
            composite.member_pid_range(5)


class TestExecution:
    def test_both_apps_traced_with_disjoint_pids(self):
        composite = two_apps()
        measurement = composite.run(LOCAL)
        pids = set(measurement.trace.pids())
        assert 0 in pids                  # iozone (member 0)
        assert {1000, 1001} <= pids       # random (member 1)
        first = composite.member_trace(measurement.trace, 0)
        second = composite.member_trace(measurement.trace, 1)
        assert len(first) == 64           # 4MiB / 64KiB
        assert len(second) == 64          # 2 procs x 32 ops
        assert len(first) + len(second) == len(measurement.trace)

    def test_same_type_members_coexist(self):
        composite = CompositeWorkload(members=[
            IOzoneWorkload(file_size=2 * MiB, record_size=64 * KiB),
            IOzoneWorkload(file_size=2 * MiB, record_size=256 * KiB),
        ])
        measurement = composite.run(LOCAL)
        assert len(measurement.trace) == 32 + 8

    def test_delays_stagger_starts(self):
        composite = CompositeWorkload(
            members=[
                IOzoneWorkload(file_size=1 * MiB, record_size=256 * KiB),
                IOzoneWorkload(file_size=1 * MiB, record_size=256 * KiB),
            ],
            delays=(0.0, 1.0),
        )
        measurement = composite.run(LOCAL)
        late = composite.member_trace(measurement.trace, 1)
        assert min(r.start for r in late) >= 1.0

    def test_mpiio_members_on_pfs(self):
        composite = CompositeWorkload(members=[
            IORWorkload(file_size=2 * MiB, transfer_size=64 * KiB,
                        nproc=2),
            IORWorkload(file_size=2 * MiB, transfer_size=64 * KiB,
                        nproc=2),
        ])
        measurement = composite.run(PFS)
        pids = set(measurement.trace.pids())
        assert pids == {0, 1, 1000, 1001}

    def test_interference_slows_both(self):
        solo = IOzoneWorkload(file_size=4 * MiB,
                              record_size=64 * KiB).run(LOCAL)
        shared = two_apps().run(LOCAL)
        composite = two_apps()
        member = composite.member_trace(shared.trace, 0)
        solo_span = solo.trace.span()[1] - solo.trace.span()[0]
        shared_span = member.span()[1] - member.span()[0]
        assert shared_span > solo_span  # the random app got in the way

    def test_label_mentions_members(self):
        assert "iozone" in two_apps().label()
        assert "random" in two_apps().label()
