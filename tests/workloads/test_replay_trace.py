"""Trace replay workload: what-if analysis correctness."""

import pytest

from repro.core.records import IORecord, TraceCollection
from repro.errors import WorkloadError
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads import IOzoneWorkload, TraceReplayWorkload

LOCAL = SystemConfig(kind="local")
SSD = SystemConfig(kind="local", device_spec="pcie-ssd")


def simple_trace():
    return TraceCollection([
        IORecord(0, "read", 64 * KiB, 0.0, 0.01, file="a", offset=0),
        IORecord(0, "read", 64 * KiB, 0.02, 0.03, file="a",
                 offset=64 * KiB),
        IORecord(1, "write", 32 * KiB, 0.0, 0.02, file="b", offset=0),
    ])


class TestValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            TraceReplayWorkload(trace=TraceCollection())

    def test_bad_mode_rejected(self):
        with pytest.raises(WorkloadError):
            TraceReplayWorkload(trace=simple_trace(), mode="reverse")


class TestReplaySemantics:
    def test_same_ops_same_bytes(self):
        measurement = TraceReplayWorkload(trace=simple_trace()).run(LOCAL)
        assert len(measurement.trace) == 3
        assert measurement.trace.total_bytes() == \
            simple_trace().total_bytes()
        assert len(measurement.trace.for_op("write")) == 1

    def test_offsets_preserved(self):
        measurement = TraceReplayWorkload(trace=simple_trace()).run(LOCAL)
        replayed_offsets = sorted(
            r.offset for r in measurement.trace.for_pid(0))
        assert replayed_offsets == [0, 64 * KiB]

    def test_timed_mode_keeps_think_gaps(self):
        # pid 0 has a 10ms gap between its two reads.
        timed = TraceReplayWorkload(trace=simple_trace(),
                                    mode="timed").run(SSD)
        asap = TraceReplayWorkload(trace=simple_trace(),
                                   mode="asap").run(SSD)
        assert timed.exec_time > asap.exec_time
        assert timed.exec_time >= 0.01  # at least the original gap

    def test_anonymous_offsets_laid_out_sequentially(self):
        trace = TraceCollection([
            IORecord(0, "read", 4 * KiB, 0.0, 0.001),
            IORecord(0, "read", 4 * KiB, 0.001, 0.002),
        ])
        measurement = TraceReplayWorkload(trace=trace).run(LOCAL)
        offsets = sorted(r.offset for r in measurement.trace)
        assert offsets == [0, 4 * KiB]

    def test_round_trip_self_replay_is_stable(self):
        """Replaying a simulated trace on the same platform roughly
        reproduces its timing (closed-loop replay is not exact — device
        state differs — but within a small factor)."""
        original = IOzoneWorkload(file_size=4 * MiB,
                                  record_size=64 * KiB).run(LOCAL)
        replayed = TraceReplayWorkload(trace=original.trace,
                                       mode="asap").run(LOCAL)
        assert replayed.exec_time == pytest.approx(
            original.exec_time, rel=0.15)

    def test_faster_platform_projected_faster(self):
        # Random 4KiB reads: seek-bound on HDD, latency-bound on SSD —
        # the platform change the what-if engine exists for.
        from repro.workloads import RandomAccessWorkload
        original = RandomAccessWorkload(file_size=16 * MiB,
                                        ops_per_proc=64,
                                        nproc=1).run(LOCAL)
        on_ssd = TraceReplayWorkload(trace=original.trace,
                                     mode="asap").run(SSD)
        assert on_ssd.exec_time < original.exec_time / 10


class TestReplayProperties:
    from hypothesis import given, settings, strategies as st

    records_strategy = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),        # pid
            st.sampled_from(["read", "write"]),           # op
            st.integers(min_value=0, max_value=64),       # offset slot
            st.integers(min_value=1, max_value=16),       # size (KiB)
            st.floats(min_value=0, max_value=0.2,
                      allow_nan=False),                   # start
            st.floats(min_value=0.001, max_value=0.05,
                      allow_nan=False),                   # duration
        ),
        min_size=1, max_size=20)

    @given(records_strategy)
    @settings(max_examples=25, deadline=None)
    def test_replay_conserves_ops_and_bytes(self, specs):
        from repro.core.records import IORecord, TraceCollection
        trace = TraceCollection([
            IORecord(pid=pid, op=op, nbytes=size * 1024,
                     start=start, end=start + duration,
                     offset=slot * 16 * 1024, file="data")
            for pid, op, slot, size, start, duration in specs
        ])
        measurement = TraceReplayWorkload(trace=trace,
                                          mode="asap").run(LOCAL)
        assert len(measurement.trace) == len(trace)
        assert measurement.trace.total_bytes() == trace.total_bytes()
        assert measurement.trace.pids() == trace.pids()
        replayed_ops = sorted((r.pid, r.op, r.offset, r.nbytes)
                              for r in measurement.trace)
        original_ops = sorted((r.pid, r.op, r.offset, r.nbytes)
                              for r in trace)
        assert replayed_ops == original_ops


class TestCLI:
    def test_replay_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace_io.csvtrace import write_csv_trace
        path = tmp_path / "t.csv"
        write_csv_trace(simple_trace(), path)
        assert main(["replay", str(path), "--device", "pcie-ssd"]) == 0
        out = capsys.readouterr().out
        assert "projected speedup" in out
        assert "replayed on pcie-ssd" in out
