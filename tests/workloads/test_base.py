"""Workload lifecycle: run_workload error handling and measurement."""

from typing import Generator

import pytest

from repro.errors import WorkloadError
from repro.system import System, SystemConfig
from repro.workloads.base import Workload, run_workload


class FailingWorkload(Workload):
    """A workload whose only process raises mid-run."""

    name = "failing"

    def setup(self, system: System) -> None:
        system.shared_mount().create("f", 1024 * 1024)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        def proc(engine):
            yield engine.timeout(0.1)
            raise RuntimeError("application crashed")
        return [(0, proc(system.engine))]


class EmptyWorkload(Workload):
    """A workload with no processes at all."""

    name = "empty"

    def setup(self, system: System) -> None:
        pass

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return []


class ZeroWorkWorkload(Workload):
    """Processes that finish without simulating any time."""

    name = "zerowork"

    def setup(self, system: System) -> None:
        pass

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        def proc(engine):
            return 0
            yield  # pragma: no cover
        return [(0, proc(system.engine))]


class TestRunWorkload:
    def test_process_failure_surfaces(self):
        with pytest.raises(RuntimeError, match="application crashed"):
            run_workload(FailingWorkload(), SystemConfig(kind="local"))

    def test_no_processes_rejected(self):
        with pytest.raises(WorkloadError, match="no processes"):
            run_workload(EmptyWorkload(), SystemConfig(kind="local"))

    def test_zero_time_rejected(self):
        with pytest.raises(WorkloadError, match="zero time"):
            run_workload(ZeroWorkWorkload(), SystemConfig(kind="local"))

    def test_measurement_carries_context(self):
        from repro.workloads import IOzoneWorkload
        from repro.util.units import KiB, MiB
        measurement = run_workload(
            IOzoneWorkload(file_size=1 * MiB, record_size=64 * KiB),
            SystemConfig(kind="local", device_spec="pcie-ssd"))
        assert measurement.extras["device_spec"] == "pcie-ssd"
        assert measurement.extras["config_kind"] == "local"
        assert measurement.label.startswith("iozone")

    def test_default_pid_base_zero(self):
        assert FailingWorkload().pid_base == 0

    def test_device_report_in_extras(self):
        from repro.workloads import IOzoneWorkload
        from repro.util.units import KiB, MiB
        measurement = run_workload(
            IOzoneWorkload(file_size=1 * MiB, record_size=64 * KiB),
            SystemConfig(kind="pfs", n_servers=2))
        devices = measurement.extras["devices"]
        assert len(devices) == 2
        moved = sum(d["bytes_moved"] for d in devices)
        assert moved == 1 * MiB
        assert all(0.0 <= d["utilization"] <= 1.0 for d in devices)
