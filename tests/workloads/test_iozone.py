"""IOzone-shaped workload."""

import pytest

from repro.errors import WorkloadError
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.iozone import IOzoneWorkload

LOCAL = SystemConfig(kind="local")
PFS = SystemConfig(kind="pfs", n_servers=4)


class TestValidation:
    def test_bad_op(self):
        with pytest.raises(WorkloadError):
            IOzoneWorkload(op="scan")

    def test_bad_mode(self):
        with pytest.raises(WorkloadError):
            IOzoneWorkload(mode="turbo")

    def test_sequential_must_be_single_process(self):
        with pytest.raises(WorkloadError):
            IOzoneWorkload(mode="sequential", nproc=2)

    def test_share_below_record_rejected(self):
        with pytest.raises(WorkloadError):
            IOzoneWorkload(file_size=64 * KiB, record_size=64 * KiB,
                           nproc=4, mode="throughput")


class TestSequential:
    def test_reads_whole_file(self):
        workload = IOzoneWorkload(file_size=2 * MiB, record_size=64 * KiB)
        measurement = workload.run(LOCAL)
        assert len(measurement.trace) == 32
        assert measurement.trace.total_bytes() == 2 * MiB
        assert measurement.fs_bytes == 2 * MiB
        assert measurement.exec_time > 0

    def test_write_mode(self):
        workload = IOzoneWorkload(file_size=1 * MiB, record_size=64 * KiB,
                                  op="write")
        measurement = workload.run(LOCAL)
        assert all(r.op == "write" for r in measurement.trace)

    def test_think_time_creates_idle_gaps(self):
        quick = IOzoneWorkload(file_size=1 * MiB, record_size=256 * KiB)
        thoughtful = IOzoneWorkload(file_size=1 * MiB,
                                    record_size=256 * KiB,
                                    think_time_s=0.05)
        fast = quick.run(LOCAL)
        slow = thoughtful.run(LOCAL)
        assert slow.exec_time > fast.exec_time
        # Union I/O time excludes the compute gaps (paper section III.A).
        assert slow.metrics().union_io_time == pytest.approx(
            fast.metrics().union_io_time, rel=0.2)


class TestThroughput:
    def test_total_volume_fixed_across_nproc(self):
        for nproc in (2, 4):
            workload = IOzoneWorkload(file_size=4 * MiB,
                                      record_size=64 * KiB,
                                      nproc=nproc, mode="throughput")
            measurement = workload.run(LOCAL)
            assert measurement.trace.total_bytes() == 4 * MiB
            assert len(measurement.trace.pids()) == nproc

    def test_pinning_requires_pfs(self):
        workload = IOzoneWorkload(file_size=4 * MiB, record_size=64 * KiB,
                                  nproc=2, mode="throughput",
                                  pin_files_to_servers=True)
        with pytest.raises(WorkloadError):
            workload.run(LOCAL)

    def test_pinned_files_land_on_distinct_servers(self):
        workload = IOzoneWorkload(file_size=4 * MiB, record_size=64 * KiB,
                                  nproc=4, mode="throughput",
                                  pin_files_to_servers=True)
        measurement = workload.run(PFS)
        # All four server disks saw traffic (one file each).
        assert measurement.extras["nproc"] == 4
        assert measurement.fs_bytes == 4 * MiB

    def test_concurrency_reduces_exec_time(self):
        single = IOzoneWorkload(file_size=4 * MiB, record_size=64 * KiB,
                                nproc=1, mode="throughput",
                                pin_files_to_servers=True).run(PFS)
        quad = IOzoneWorkload(file_size=4 * MiB, record_size=64 * KiB,
                              nproc=4, mode="throughput",
                              pin_files_to_servers=True).run(PFS)
        assert quad.exec_time < single.exec_time

    def test_label_mentions_parameters(self):
        workload = IOzoneWorkload(file_size=1 * MiB, record_size=64 * KiB)
        assert "rec=65536" in workload.label()
