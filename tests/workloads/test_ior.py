"""IOR-shaped workload."""

import pytest

from repro.errors import WorkloadError
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.ior import IORWorkload

PFS = SystemConfig(kind="pfs", n_servers=4)


class TestValidation:
    def test_bad_op(self):
        with pytest.raises(WorkloadError):
            IORWorkload(op="trim")

    def test_segment_below_transfer_rejected(self):
        with pytest.raises(WorkloadError):
            IORWorkload(file_size=128 * KiB, transfer_size=64 * KiB,
                        nproc=4)

    def test_collective_write_unsupported(self):
        with pytest.raises(WorkloadError):
            IORWorkload(op="write", collective=True)


class TestSegmentedAccess:
    def test_each_rank_reads_its_segment(self):
        workload = IORWorkload(file_size=4 * MiB, transfer_size=64 * KiB,
                               nproc=4)
        measurement = workload.run(PFS)
        assert len(measurement.trace.pids()) == 4
        assert measurement.trace.total_bytes() == 4 * MiB
        # Rank r's offsets all fall inside [r, r+1) MiB.
        for record in measurement.trace:
            segment = record.offset // (1 * MiB)
            assert segment == record.pid

    def test_fixed_transfer_size(self):
        workload = IORWorkload(file_size=2 * MiB, transfer_size=64 * KiB,
                               nproc=2)
        measurement = workload.run(PFS)
        assert {r.nbytes for r in measurement.trace} == {64 * KiB}

    def test_write_mode(self):
        workload = IORWorkload(file_size=2 * MiB, transfer_size=64 * KiB,
                               nproc=2, op="write")
        measurement = workload.run(PFS)
        assert all(r.op == "write" for r in measurement.trace)

    def test_collective_mode_runs(self):
        workload = IORWorkload(file_size=2 * MiB, transfer_size=64 * KiB,
                               nproc=2, collective=True)
        measurement = workload.run(PFS)
        assert len(measurement.trace) == 32  # 16 rounds x 2 ranks

    def test_more_ranks_cut_exec_time(self):
        two = IORWorkload(file_size=4 * MiB, transfer_size=64 * KiB,
                          nproc=2).run(PFS)
        eight = IORWorkload(file_size=4 * MiB, transfer_size=64 * KiB,
                            nproc=8).run(PFS)
        assert eight.exec_time < two.exec_time

    def test_works_on_local_system_too(self):
        workload = IORWorkload(file_size=2 * MiB, transfer_size=64 * KiB,
                               nproc=2)
        measurement = workload.run(SystemConfig(kind="local"))
        assert measurement.trace.total_bytes() == 2 * MiB
