"""TraceGraph: bucketing, order independence, bounded memory."""

import random

import pytest

from repro.core.records import IORecord
from repro.diagnose import DiagnoseError, TraceGraph, WindowGraph
from repro.live.chunk import chunk_trace
from repro.core.records import TraceCollection


def rec(pid=0, op="read", nbytes=4096, start=0.0, end=0.01, *,
        offset=-1, success=True, retries=0):
    return IORecord(pid=pid, op=op, nbytes=nbytes, start=start, end=end,
                    offset=offset, success=success, retries=retries)


def server_of_offset(record):
    if record.offset < 0:
        return "?"
    return f"server{(record.offset // 65536) % 3}"


def graph_key(g: WindowGraph):
    return (g.index, g.edges, tuple(sorted(g.occupancy.items())),
            tuple(sorted(g.max_end.items())),
            tuple(sorted(g.pid_max_end.items())))


def assert_graphs_close(a: WindowGraph, b: WindowGraph):
    """Equal up to float-summation order (shuffled ingest reorders the
    dur_sum additions; counts, maxima, and structure must be exact)."""
    assert a.index == b.index
    assert len(a.edges) == len(b.edges)
    for ea, eb in zip(a.edges, b.edges):
        assert (ea.pid, ea.op, ea.server, ea.ops, ea.blocks,
                ea.retries, ea.failures) == \
            (eb.pid, eb.op, eb.server, eb.ops, eb.blocks,
             eb.retries, eb.failures)
        assert ea.dur_sum == pytest.approx(eb.dur_sum)
    assert sorted(a.occupancy) == sorted(b.occupancy)
    for server in a.occupancy:
        assert a.occupancy[server] == pytest.approx(b.occupancy[server])
    assert a.max_end == b.max_end
    assert a.pid_max_end == b.pid_max_end


class TestConfig:
    @pytest.mark.parametrize("window", [0.0, -1.0, float("nan")])
    def test_bad_window_rejected(self, window):
        with pytest.raises(DiagnoseError):
            TraceGraph(window=window, origin=0.0)

    def test_bad_block_size_rejected(self):
        with pytest.raises(DiagnoseError):
            TraceGraph(window=0.1, origin=0.0, block_size=0)

    def test_origin_defaults_to_first_record(self):
        g = TraceGraph(window=0.1)
        g.add_record(rec(start=5.03, end=5.04))
        assert g.origin == 5.03
        assert g.window_graph(0).ops == 1


class TestBucketing:
    def test_record_lands_wholly_in_start_window(self):
        g = TraceGraph(window=0.1, origin=0.0)
        # Starts in window 0, ends deep inside window 2.
        g.add_record(rec(start=0.05, end=0.25))
        assert g.window_graph(0).ops == 1
        assert g.window_graph(1).ops == 0
        assert g.window_graph(2).ops == 0

    def test_dur_sum_is_unclipped_occupancy_is_clipped(self):
        g = TraceGraph(window=0.1, origin=0.0, server_of=server_of_offset)
        g.add_record(rec(start=0.05, end=0.25, offset=0))
        wg = g.window_graph(0)
        # Full 0.2 s response time, but only 0.05 s inside window 0.
        assert wg.dur_sum == pytest.approx(0.2)
        assert wg.occupancy["server0"] == pytest.approx(0.05)
        # max_end keeps the unclipped reach for the lookback rules.
        assert wg.max_end["server0"] == pytest.approx(0.25)
        assert wg.pid_max_end[0] == pytest.approx(0.25)

    def test_occupancy_is_union_not_sum(self):
        g = TraceGraph(window=0.1, origin=0.0, server_of=server_of_offset)
        g.add_record(rec(start=0.01, end=0.05, offset=0))
        g.add_record(rec(pid=1, start=0.02, end=0.06, offset=0))
        assert g.window_graph(0).occupancy["server0"] == \
            pytest.approx(0.05)  # overlap collapsed

    def test_failures_and_retries_accumulate(self):
        g = TraceGraph(window=0.1, origin=0.0)
        g.add_record(rec(success=False, retries=2))
        g.add_record(rec(retries=1))
        wg = g.window_graph(0)
        assert wg.failures == 1
        assert wg.retries == 3

    def test_blocks_round_up(self):
        g = TraceGraph(window=0.1, origin=0.0, block_size=512)
        g.add_record(rec(nbytes=513))
        assert g.window_graph(0).edges[0].blocks == 2

    def test_no_server_key_degrades_to_question_mark(self):
        g = TraceGraph(window=0.1, origin=0.0)
        g.add_record(rec())
        assert g.window_graph(0).edges[0].server == "?"

    def test_untouched_window_is_empty(self):
        g = TraceGraph(window=0.1, origin=0.0)
        wg = g.window_graph(7)
        assert wg.ops == 0 and wg.edges == () and wg.occupancy == {}


class TestOrderIndependence:
    def records(self, n=200, seed=3):
        rng = random.Random(seed)
        out = []
        for i in range(n):
            start = rng.uniform(0.0, 1.0)
            out.append(rec(pid=i % 4, op="read" if i % 2 else "write",
                           nbytes=rng.choice([512, 4096, 65536]),
                           start=start,
                           end=start + rng.uniform(0.001, 0.3),
                           offset=rng.randrange(0, 8) * 65536,
                           success=rng.random() > 0.1,
                           retries=rng.randrange(0, 3)))
        return out

    def build(self, records):
        g = TraceGraph(window=0.1, origin=0.0,
                       server_of=server_of_offset)
        for r in records:
            g.add_record(r)
        return g

    def test_shuffled_ingest_builds_identical_graphs(self):
        records = self.records()
        a = self.build(records)
        shuffled = list(records)
        random.Random(99).shuffle(shuffled)
        b = self.build(shuffled)
        for i in range(12):
            assert_graphs_close(a.window_graph(i), b.window_graph(i))

    def test_chunked_ingest_matches_per_record_bit_for_bit(self):
        records = self.records()
        # Same delivery order (completion) on both paths -> identical
        # float-addition order -> bit-identical buckets.
        a = self.build(sorted(records, key=lambda r: (r.end, r.start)))
        b = TraceGraph(window=0.1, origin=0.0,
                       server_of=server_of_offset)
        for chunk in chunk_trace(TraceCollection(records), chunk_size=17,
                                 order="completion"):
            b.add_chunk(chunk)
        for i in range(12):
            assert graph_key(a.window_graph(i)) == \
                graph_key(b.window_graph(i))


class TestPop:
    def test_pop_releases_the_bucket(self):
        g = TraceGraph(window=0.1, origin=0.0)
        g.add_record(rec(start=0.01, end=0.02))
        g.add_record(rec(start=0.15, end=0.16))
        assert g.open_windows == 2
        first = g.pop_window(0)
        assert first.ops == 1
        assert g.open_windows == 1
        # Popped window reads back empty: memory stays O(open windows).
        assert g.window_graph(0).ops == 0

    def test_by_server_and_by_pid_aggregate_edges(self):
        g = TraceGraph(window=0.1, origin=0.0,
                       server_of=server_of_offset)
        g.add_record(rec(pid=0, op="read", offset=0, start=0.0, end=0.01))
        g.add_record(rec(pid=0, op="write", offset=0, start=0.0,
                         end=0.02, retries=1))
        g.add_record(rec(pid=1, op="read", offset=65536, start=0.0,
                         end=0.03, success=False))
        wg = g.pop_window(0)
        srv = wg.by_server()
        assert srv["server0"][0] == 2  # ops
        assert srv["server0"][2] == 1  # retries
        assert srv["server1"][3] == 1  # failures
        pid = wg.by_pid()
        assert pid[0][0] == 2 and pid[1][0] == 1
        assert pid[0][1] == pytest.approx(0.03)
