"""Streaming and offline attribution agree suspect-for-suspect.

The tentpole's parity contract: a live tap during the run and a
post-hoc ``diagnose_trace`` over the same records must produce
IDENTICAL ranked suspects — same kinds, same targets, same scores.
"""

import pytest

from repro.core.records import TraceCollection
from repro.diagnose import diagnose_trace, ranked_suspects, stripe_server_of
from repro.errors import LiveStreamError
from repro.faults.plan import SERVER_CRASH, FaultEvent, FaultPlan
from repro.live import BpsAnomalyDetector, LiveTap
from repro.live.replay import watch_trace
from repro.middleware.retry import RetryPolicy
from repro.system import SystemConfig
from repro.util.units import KiB, MiB
from repro.workloads.base import run_workload
from repro.workloads.synthetic import RandomAccessWorkload

WINDOW = 0.02
#: Longer than the longest request in the crash run, so no record
#: ever misses its bucket on either path (the exact-parity regime).
LAG = 0.4


def detector():
    return BpsAnomalyDetector(drop_factor=2.5, history=8, min_history=3)


@pytest.fixture(scope="module")
def crash_run():
    """One crashed-server run, observed live AND recorded."""
    workload = RandomAccessWorkload(file_size=8 * MiB, io_size=4 * KiB,
                                    ops_per_proc=128, nproc=4)
    plan = FaultPlan((FaultEvent(kind=SERVER_CRASH, target="server0",
                                 at=0.16, duration=0.08),))
    cfg = SystemConfig(kind="pfs", n_servers=3,
                       device_spec="sata-hdd-7200", replication=1,
                       fault_plan=plan, seed=11,
                       retry_policy=RetryPolicy(max_retries=6,
                                                backoff_base_s=0.004,
                                                failover=False))
    holder = {}
    records = []

    def attach(system):
        system.recorder.subscribe(records.append)
        holder["tap"] = LiveTap(system, window=WINDOW,
                                heartbeat_s=WINDOW,
                                detector=detector(), attribute=True,
                                watermark_lag=LAG)

    metrics = run_workload(workload, cfg, on_system=attach)
    live = holder["tap"].result(exec_time=metrics.exec_time)
    return live, TraceCollection(records), metrics.exec_time


def assert_anomalies_match(got, want):
    """Same flagged windows, identical suspects; the windowed BPS
    figures may differ in float-summation order across ingest paths."""
    assert [a.window_index for a in got] == \
        [a.window_index for a in want]
    for a, b in zip(got, want):
        assert a.suspects == b.suspects
        assert a.bps == pytest.approx(b.bps, rel=1e-6)
        assert a.baseline == pytest.approx(b.baseline, rel=1e-2)


class TestStreamingOfflineParity:
    def test_live_and_posthoc_suspects_identical(self, crash_run):
        live, trace, exec_time = crash_run
        diag = diagnose_trace(trace, window=WINDOW, origin=0.0,
                              detector=detector(),
                              server_of=stripe_server_of(3),
                              watermark_lag=LAG,
                              exec_time=exec_time)
        assert live.anomalies  # the crash must have been flagged
        assert_anomalies_match(live.anomalies, diag.anomalies)
        assert ranked_suspects(live.anomalies) == diag.suspects
        assert diag.top_suspect == ranked_suspects(live.anomalies)[0]

    def test_chunked_replay_matches_per_record(self, crash_run):
        _live, trace, exec_time = crash_run
        by_record = watch_trace(trace, window=WINDOW, origin=0.0,
                                detector=detector(), attribute=True,
                                server_of=stripe_server_of(3),
                                watermark_lag=LAG,
                                exec_time=exec_time)
        chunked = watch_trace(trace, window=WINDOW, origin=0.0,
                              chunk_size=64, detector=detector(),
                              attribute=True,
                              server_of=stripe_server_of(3),
                              watermark_lag=LAG,
                              exec_time=exec_time)
        assert_anomalies_match(by_record.anomalies, chunked.anomalies)

    def test_diagnosis_report_is_json_safe(self, crash_run):
        import json
        _live, trace, exec_time = crash_run
        diag = diagnose_trace(trace, window=WINDOW, origin=0.0,
                              detector=detector(),
                              server_of=stripe_server_of(3),
                              exec_time=exec_time)
        report = json.loads(json.dumps(diag.as_dict()))
        assert report["anomalies"]
        assert report["top_suspect"]["kind"] == \
            diag.top_suspect.kind
        for event in report["anomalies"]:
            # inf never leaks into the JSON payload (satellite: the
            # stalled-severity sentinel).
            assert event["severity"] is None or \
                isinstance(event["severity"], float)

    def test_attribution_rejects_sharded_ingest(self, crash_run):
        _live, trace, _exec = crash_run
        with pytest.raises(LiveStreamError):
            watch_trace(trace, window=WINDOW, workers=2, attribute=True)
