"""Attributor: diff rules on synthetic graphs, plus the seeded
fault-class sweep (precision / recall against FaultPlan ground truth).
"""

from types import SimpleNamespace

import pytest

from repro.core.records import IORecord
from repro.diagnose import (
    FAULT_KIND_SUSPECTS,
    LINK_DEGRADE,
    SERVER_DEGRADE,
    SERVER_STALL,
    WINDOW_STALL,
    Attributor,
    DiagnoseError,
    Suspect,
    ranked_suspects,
)
from repro.live.anomaly import Anomaly, BpsAnomalyDetector

WINDOW = 0.1
OFFSETS = (0, 65536, 131072)  # server0..server2 under 64 KiB stripes


def server_of(record):
    if record.offset < 0:
        return "?"
    return f"server{(record.offset // 65536) % 3}"


def stats_for(index, io_time=0.06):
    return SimpleNamespace(index=index, start=index * WINDOW,
                           end=(index + 1) * WINDOW, io_time=io_time)


def flag_for(index):
    return Anomaly(kind="bps-drop", window_index=index,
                   window_start=index * WINDOW,
                   window_end=(index + 1) * WINDOW,
                   bps=10.0, baseline=100.0, severity=10.0)


def healthy_records(index, dur=0.01):
    """Two pids, one op per server each, baseline-grade latency."""
    w0 = index * WINDOW
    out = []
    for pid in (0, 1):
        for k, offset in enumerate(OFFSETS):
            start = w0 + 0.02 * k + 0.005 * pid
            out.append(IORecord(pid=pid, op="read", nbytes=4096,
                                start=start, end=start + dur,
                                offset=offset))
    return out


def warmed_attributor(n_healthy=5, **kwargs):
    kwargs.setdefault("window", WINDOW)
    kwargs.setdefault("origin", 0.0)
    kwargs.setdefault("server_of", server_of)
    att = Attributor(**kwargs)
    for i in range(n_healthy):
        for record in healthy_records(i):
            att.add_record(record)
        assert att.observe_window(stats_for(i), None) == ()
    return att


class TestConfig:
    def test_bad_history_rejected(self):
        with pytest.raises(DiagnoseError):
            Attributor(window=WINDOW, history=2, min_history=3)

    @pytest.mark.parametrize("kwargs", [
        {"latency_factor": 1.0},
        {"concentration": 0.9},
        {"stall_span": 0.0},
        {"stall_span": 1.5},
    ])
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(DiagnoseError):
            Attributor(window=WINDOW, **kwargs)

    def test_for_detector_mirrors_learning_horizon(self):
        detector = BpsAnomalyDetector(history=6, min_history=2)
        att = Attributor.for_detector(detector, window=WINDOW)
        assert att._baseline.maxlen == 6
        assert att.min_history == 2


class TestDiffRules:
    def test_warmup_flag_yields_no_suspects(self):
        att = warmed_attributor(n_healthy=1)
        for record in healthy_records(1):
            att.add_record(record)
        assert att.observe_window(stats_for(1), flag_for(1)) == ()

    def test_slow_server_becomes_server_degrade(self):
        att = warmed_attributor()
        w0 = 5 * WINDOW
        for pid in (0, 1):
            att.add_record(IORecord(pid=pid, op="read", nbytes=4096,
                                    start=w0 + 0.005 * pid,
                                    end=w0 + 0.005 * pid + 0.05,
                                    offset=0))
            for k, offset in enumerate(OFFSETS[1:], start=1):
                start = w0 + 0.02 * k + 0.005 * pid
                att.add_record(IORecord(pid=pid, op="read", nbytes=4096,
                                        start=start, end=start + 0.01,
                                        offset=offset))
        suspects = att.observe_window(stats_for(5), flag_for(5))
        assert suspects
        top = suspects[0]
        assert (top.kind, top.target) == (SERVER_DEGRADE, "server0")
        assert "5.0x baseline" in top.evidence

    def test_window_scale_hold_becomes_link_degrade(self):
        att = warmed_attributor()
        w0 = 5 * WINDOW
        for pid in (0, 1):
            # 15x baseline, zero failures: parked at the wire, not
            # queued at the device.
            att.add_record(IORecord(pid=pid, op="read", nbytes=4096,
                                    start=w0 + 0.005 * pid,
                                    end=w0 + 0.005 * pid + 0.15,
                                    offset=0))
            for k, offset in enumerate(OFFSETS[1:], start=1):
                start = w0 + 0.02 * k + 0.005 * pid
                att.add_record(IORecord(pid=pid, op="read", nbytes=4096,
                                        start=start, end=start + 0.01,
                                        offset=offset))
        suspects = att.observe_window(stats_for(5), flag_for(5))
        top = suspects[0]
        assert (top.kind, top.target) == (LINK_DEGRADE, "server0")

    def test_concentrated_failures_become_server_stall(self):
        att = warmed_attributor()
        w0 = 5 * WINDOW
        for i in range(3):
            att.add_record(IORecord(pid=0, op="read", nbytes=4096,
                                    start=w0 + 0.01 * i,
                                    end=w0 + 0.01 * i + 0.001,
                                    offset=0, success=False, retries=2))
        for pid in (0, 1):
            for k, offset in enumerate(OFFSETS[1:], start=1):
                start = w0 + 0.02 * k + 0.005 * pid
                att.add_record(IORecord(pid=pid, op="read", nbytes=4096,
                                        start=start, end=start + 0.01,
                                        offset=offset))
        suspects = att.observe_window(stats_for(5), flag_for(5))
        top = suspects[0]
        assert (top.kind, top.target) == (SERVER_STALL, "server0")
        assert top.score > 100.0  # outranks every latency-shift rule

    def test_empty_window_falls_back_to_window_stall(self):
        att = warmed_attributor()
        suspects = att.observe_window(stats_for(5, io_time=0.0),
                                      flag_for(5))
        assert [s.kind for s in suspects] == [WINDOW_STALL]

    def test_failure_burst_never_joins_the_baseline(self):
        att = warmed_attributor()
        before = len(att._baseline)
        w0 = 5 * WINDOW
        for i in range(10):
            att.add_record(IORecord(pid=0, op="read", nbytes=4096,
                                    start=w0 + 0.005 * i,
                                    end=w0 + 0.005 * i + 0.0005,
                                    offset=0, success=False, retries=1))
        # Detector silent (fail-fast storms RAISE windowed BPS), but
        # the window must not poison later diffs.
        att.observe_window(stats_for(5), None)
        assert len(att._baseline) == before


class TestRanking:
    def test_ranked_suspects_merges_and_sorts(self):
        a = Suspect(kind=SERVER_DEGRADE, target="server1", score=17.0,
                    evidence="slow")
        b = Suspect(kind=SERVER_STALL, target="server0", score=103.0,
                    evidence="dead")
        first = Anomaly(kind="bps-drop", window_index=5,
                        window_start=0.5, window_end=0.6, bps=10.0,
                        baseline=100.0, severity=10.0, suspects=(a,))
        second = Anomaly(kind="bps-drop", window_index=6,
                         window_start=0.6, window_end=0.7, bps=10.0,
                         baseline=100.0, severity=10.0, suspects=(b,))
        assert ranked_suspects([first, second]) == (b, a)

    def test_suspect_event_is_json_safe(self):
        import json
        s = Suspect(kind=SERVER_STALL, target="server0", score=103.0,
                    evidence="dead")
        event = json.loads(json.dumps(s.as_event()))
        assert event["kind"] == SERVER_STALL
        assert event["target"] == "server0"
        assert event["score"] == 103.0


# --------------------------------------------------------------------------
# Seeded fault-class sweep: FaultPlan is ground truth.  Parameters are
# frozen from the tuning sweep (window 0.02 s, 3-server PFS on
# sata-hdd-7200, fault at 0.16 s for 0.08 s); the watermark lag must
# exceed the longest in-flight request, so the straggler case — whose
# held op spans the whole fault (~0.33 s) — uses 0.4 s.
# --------------------------------------------------------------------------

from repro.faults.plan import (  # noqa: E402
    DEVICE_DEGRADE,
    LINK_DOWN,
    SERVER_CRASH,
    STRAGGLER,
    FaultEvent,
    FaultPlan,
)
from repro.live import LiveTap  # noqa: E402
from repro.middleware.retry import RetryPolicy  # noqa: E402
from repro.system import SystemConfig  # noqa: E402
from repro.util.units import KiB, MiB  # noqa: E402
from repro.workloads.base import run_workload  # noqa: E402
from repro.workloads.synthetic import RandomAccessWorkload  # noqa: E402

SWEEP_WINDOW = 0.02
FAULT_AT, FAULT_FOR = 0.16, 0.08
SEEDS = (11, 41)

SWEEP_CASES = {
    SERVER_CRASH: dict(
        event=FaultEvent(kind=SERVER_CRASH, target="server0",
                         at=FAULT_AT, duration=FAULT_FOR)),
    DEVICE_DEGRADE: dict(
        event=FaultEvent(kind=DEVICE_DEGRADE, target="server0.disk",
                         at=FAULT_AT, duration=FAULT_FOR, factor=5.0),
        drop_factor=2.0),
    LINK_DOWN: dict(
        event=FaultEvent(kind=LINK_DOWN, target="server0",
                         at=FAULT_AT, duration=FAULT_FOR)),
    STRAGGLER: dict(
        event=FaultEvent(kind=STRAGGLER, target="1", at=FAULT_AT,
                         duration=0.24, factor=32.0),
        nproc=2, drop_factor=1.6, lag=0.4),
}


def sweep_run(event, seed, *, nproc=4, drop_factor=2.5, lag=0.2):
    workload = RandomAccessWorkload(file_size=8 * MiB, io_size=4 * KiB,
                                    ops_per_proc=128, nproc=nproc)
    plan = FaultPlan((event,)) if event is not None else None
    cfg = SystemConfig(kind="pfs", n_servers=3,
                       device_spec="sata-hdd-7200", replication=1,
                       fault_plan=plan, seed=seed,
                       retry_policy=RetryPolicy(max_retries=6,
                                                backoff_base_s=0.004,
                                                failover=False))
    detector = BpsAnomalyDetector(drop_factor=drop_factor, history=8,
                                  min_history=3)
    holder = {}

    def attach(system):
        holder["tap"] = LiveTap(system, window=SWEEP_WINDOW,
                                heartbeat_s=SWEEP_WINDOW,
                                detector=detector, attribute=True,
                                watermark_lag=lag)

    metrics = run_workload(workload, cfg, on_system=attach)
    return holder["tap"].result(exec_time=metrics.exec_time)


@pytest.fixture(scope="module")
def sweep_verdicts():
    """fault kind -> list of top suspects (one per seed)."""
    verdicts = {}
    for kind, case in SWEEP_CASES.items():
        kwargs = {k: v for k, v in case.items() if k != "event"}
        tops = []
        for seed in SEEDS:
            result = sweep_run(case["event"], seed, **kwargs)
            suspects = ranked_suspects(result.anomalies)
            tops.append(suspects[0] if suspects else None)
        verdicts[kind] = tops
    return verdicts


class TestSweep:
    def test_top1_precision_at_least_0_8(self, sweep_verdicts):
        total = hits = 0
        for kind, tops in sweep_verdicts.items():
            for top in tops:
                total += 1
                hits += (top is not None
                         and top.kind in FAULT_KIND_SUSPECTS[kind])
        assert hits / total >= 0.8, sweep_verdicts

    @pytest.mark.parametrize("kind", sorted(SWEEP_CASES))
    def test_per_class_recall_floor(self, sweep_verdicts, kind):
        tops = sweep_verdicts[kind]
        hits = sum(1 for top in tops
                   if top is not None
                   and top.kind in FAULT_KIND_SUSPECTS[kind])
        assert hits / len(tops) >= 0.5, tops

    def test_crash_suspect_names_the_crashed_server(self, sweep_verdicts):
        for top in sweep_verdicts[SERVER_CRASH]:
            assert top is not None and top.target == "server0"

    @pytest.mark.parametrize("nproc,drop_factor,lag",
                             [(4, 2.5, 0.2), (4, 2.0, 0.2),
                              (2, 1.6, 0.4)])
    def test_fault_free_twin_has_zero_suspects(self, nproc,
                                               drop_factor, lag):
        result = sweep_run(None, 11, nproc=nproc,
                           drop_factor=drop_factor, lag=lag)
        assert not result.anomalies
        assert ranked_suspects(result.anomalies) == ()
