"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.util.rng import RngStream


@pytest.fixture
def engine() -> Engine:
    """A fresh simulation engine at t=0."""
    return Engine()


@pytest.fixture
def rng() -> RngStream:
    """A deterministic root RNG stream."""
    return RngStream.from_seed(424242)


def run_to_completion(engine: Engine, generator, name: str = "test"):
    """Spawn a generator, run the engine, return the process result."""
    process = engine.spawn(generator, name=name)
    engine.run()
    return process.result()
