"""Public API sanity: exports exist, errors are catchable as one family."""

import importlib
import inspect

import pytest

import repro
import repro.errors as errors_module
from repro.errors import ReproError

SUBPACKAGES = (
    "repro.core", "repro.sim", "repro.devices", "repro.fs",
    "repro.net", "repro.pfs", "repro.middleware", "repro.workloads",
    "repro.experiments", "repro.trace_io", "repro.util", "repro.live",
)


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert getattr(module, name, None) is not None, \
                f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_version_present(self):
        assert repro.__version__


class TestErrorFamily:
    def test_all_errors_derive_from_repro_error(self):
        for _name, obj in inspect.getmembers(errors_module,
                                             inspect.isclass):
            if issubclass(obj, Exception) and obj is not ReproError:
                assert issubclass(obj, ReproError), obj

    def test_family_is_catchable_end_to_end(self):
        from repro.workloads import IOzoneWorkload
        with pytest.raises(ReproError):
            IOzoneWorkload(file_size=0)

    def test_every_error_module_has_docstring(self):
        for _name, obj in inspect.getmembers(errors_module,
                                             inspect.isclass):
            if issubclass(obj, ReproError):
                assert obj.__doc__


class TestDocstrings:
    def test_public_callables_documented(self):
        """Every public function/class re-exported at the top level
        carries a docstring (the documentation deliverable, enforced)."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not obj.__doc__:
                undocumented.append(name)
        assert not undocumented, f"undocumented: {undocumented}"
