"""The event loop: a time-ordered heap with FIFO tie-breaking.

Determinism contract: two events scheduled for the same simulated time run
in the order they were scheduled.  This makes every simulation replayable
bit-for-bit from its seed, which the experiment harness relies on (the
paper averages 5 runs; we vary only the seed between repetitions).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import Completion, Timeout, AllOf, AnyOf


class Engine:
    """Discrete-event simulation kernel.

    >>> eng = Engine()
    >>> def proc(eng):
    ...     yield eng.timeout(1.5)
    ...     return eng.now
    >>> p = eng.spawn(proc(eng))
    >>> eng.run()
    >>> p.result()
    1.5
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq: int = 0
        self._live_processes: int = 0
        self._running = False

    # -- scheduling --------------------------------------------------------

    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"invalid delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq,
                                    callback, args))

    def call_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> None:
        """Run ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self.now}"
            )
        self.call_later(when - self.now, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` at the current time, after queued work."""
        self.call_later(0.0, callback, *args)

    # -- waitable factories -------------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A waitable that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def completion(self) -> Completion:
        """A fresh one-shot promise bound to this engine."""
        return Completion(self)

    def all_of(self, children) -> AllOf:
        """Waitable that fires when all children fire."""
        return AllOf(self, children)

    def any_of(self, children) -> AnyOf:
        """Waitable that fires when the first child fires."""
        return AnyOf(self, children)

    def spawn(self, generator: Generator, name: str = "") -> "Process":
        """Start a new process from a generator; returns the Process."""
        from repro.sim.process import Process  # local: avoid import cycle
        return Process(self, generator, name=name)

    # -- execution ----------------------------------------------------------

    def run(self, until: float = math.inf, *,
            detect_deadlock: bool = True) -> None:
        """Run events until the heap drains or ``until`` is reached.

        With ``detect_deadlock`` (default), raises :class:`DeadlockError`
        if the heap drains while spawned processes are still suspended —
        that means somebody waits on a completion nobody will trigger.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while self._heap:
                when, _seq, callback, args = self._heap[0]
                if when > until:
                    # Clamp monotonically: a second run() with a smaller
                    # `until` must not move time backwards.
                    self.now = max(self.now, until)
                    return
                heapq.heappop(self._heap)
                if when < self.now:  # pragma: no cover - heap invariant
                    raise SimulationError("time went backwards")
                self.now = when
                callback(*args)
            if detect_deadlock and self._live_processes > 0:
                raise DeadlockError(
                    f"event queue drained with {self._live_processes} "
                    f"process(es) still waiting at t={self.now}"
                )
        finally:
            self._running = False

    def step(self, until: float = math.inf) -> bool:
        """Run exactly one event; returns False if none are queued.

        Shares :meth:`run`'s invariants: an event timestamped before the
        current time raises :class:`SimulationError` (time never goes
        backwards — important after a ``run(until=...)`` advanced the
        clock), and an event beyond ``until`` is left queued (the clock
        is clamped forward to ``until``, never back).
        """
        if not self._heap:
            return False
        when, _seq, callback, args = self._heap[0]
        if when > until:
            if math.isfinite(until):
                self.now = max(self.now, until)
            return False
        heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError(
                f"time went backwards: event at {when} < now={self.now}"
            )
        self.now = when
        callback(*args)
        return True

    @property
    def pending_events(self) -> int:
        """Number of events currently queued."""
        return len(self._heap)

    @property
    def live_processes(self) -> int:
        """Number of spawned processes that have not finished."""
        return self._live_processes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Engine now={self.now:.9g} pending={len(self._heap)} "
            f"live={self._live_processes}>"
        )
