"""Discrete-event simulation engine.

A small, dependency-free, SimPy-style kernel: generator-based processes
scheduled on an event heap with deterministic FIFO tie-breaking.  The whole
parallel-I/O stack (devices, network, file systems, middleware) is built as
processes on this engine, which is what lets BPS's overlap semantics be
exercised with exactly-controlled timelines.
"""

from repro.sim.events import Completion, Timeout, AllOf, AnyOf, Waitable
from repro.sim.engine import Engine
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Resource, PriorityResource, TokenBucket
from repro.sim.monitor import Monitor, UtilizationTracker

__all__ = [
    "Engine",
    "Process",
    "ProcessKilled",
    "Completion",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Waitable",
    "Resource",
    "PriorityResource",
    "TokenBucket",
    "Monitor",
    "UtilizationTracker",
]
