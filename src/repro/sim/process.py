"""Generator-based simulated processes.

A process is a Python generator that ``yield``s waitables.  When the
yielded waitable fires, the engine resumes the generator with the
waitable's value (or throws its exception into the generator).  The
``return`` value of the generator becomes the process's result, and the
process itself is a waitable, so processes compose:

>>> def child(eng):
...     yield eng.timeout(1.0)
...     return "done"
>>> def parent(eng):
...     result = yield eng.spawn(child(eng))
...     return result
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Waitable


class ProcessKilled(Exception):
    """Raised inside a generator when :meth:`Process.kill` interrupts it."""


class Process(Waitable):
    """A running simulated process (also a waitable).

    Do not instantiate directly; use :meth:`Engine.spawn`.
    """

    __slots__ = ("name", "generator", "_started", "_finished", "_waiting_on")

    _anon_counter = 0

    def __init__(self, engine: Engine, generator: Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__} "
                f"(did you forget to call the generator function?)"
            )
        super().__init__(engine)
        if not name:
            Process._anon_counter += 1
            name = f"proc-{Process._anon_counter}"
        self.name = name
        self.generator = generator
        self._started = False
        self._finished = False
        self._waiting_on: Waitable | None = None
        engine._live_processes += 1
        engine.call_soon(self._start)

    @property
    def finished(self) -> bool:
        """True once the generator returned or raised."""
        return self._finished

    # -- lifecycle -----------------------------------------------------------

    def _start(self) -> None:
        if self._finished:  # killed before first step
            return
        self._started = True
        self._advance(lambda: self.generator.send(None))

    def _on_waitable(self, waitable: Waitable) -> None:
        if self._finished:
            return
        self._waiting_on = None
        if waitable.exception is not None:
            exc = waitable.exception
            self._advance(lambda: self.generator.throw(exc))
        else:
            value = waitable.value
            self._advance(lambda: self.generator.send(value))

    def _advance(self, step) -> None:
        try:
            yielded = step()
        except StopIteration as stop:
            self._complete(value=stop.value)
            return
        except ProcessKilled as exc:
            self._complete(exception=exc)
            return
        except BaseException as exc:
            self._complete(exception=exc)
            return
        if not isinstance(yielded, Waitable):
            error = SimulationError(
                f"process {self.name!r} yielded a non-waitable: {yielded!r}"
            )
            self.generator.close()
            self._complete(exception=error)
            return
        if yielded is self:
            error = SimulationError(
                f"process {self.name!r} cannot wait on itself"
            )
            self.generator.close()
            self._complete(exception=error)
            return
        self._waiting_on = yielded
        yielded.subscribe(self._on_waitable)

    def _complete(self, value: Any = None,
                  exception: BaseException | None = None) -> None:
        self._finished = True
        self.engine._live_processes -= 1
        self._fire(value=value, exception=exception)

    def kill(self, reason: str = "") -> None:
        """Interrupt the process with :class:`ProcessKilled`.

        A process that has already finished is left untouched.  The kill
        is delivered asynchronously (at the current simulated time), so
        the target observes it at a deterministic point.
        """
        if self._finished:
            return
        exc = ProcessKilled(reason or f"process {self.name} killed")
        if not self._started:
            # Never ran: complete straight away without touching the
            # generator (it may not be startable anymore).
            self.generator.close()
            self._complete(exception=exc)
            return
        self.engine.call_soon(self._deliver_kill, exc)

    def _deliver_kill(self, exc: ProcessKilled) -> None:
        if self._finished:
            return
        self._waiting_on = None
        self._advance(lambda: self.generator.throw(exc))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "finished" if self._finished
            else "running" if self._started else "new"
        )
        return f"<Process {self.name} {state}>"
