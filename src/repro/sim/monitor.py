"""Instrumentation helpers: time-series monitors and utilization tracking.

These are passive observers — they never influence the simulated timeline.
The experiment harness uses them to report device/server utilization
alongside the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.sim.engine import Engine


@dataclass(frozen=True)
class Sample:
    """One timestamped observation."""

    time: float
    value: float


class Monitor:
    """Records (time, value) samples for a named quantity.

    With ``max_samples`` set, the monitor runs in bounded memory: when
    the buffer reaches the cap it drops every second retained sample
    and doubles its sampling stride, so an arbitrarily long run keeps
    at most ``max_samples`` evenly spaced observations (the classic
    decimating ring used by long-horizon simulators).  Derived figures
    (:meth:`time_average`, :meth:`maximum`) then become approximations
    over the retained samples; :attr:`dropped` counts what was shed.
    """

    def __init__(self, engine: Engine, name: str = "monitor", *,
                 max_samples: int | None = None) -> None:
        if max_samples is not None and max_samples < 2:
            raise ValueError(
                f"max_samples must be >= 2 or None, got {max_samples}")
        self.engine = engine
        self.name = name
        self.max_samples = max_samples
        self._times: list[float] = []
        self._values: list[float] = []
        self._stride = 1
        self._calls = 0
        #: Observations shed by decimation (0 in unbounded mode).
        self.dropped = 0

    def record(self, value: float) -> None:
        """Record ``value`` at the current simulated time."""
        index = self._calls
        self._calls += 1
        if index % self._stride != 0:
            self.dropped += 1
            return
        self._times.append(self.engine.now)
        self._values.append(float(value))
        if self.max_samples is not None and \
                len(self._times) >= self.max_samples:
            # Keep every second sample (call indices stay multiples of
            # the doubled stride, so spacing remains uniform).
            before = len(self._times)
            self._times = self._times[::2]
            self._values = self._values[::2]
            self.dropped += before - len(self._times)
            self._stride *= 2

    @property
    def stride(self) -> int:
        """Record every ``stride``-th call (1 until the cap is hit)."""
        return self._stride

    @property
    def total_records(self) -> int:
        """How many times :meth:`record` was called (kept + dropped)."""
        return self._calls

    def __len__(self) -> int:
        return len(self._times)

    @property
    def samples(self) -> list[Sample]:
        """All samples, in recording order."""
        return [Sample(t, v) for t, v in zip(self._times, self._values)]

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) as NumPy arrays (copies)."""
        return (np.asarray(self._times, dtype=float),
                np.asarray(self._values, dtype=float))

    def time_average(self) -> float:
        """Time-weighted average, treating samples as a step function.

        The value recorded at ``t_i`` is held until ``t_{i+1}``; the last
        sample is held until the engine's current time.
        """
        if not self._times:
            raise ValueError(f"monitor {self.name!r} has no samples")
        times = np.asarray(self._times + [self.engine.now], dtype=float)
        values = np.asarray(self._values, dtype=float)
        widths = np.diff(times)
        total = float(widths.sum())
        if total == 0.0:
            return float(values[-1])
        return float((values * widths).sum() / total)

    def maximum(self) -> float:
        """Largest recorded value."""
        if not self._values:
            raise ValueError(f"monitor {self.name!r} has no samples")
        return max(self._values)


class UtilizationTracker:
    """Tracks busy/idle state of a serially-used facility.

    Call :meth:`busy` when work starts and :meth:`idle` when it stops;
    nested busy marks are reference-counted, so a facility serving three
    overlapping requests is busy until the last one finishes — the same
    overlap semantics BPS applies to I/O time.
    """

    def __init__(self, engine: Engine, name: str = "util") -> None:
        self.engine = engine
        self.name = name
        self._depth = 0
        self._busy_since = 0.0
        self._accumulated = 0.0
        self._created_at = engine.now

    def busy(self) -> None:
        """Mark the start of one unit of concurrent work."""
        if self._depth == 0:
            self._busy_since = self.engine.now
        self._depth += 1

    def idle(self) -> None:
        """Mark the end of one unit of concurrent work."""
        if self._depth <= 0:
            raise ValueError(f"{self.name}: idle() without matching busy()")
        self._depth -= 1
        if self._depth == 0:
            self._accumulated += self.engine.now - self._busy_since

    @property
    def busy_time(self) -> float:
        """Total wall time with at least one unit of work in flight."""
        total = self._accumulated
        if self._depth > 0:
            total += self.engine.now - self._busy_since
        return total

    def utilization(self) -> float:
        """busy_time / elapsed time since tracker creation (0 if no time)."""
        elapsed = self.engine.now - self._created_at
        if elapsed <= 0.0:
            return 0.0
        return self.busy_time / elapsed
