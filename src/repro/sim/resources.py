"""Contended resources: counted semaphores with deterministic queues.

Devices, NICs, and server request slots are modelled as resources.  The
usage idiom inside a process generator::

    grant = resource.acquire()
    yield grant
    try:
        yield engine.timeout(service_time)
    finally:
        resource.release()

Queues are FIFO (or priority order for :class:`PriorityResource`), with
ties broken by arrival order — the same determinism contract as the engine.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Completion


class Resource:
    """A counted resource with a FIFO wait queue.

    ``capacity`` is the number of concurrent holders (e.g. 1 for a disk
    arm, N for an N-channel SSD).
    """

    def __init__(self, engine: Engine, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: list[Completion] = []
        # Cumulative statistics for utilization analysis.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self._acquire_times: dict[int, float] = {}

    @property
    def in_use(self) -> int:
        """Number of grants currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers currently waiting."""
        return len(self._queue)

    def acquire(self) -> Completion:
        """Request a grant; the returned completion fires when granted."""
        grant = self.engine.completion()
        grant.value = self  # convenience: `res = yield res.acquire()`
        requested_at = self.engine.now
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquisitions += 1
            self.engine.call_soon(grant._fire, self)
        else:
            def on_grant(_c: Completion, _t: float = requested_at) -> None:
                self.total_wait_time += self.engine.now - _t
            grant.subscribe(on_grant)
            self._queue.append(grant)
        return grant

    def release(self) -> None:
        """Return one grant; wakes the oldest waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._queue:
            grant = self._queue.pop(0)
            self.total_acquisitions += 1
            grant._fire(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Resource {self.name} {self._in_use}/{self.capacity} "
            f"queued={len(self._queue)}>"
        )


class PriorityResource(Resource):
    """A resource whose waiters are served in (priority, arrival) order.

    Lower priority numbers are served first.  Used by the elevator
    device scheduler where priority encodes the target block address.
    """

    def __init__(self, engine: Engine, capacity: int = 1,
                 name: str = "prio-resource") -> None:
        super().__init__(engine, capacity, name)
        self._pqueue: list[tuple[float, int, Completion]] = []
        self._counter = 0

    def acquire(self, priority: float = 0.0) -> Completion:
        """Request a grant with a priority (lower = sooner)."""
        grant = self.engine.completion()
        grant.value = self
        requested_at = self.engine.now
        if self._in_use < self.capacity and not self._pqueue:
            self._in_use += 1
            self.total_acquisitions += 1
            self.engine.call_soon(grant._fire, self)
        else:
            def on_grant(_c: Completion, _t: float = requested_at) -> None:
                self.total_wait_time += self.engine.now - _t
            grant.subscribe(on_grant)
            self._counter += 1
            heapq.heappush(self._pqueue, (priority, self._counter, grant))
        return grant

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._pqueue:
            _prio, _seq, grant = heapq.heappop(self._pqueue)
            self.total_acquisitions += 1
            grant._fire(self)
        else:
            self._in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)


class TokenBucket:
    """A rate limiter: ``rate`` tokens/second, burst up to ``burst``.

    Used to model shared-link bandwidth where transfers interleave at
    fine grain rather than serialising whole messages.  ``take(n)``
    returns a completion that fires once ``n`` tokens have accumulated;
    requests are served FIFO.
    """

    def __init__(self, engine: Engine, rate: float, burst: float,
                 name: str = "bucket") -> None:
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise SimulationError(f"burst must be positive, got {burst}")
        self.engine = engine
        self.rate = rate
        self.burst = burst
        self.name = name
        self._tokens = burst
        self._last_refill = engine.now
        self._queue: list[tuple[float, Completion]] = []
        self._draining = False

    def _refill(self) -> None:
        elapsed = self.engine.now - self._last_refill
        self._last_refill = self.engine.now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def take(self, amount: float) -> Completion:
        """Consume ``amount`` tokens; completion fires when available."""
        if amount <= 0:
            raise SimulationError(f"amount must be positive, got {amount}")
        if amount > self.burst:
            raise SimulationError(
                f"amount {amount} exceeds burst capacity {self.burst}"
            )
        done = self.engine.completion()
        self._queue.append((amount, done))
        self._pump()
        return done

    def _pump(self) -> None:
        if self._draining:
            return
        self._refill()
        while self._queue:
            amount, done = self._queue[0]
            # Relative epsilon: refill arithmetic can leave the balance a
            # few ULPs short of the exact amount; without the tolerance
            # the deficit's refill delay underflows below the float
            # resolution of `now` and the bucket livelocks.
            epsilon = 1e-9 * max(1.0, amount)
            if self._tokens >= amount - epsilon:
                self._tokens = max(0.0, self._tokens - amount)
                self._queue.pop(0)
                done.trigger(self)
            else:
                deficit = amount - self._tokens
                delay = max(deficit / self.rate, 1e-9)
                self._draining = True
                self.engine.call_later(delay, self._resume)
                return

    def _resume(self) -> None:
        self._draining = False
        self._pump()

    @property
    def available(self) -> float:
        """Tokens currently available (refreshes the bucket first)."""
        self._refill()
        return self._tokens
