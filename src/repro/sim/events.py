"""Waitable primitives for the simulation engine.

A *waitable* is anything a process generator may ``yield``: it exposes
:meth:`Waitable.subscribe`, and the engine resumes the process when the
waitable fires.  Concrete waitables:

- :class:`Completion` — a one-shot promise, triggered exactly once with a
  value (or an exception, which is re-raised inside the waiting process).
- :class:`Timeout` — fires after a fixed simulated delay.
- :class:`AllOf` / :class:`AnyOf` — combinators over other waitables.

Processes themselves are waitables (see :mod:`repro.sim.process`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

Callback = Callable[["Waitable"], None]


class Waitable:
    """Base class: something a process can wait on.

    Subclasses must arrange for :meth:`_fire` to be called exactly once.
    """

    __slots__ = ("engine", "_callbacks", "_fired", "value", "exception")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._callbacks: list[Callback] | None = []
        self._fired = False
        self.value: Any = None
        self.exception: BaseException | None = None

    @property
    def fired(self) -> bool:
        """True once the waitable has produced its result."""
        return self._fired

    def subscribe(self, callback: Callback) -> None:
        """Register ``callback(self)`` to run when the waitable fires.

        Subscribing to an already-fired waitable schedules the callback
        immediately (at the current simulated time), preserving run-order
        determinism.
        """
        if self._fired:
            self.engine.call_soon(callback, self)
        else:
            assert self._callbacks is not None
            self._callbacks.append(callback)

    def _fire(self, value: Any = None,
              exception: BaseException | None = None) -> None:
        if self._fired:
            raise SimulationError(f"{self!r} fired twice")
        self._fired = True
        self.value = value
        self.exception = exception
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            self.engine.call_soon(cb, self)

    def result(self) -> Any:
        """The fired value; raises the stored exception if one was set."""
        if not self._fired:
            raise SimulationError(f"{self!r} has not fired yet")
        if self.exception is not None:
            raise self.exception
        return self.value


class Completion(Waitable):
    """A one-shot promise another process (or callback) triggers.

    >>> done = Completion(engine)
    >>> # producer side:   done.trigger(payload)
    >>> # consumer side:   payload = yield done
    """

    __slots__ = ()

    def trigger(self, value: Any = None) -> None:
        """Fire successfully with ``value``."""
        self._fire(value=value)

    def fail(self, exception: BaseException) -> None:
        """Fire with an exception; waiters see it re-raised."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"not an exception: {exception!r}")
        self._fire(exception=exception)


class Timeout(Waitable):
    """Fires ``delay`` simulated seconds after construction."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine)
        self.delay = delay
        engine.call_later(delay, self._fire, value)


class AllOf(Waitable):
    """Fires when every child has fired; value = list of child values.

    If any child fails, the combinator fails with the *first* child
    exception (in child order) once all children have fired.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, engine: "Engine",
                 children: Sequence[Waitable]) -> None:
        super().__init__(engine)
        self._children = list(children)
        self._pending = len(self._children)
        if self._pending == 0:
            engine.call_soon(self._fire, [])
        else:
            for child in self._children:
                child.subscribe(self._on_child)

    def _on_child(self, _child: Waitable) -> None:
        self._pending -= 1
        if self._pending == 0:
            for child in self._children:
                if child.exception is not None:
                    self._fire(exception=child.exception)
                    return
            self._fire(value=[c.value for c in self._children])


class AnyOf(Waitable):
    """Fires when the first child fires; value = (index, child value)."""

    __slots__ = ("_children", "_done")

    def __init__(self, engine: "Engine",
                 children: Sequence[Waitable]) -> None:
        super().__init__(engine)
        self._children = list(children)
        if not self._children:
            raise SimulationError("AnyOf needs at least one child")
        self._done = False
        for index, child in enumerate(self._children):
            child.subscribe(self._make_handler(index))

    def _make_handler(self, index: int) -> Callback:
        def handler(child: Waitable) -> None:
            if self._done:
                return
            self._done = True
            if child.exception is not None:
                self._fire(exception=child.exception)
            else:
                self._fire(value=(index, child.value))
        return handler
