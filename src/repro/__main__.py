"""``python -m repro`` — the BPS toolkit entry point."""

from repro.cli import main

raise SystemExit(main())
