"""Declarative, replayable network-fault schedules.

The wire-level analogue of :class:`repro.faults.plan.FaultPlan`: where
a fault plan degrades the *simulated* stack (devices, servers, links),
a :class:`ChaosSchedule` degrades the *real* transport between the
distributed runtime's processes — the ``SocketBackend`` ↔
``bps grid-worker`` grid protocol and the client ↔ ``bps serve``
stream protocol — through the :class:`~repro.chaos.proxy.ChaosProxy`
TCP interposer.

Ten fault kinds in two windowing domains:

====================  ==========  =====================================
kind                  domain      effect
====================  ==========  =====================================
``corrupt``           frames      flip a payload byte (CRC must catch)
``duplicate``         frames      forward the frame twice
``reorder``           frames      hold the frame; emit after the next
``truncate``          frames      forward a partial frame, then reset
``reset``             frames      hard TCP reset of the connection
``half-open``         frames      stop forwarding; keep the socket up
``partition``         seconds     stall traffic, refuse new connections
``latency``           seconds     delay every chunk (+ seeded jitter)
``bandwidth``         seconds     cap throughput at ``bytes_per_s``
``slow-loris``        seconds     dribble writes in tiny paced chunks
====================  ==========  =====================================

**Determinism contract.**  Integrity kinds (the frame domain) are
windowed in per-connection, per-direction *frame indexes* — the
``frames`` proxy mode counts whole grid wire frames, the ``lines``
mode counts newline-delimited serve protocol lines — and every
probabilistic decision is drawn from an RNG stream derived purely from
``(schedule.seed, connection index, direction)``.  Replaying the same
schedule against the same traffic therefore corrupts/duplicates/
reorders exactly the same frames, bit-identically.  Timing kinds (the
seconds domain, measured from proxy start) draw their jitter from a
*separate* stream, so they can only change **when** bytes move, never
**which** decisions the integrity stream makes — and since the
hardened protocols are timing-insensitive by construction, timing
faults can never change results, only wall-clock.

Connection indexes are assigned in accept order; schedules meant to be
replayed bit-identically should drive connections sequentially (one
dispatcher, one client) or target ``connections=None`` (all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

import numpy as np

from repro.errors import ChaosError
from repro.util.rng import RngStream

__all__ = [
    "BANDWIDTH",
    "CHAOS_KINDS",
    "CORRUPT",
    "ChaosCursor",
    "ChaosEvent",
    "ChaosSchedule",
    "DUPLICATE",
    "FRAME_KINDS",
    "HALF_OPEN",
    "LATENCY",
    "PARTITION",
    "REORDER",
    "RESET",
    "SLOW_LORIS",
    "TIMING_KINDS",
    "TRUNCATE",
    "random_chaos_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
]

CORRUPT = "corrupt"
DUPLICATE = "duplicate"
REORDER = "reorder"
TRUNCATE = "truncate"
RESET = "reset"
HALF_OPEN = "half-open"
PARTITION = "partition"
LATENCY = "latency"
BANDWIDTH = "bandwidth"
SLOW_LORIS = "slow-loris"

#: Frame-indexed (deterministic) kinds.
FRAME_KINDS = frozenset((CORRUPT, DUPLICATE, REORDER, TRUNCATE, RESET,
                         HALF_OPEN))
#: Wall-clock windowed (timing-only) kinds.
TIMING_KINDS = frozenset((PARTITION, LATENCY, BANDWIDTH, SLOW_LORIS))
CHAOS_KINDS = FRAME_KINDS | TIMING_KINDS

#: Kinds that fire at most once per connection+direction (their effect
#: ends the stream or is idempotent).
_ONE_SHOT_KINDS = frozenset((TRUNCATE, RESET, HALF_OPEN))

_DIRECTIONS = ("c2s", "s2c", "both")


@dataclass(frozen=True)
class ChaosEvent:
    """One fault window against the proxied byte stream.

    Frame-domain kinds use ``frame_at``/``frame_count`` (a window of
    per-connection frame indexes; ``frame_count=None`` means "to the
    end of the connection") and, for the repeatable kinds
    (``corrupt``/``duplicate``/``reorder``), a per-frame
    ``probability``.  Timing kinds use ``at``/``duration`` in seconds
    since proxy start.  ``direction`` restricts the fault to one
    forwarding path (``"c2s"`` client→server, ``"s2c"``
    server→client); ``connections`` restricts it to specific
    connection indexes (``None`` = all).
    """

    kind: str
    direction: str = "both"
    connections: tuple[int, ...] | None = None
    # -- frame domain --
    frame_at: int = 0
    frame_count: int | None = None
    probability: float = 1.0
    # -- timing domain --
    at: float = 0.0
    duration: float = math.inf
    latency_s: float = 0.0
    jitter_s: float = 0.0
    bytes_per_s: float = 0.0
    chunk_bytes: int = 512
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            known = ", ".join(sorted(CHAOS_KINDS))
            raise ChaosError(
                f"unknown chaos kind {self.kind!r}; known kinds: {known}")
        if self.direction not in _DIRECTIONS:
            raise ChaosError(
                f"direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}")
        if self.connections is not None:
            if not self.connections or \
                    any(c < 0 for c in self.connections):
                raise ChaosError(
                    f"bad connection indexes {self.connections!r}")
        if self.kind in FRAME_KINDS:
            if self.frame_at < 0:
                raise ChaosError(f"bad frame_at {self.frame_at}")
            if self.frame_count is not None and self.frame_count < 1:
                raise ChaosError(f"bad frame_count {self.frame_count}")
            if not 0.0 < self.probability <= 1.0:
                raise ChaosError(
                    f"probability out of (0, 1]: {self.probability}")
        else:
            if self.at < 0 or math.isnan(self.at):
                raise ChaosError(f"bad window start {self.at}")
            if self.duration <= 0 or math.isnan(self.duration):
                raise ChaosError(f"bad duration {self.duration}")
            if self.kind == PARTITION and math.isinf(self.duration):
                raise ChaosError(
                    "partition must have a finite duration: a network "
                    "that never heals stalls the run forever")
            if self.kind == LATENCY and (
                    self.latency_s < 0 or self.jitter_s < 0):
                raise ChaosError(
                    f"bad latency {self.latency_s}/{self.jitter_s}")
            if self.kind == BANDWIDTH and self.bytes_per_s <= 0:
                raise ChaosError(
                    f"bandwidth needs bytes_per_s > 0, "
                    f"got {self.bytes_per_s}")
            if self.kind == SLOW_LORIS and (
                    self.chunk_bytes < 1 or self.delay_s < 0):
                raise ChaosError(
                    f"bad slow-loris {self.chunk_bytes}B/{self.delay_s}s")

    # -- applicability -----------------------------------------------------

    def applies_to(self, conn_index: int, direction: str) -> bool:
        if self.connections is not None and \
                conn_index not in self.connections:
            return False
        return self.direction == "both" or self.direction == direction

    def frame_in_window(self, frame_index: int) -> bool:
        if frame_index < self.frame_at:
            return False
        if self.frame_count is None:
            return True
        return frame_index < self.frame_at + self.frame_count

    def time_in_window(self, elapsed: float) -> bool:
        return self.at <= elapsed < self.at + self.duration

    def describe(self) -> str:
        """One-line human-readable summary."""
        where = self.direction
        if self.connections is not None:
            where += f" conn{list(self.connections)}"
        if self.kind in FRAME_KINDS:
            until = ("end" if self.frame_count is None
                     else self.frame_at + self.frame_count)
            prob = (f" p={self.probability:g}"
                    if self.kind not in _ONE_SHOT_KINDS else "")
            return (f"frames [{self.frame_at}, {until}): "
                    f"{self.kind}{prob} on {where}")
        until = ("forever" if math.isinf(self.duration)
                 else f"until t={self.at + self.duration:.6g}")
        detail = ""
        if self.kind == LATENCY:
            detail = f" +{self.latency_s:g}s±{self.jitter_s:g}"
        elif self.kind == BANDWIDTH:
            detail = f" {self.bytes_per_s:g} B/s"
        elif self.kind == SLOW_LORIS:
            detail = f" {self.chunk_bytes}B/{self.delay_s:g}s"
        return (f"t={self.at:.6g}: {self.kind}{detail} on "
                f"{where} {until}")


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded set of chaos events plus the proxy's framing mode.

    ``mode`` tells the proxy what a "frame" is: ``"frames"`` parses
    the 8-byte-header grid wire protocol, ``"lines"`` forwards
    newline-delimited serve protocol lines.  Events keep their
    authored order — that order is part of the deterministic draw
    sequence.
    """

    seed: int
    events: tuple[ChaosEvent, ...] = field(default_factory=tuple)
    mode: str = "frames"

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool) \
                or self.seed < 0:
            raise ChaosError(
                f"schedule seed must be a non-negative int, "
                f"got {self.seed!r}")
        if self.mode not in ("frames", "lines"):
            raise ChaosError(
                f"mode must be 'frames' or 'lines', got {self.mode!r}")
        object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        """Multi-line summary of the whole schedule."""
        if not self.events:
            return "(empty chaos schedule)"
        header = f"seed={self.seed} mode={self.mode}"
        return "\n".join([header] + [e.describe() for e in self.events])

    def cursor(self, conn_index: int, direction: str) -> "ChaosCursor":
        """The deterministic decision stream for one forwarding path."""
        return ChaosCursor(self, conn_index, direction)

    def timing_events(self, conn_index: int, direction: str,
                      elapsed: float) -> list[ChaosEvent]:
        """The timing-domain events active on this path right now."""
        return [e for e in self.events
                if e.kind in TIMING_KINDS
                and e.applies_to(conn_index, direction)
                and e.time_in_window(elapsed)]

    def partition_until(self, elapsed: float) -> float | None:
        """End of the partition window covering ``elapsed`` (if any)."""
        for event in self.events:
            if event.kind == PARTITION and event.time_in_window(elapsed):
                return event.at + event.duration
        return None


class ChaosCursor:
    """Per-(connection, direction) deterministic decision stream.

    ``decide()`` consumes one frame index and returns the frame-domain
    actions to apply to that frame.  The draw sequence is a pure
    function of ``(schedule, conn_index, direction)`` — the underlying
    RNG is keyed on those alone, never spawned from shared state, so
    accept-order races between *other* connections cannot perturb this
    one's stream.  One-shot kinds (reset, truncate, half-open) fire at
    the first frame inside their window and never again.
    """

    __slots__ = ("schedule", "conn_index", "direction", "_decide_rng",
                 "_timing_rng", "_frame", "_fired")

    def __init__(self, schedule: ChaosSchedule, conn_index: int,
                 direction: str) -> None:
        if direction not in ("c2s", "s2c"):
            raise ChaosError(f"cursor direction must be c2s or s2c, "
                             f"got {direction!r}")
        self.schedule = schedule
        self.conn_index = conn_index
        self.direction = direction
        code = 0 if direction == "c2s" else 1
        # Keyed streams (not spawn()ed): independent of accept order.
        self._decide_rng = RngStream(
            f"chaos/conn{conn_index}/{direction}/decide",
            np.random.SeedSequence((schedule.seed, conn_index, code, 0)))
        self._timing_rng = RngStream(
            f"chaos/conn{conn_index}/{direction}/timing",
            np.random.SeedSequence((schedule.seed, conn_index, code, 1)))
        self._frame = 0
        self._fired: set[int] = set()

    @property
    def frame_index(self) -> int:
        """Index the next ``decide()`` call will rule on."""
        return self._frame

    def decide(self) -> list[str]:
        """Frame-domain actions for the next frame, in event order."""
        index = self._frame
        self._frame += 1
        actions: list[str] = []
        for pos, event in enumerate(self.schedule.events):
            if event.kind not in FRAME_KINDS:
                continue
            if not event.applies_to(self.conn_index, self.direction):
                continue
            if not event.frame_in_window(index):
                continue
            if event.kind in _ONE_SHOT_KINDS:
                if pos in self._fired:
                    continue
                self._fired.add(pos)
                actions.append(event.kind)
            elif event.probability >= 1.0 or \
                    self._decide_rng.uniform() < event.probability:
                actions.append(event.kind)
        return actions

    def corrupt_offset(self, size: int) -> int:
        """Deterministic byte offset to flip inside a corrupt frame."""
        if size <= 0:
            return 0
        return self._decide_rng.integers(0, size)

    def jitter(self, jitter_s: float) -> float:
        """A timing-only jitter draw (never perturbs ``decide()``)."""
        if jitter_s <= 0:
            return 0.0
        return self._timing_rng.uniform(0.0, jitter_s)


def schedule_to_dict(schedule: ChaosSchedule) -> dict:
    """A JSON-safe rendering (``duration: null`` means forever)."""
    events = []
    for event in schedule.events:
        payload = {}
        for spec in fields(ChaosEvent):
            value = getattr(event, spec.name)
            if value == spec.default:
                continue
            if spec.name == "duration" and math.isinf(value):
                continue  # the default; never reached, kept for safety
            payload[spec.name] = (list(value)
                                  if isinstance(value, tuple) else value)
        events.append(payload)
    return {"seed": schedule.seed, "mode": schedule.mode,
            "events": events}


def schedule_from_dict(obj: dict) -> ChaosSchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output.

    Unknown keys are an error (a typoed fault kind or field must not
    silently become a no-op schedule).
    """
    if not isinstance(obj, dict):
        raise ChaosError(
            f"schedule must be a JSON object, got {type(obj).__name__}")
    known = {spec.name for spec in fields(ChaosEvent)}
    extra = set(obj) - {"seed", "mode", "events"}
    if extra:
        raise ChaosError(f"unknown schedule keys {sorted(extra)}")
    events = []
    for index, payload in enumerate(obj.get("events", ())):
        if not isinstance(payload, dict):
            raise ChaosError(f"event {index} must be an object")
        unknown = set(payload) - known
        if unknown:
            raise ChaosError(
                f"event {index} has unknown keys {sorted(unknown)}")
        if isinstance(payload.get("connections"), list):
            payload = dict(payload,
                           connections=tuple(payload["connections"]))
        events.append(ChaosEvent(**payload))
    return ChaosSchedule(seed=obj.get("seed", 0),
                         events=tuple(events),
                         mode=obj.get("mode", "frames"))


def random_chaos_schedule(
    rng: RngStream,
    *,
    mode: str = "frames",
    horizon_s: float = 10.0,
    horizon_frames: int = 200,
    severity: float = 1.0,
    partitions: int = 1,
    resets: int = 1,
) -> ChaosSchedule:
    """Draw a seeded combined-fault schedule.

    The standard adversarial mix the invariant runner uses: a
    corruption window, a duplication window, a reorder window (each
    with severity-scaled probabilities), ``resets`` hard connection
    resets at random frame indexes, and ``partitions`` short network
    partitions inside the horizon.  All draws come from ``rng`` in a
    fixed order, so the schedule is a pure function of the stream.
    """
    if horizon_s <= 0 or horizon_frames < 10:
        raise ChaosError(
            f"bad horizon {horizon_s}s/{horizon_frames} frames")
    if severity <= 0:
        raise ChaosError(f"severity must be > 0, got {severity}")

    def frame_window() -> tuple[int, int]:
        start = rng.integers(0, max(1, horizon_frames // 3))
        count = rng.integers(horizon_frames // 4, horizon_frames)
        return start, count

    def prob(base: float) -> float:
        return max(0.005, min(0.5, base * severity * rng.uniform(0.5, 1.5)))

    events: list[ChaosEvent] = []
    at, count = frame_window()
    events.append(ChaosEvent(CORRUPT, frame_at=at, frame_count=count,
                             probability=prob(0.05)))
    at, count = frame_window()
    events.append(ChaosEvent(DUPLICATE, frame_at=at, frame_count=count,
                             probability=prob(0.10)))
    at, count = frame_window()
    events.append(ChaosEvent(REORDER, frame_at=at, frame_count=count,
                             probability=prob(0.10)))
    for index in range(resets):
        events.append(ChaosEvent(
            RESET, connections=(index,),
            frame_at=rng.integers(2, max(3, horizon_frames // 2))))
    for _ in range(partitions):
        at_s = rng.uniform(0.05 * horizon_s, 0.6 * horizon_s)
        events.append(ChaosEvent(
            PARTITION, at=at_s,
            duration=rng.uniform(0.02 * horizon_s, 0.1 * horizon_s)))
    return ChaosSchedule(seed=rng.integers(0, 2 ** 31),
                         events=tuple(events), mode=mode)
