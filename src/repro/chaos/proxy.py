"""``bps chaos-proxy``: a seeded TCP interposer for the wire layer.

The proxy sits between the distributed runtime's peers —
``SocketBackend`` ↔ ``bps grid-worker``, or serve clients ↔
``bps serve`` — and applies a :class:`~repro.chaos.schedule.ChaosSchedule`
to the bytes it forwards.  It is **protocol-aware** so that chaos is
replayable: instead of mangling raw TCP segments (whose boundaries are
timing-dependent), it reassembles the stream into protocol units —
whole grid wire frames (``mode="frames"``) or newline-delimited serve
lines (``mode="lines"``) — and lets the schedule rule on each unit by
its per-connection, per-direction index.  Two identical runs therefore
corrupt, duplicate, reorder, truncate, and reset exactly the same
frames.

Corruption flips one payload byte (never the frame header), so the
receiver's framing stays aligned and its CRC — not luck — is what
catches the damage.  Truncation forwards a partial frame and then
resets, modelling a send cut off mid-flight.  Half-open silently
discards everything after the trigger while keeping the socket
established — the failure TCP keepalive never saves you from.  Timing
faults (partition, latency, bandwidth caps, slow-loris) only ever
delay bytes; the hardened protocols are timing-insensitive, so these
can stretch wall-clock but never change results.

Every connection gets two daemon pump threads (one per direction);
``stats()`` snapshots what the schedule actually did, which the chaos
runner cross-checks against the dispatcher/serve degradation
accounting.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

from repro.chaos.schedule import (
    BANDWIDTH,
    CORRUPT,
    DUPLICATE,
    HALF_OPEN,
    LATENCY,
    REORDER,
    RESET,
    SLOW_LORIS,
    TRUNCATE,
    ChaosCursor,
    ChaosSchedule,
)
from repro.errors import ChaosError
from repro.exec.backends.wire import parse_hostport

__all__ = ["ChaosProxy"]

_HEADER = struct.Struct(">II")
#: A frame length beyond this means the proxy lost protocol sync.
_SYNC_LIMIT = 1 << 30
_POLL_S = 0.2


class _ChunkReader:
    """Reassemble one direction of a stream into protocol units."""

    def __init__(self, sock: socket.socket, mode: str) -> None:
        self._sock = sock
        self._mode = mode
        self._buf = b""

    def _fill(self, stop: threading.Event) -> bool:
        """Grow the buffer by one recv; False on EOF or stop."""
        while not stop.is_set():
            try:
                data = self._sock.recv(1 << 16)
            except (TimeoutError, socket.timeout):
                continue
            except OSError:
                return False
            if not data:
                return False
            self._buf += data
            return True
        return False

    def next_chunk(self, stop: threading.Event) -> bytes | None:
        """One frame/line (bytes, as sent), or None at EOF/stop.

        In ``lines`` mode a final unterminated fragment is returned
        as-is so a peer that dies mid-line still has its bytes
        forwarded (the receiver's salvage layer rules on them).
        """
        if self._mode == "frames":
            while len(self._buf) < _HEADER.size:
                if not self._fill(stop):
                    return None
            length = _HEADER.unpack_from(self._buf)[0]
            if length > _SYNC_LIMIT:
                raise ChaosError(
                    f"proxy lost frame sync (length {length})")
            total = _HEADER.size + length
            while len(self._buf) < total:
                if not self._fill(stop):
                    return None
            chunk, self._buf = self._buf[:total], self._buf[total:]
            return chunk
        while b"\n" not in self._buf:
            if not self._fill(stop):
                if self._buf:
                    chunk, self._buf = self._buf, b""
                    return chunk
                return None
        end = self._buf.index(b"\n") + 1
        chunk, self._buf = self._buf[:end], self._buf[end:]
        return chunk


class _Conn:
    """One proxied connection (client socket + upstream socket)."""

    def __init__(self, index: int, client: socket.socket,
                 upstream: socket.socket) -> None:
        self.index = index
        self.client = client
        self.upstream = upstream
        self.dead = threading.Event()
        self.half_open = {"c2s": False, "s2c": False}

    def hard_reset(self) -> None:
        """RST both sockets (SO_LINGER 0 makes close send a reset)."""
        self.dead.set()
        for sock in (self.client, self.upstream):
            try:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self.dead.set()
        for sock in (self.client, self.upstream):
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """Apply a :class:`ChaosSchedule` between a client and an upstream.

    >>> proxy = ChaosProxy("127.0.0.1:9100", schedule)
    >>> host, port = proxy.start()   # point the dispatcher/client here
    ...
    >>> proxy.stop()
    >>> proxy.stats()["corrupted"]
    3
    """

    def __init__(self, upstream: str | tuple[str, int],
                 schedule: ChaosSchedule, *,
                 listen: str = "127.0.0.1:0",
                 connect_timeout: float = 10.0) -> None:
        self.upstream = (parse_hostport(upstream)
                         if isinstance(upstream, str) else upstream)
        self.schedule = schedule
        self.listen_spec = listen
        self.connect_timeout = connect_timeout
        self.address: tuple[str, int] | None = None
        self._server: socket.socket | None = None
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._conns: list[_Conn] = []
        self._lock = threading.Lock()
        self._t0 = 0.0
        self._stats = {
            "connections": 0, "rejected": 0, "forwarded": 0,
            "corrupted": 0, "duplicated": 0, "reordered": 0,
            "truncated": 0, "resets": 0, "dropped": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind, start accepting, and return the listen address."""
        if self._server is not None:
            raise ChaosError("proxy already started")
        host, port = parse_hostport(self.listen_spec)
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen(16)
        server.settimeout(_POLL_S)
        self._server = server
        self.address = server.getsockname()[:2]
        self._t0 = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept",
            daemon=True)
        self._accept_thread.start()
        return self.address

    def stop(self) -> None:
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stats(self) -> dict:
        """Snapshot of what the schedule did to the traffic so far."""
        with self._lock:
            return dict(self._stats)

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._stats[key] += n

    def _elapsed(self) -> float:
        return time.monotonic() - self._t0

    # -- accept ------------------------------------------------------------

    def _accept_loop(self) -> None:
        index = 0
        while not self._stop.is_set():
            try:
                client, _peer = self._server.accept()
            except (TimeoutError, socket.timeout):
                continue
            except OSError:
                return
            if self.schedule.partition_until(self._elapsed()) is not None:
                # Mid-partition the proxy is unreachable: refuse.
                self._count("rejected")
                client.close()
                continue
            try:
                upstream = socket.create_connection(
                    self.upstream, timeout=self.connect_timeout)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
                sock.settimeout(_POLL_S)
            conn = _Conn(index, client, upstream)
            with self._lock:
                self._conns.append(conn)
                self._stats["connections"] += 1
            for direction, src, dst in (("c2s", client, upstream),
                                        ("s2c", upstream, client)):
                threading.Thread(
                    target=self._pump,
                    args=(conn, direction, src, dst),
                    name=f"chaos-pump-{index}-{direction}",
                    daemon=True).start()
            index += 1

    # -- forwarding --------------------------------------------------------

    def _pump(self, conn: _Conn, direction: str,
              src: socket.socket, dst: socket.socket) -> None:
        cursor = self.schedule.cursor(conn.index, direction)
        reader = _ChunkReader(src, self.schedule.mode)
        held: bytes | None = None  # a reordered chunk awaiting release
        try:
            while not self._stop.is_set() and not conn.dead.is_set():
                try:
                    chunk = reader.next_chunk(self._stop)
                except ChaosError:
                    break  # lost sync: drop the connection
                if chunk is None:
                    if held is not None and \
                            not conn.half_open[direction]:
                        self._send(dst, held, cursor)
                    break
                self._delay(conn, cursor, len(chunk))
                if conn.dead.is_set():
                    break
                actions = cursor.decide()
                if RESET in actions:
                    self._count("resets")
                    conn.hard_reset()
                    return
                if HALF_OPEN in actions:
                    conn.half_open[direction] = True
                if conn.half_open[direction]:
                    # Keep draining src so the sender never blocks;
                    # its bytes just vanish, like a true half-open.
                    self._count("dropped")
                    continue
                if TRUNCATE in actions:
                    self._count("truncated")
                    self._send(dst, chunk[:max(1, len(chunk) // 2)],
                               cursor)
                    self._count("resets")
                    conn.hard_reset()
                    return
                if CORRUPT in actions:
                    chunk = self._corrupt(chunk, cursor)
                    self._count("corrupted")
                if REORDER in actions and held is None:
                    held = chunk
                    self._count("reordered")
                    continue
                self._send(dst, chunk, cursor)
                self._count("forwarded")
                if held is not None:
                    self._send(dst, held, cursor)
                    self._count("forwarded")
                    held = None
                if DUPLICATE in actions:
                    self._send(dst, chunk, cursor)
                    self._count("duplicated")
        except OSError:
            pass
        finally:
            # Half-close the write side we feed; the twin pump owns
            # the other direction.
            try:
                dst.shutdown(socket.SHUT_WR)
            except OSError:
                pass

    def _corrupt(self, chunk: bytes, cursor: ChaosCursor) -> bytes:
        """Flip one byte of the payload, leaving headers intact."""
        if self.schedule.mode == "frames":
            start = min(_HEADER.size, len(chunk) - 1)
            span = len(chunk) - start
        else:
            start = 0
            span = max(1, len(chunk) - 1)  # spare the newline
        offset = start + cursor.corrupt_offset(span)
        flipped = chunk[offset] ^ 0xFF
        return chunk[:offset] + bytes((flipped,)) + chunk[offset + 1:]

    def _delay(self, conn: _Conn, cursor: ChaosCursor,
               nbytes: int) -> None:
        """Apply the timing-domain faults active right now."""
        until = self.schedule.partition_until(self._elapsed())
        while until is not None and not self._stop.is_set() and \
                not conn.dead.is_set():
            time.sleep(min(_POLL_S, max(0.0, until - self._elapsed())))
            until = self.schedule.partition_until(self._elapsed())
        pause = 0.0
        for event in self.schedule.timing_events(
                conn.index, cursor.direction, self._elapsed()):
            if event.kind == LATENCY:
                pause += event.latency_s + cursor.jitter(event.jitter_s)
            elif event.kind == BANDWIDTH:
                pause += nbytes / event.bytes_per_s
        if pause > 0.0:
            time.sleep(pause)

    def _sendall(self, dst: socket.socket, data: bytes) -> None:
        """sendall that treats the poll timeout as "try again", so a
        briefly-full buffer never counts as a dead connection."""
        view = memoryview(data)
        while view and not self._stop.is_set():
            try:
                sent = dst.send(view)
            except (TimeoutError, socket.timeout):
                continue
            view = view[sent:]

    def _send(self, dst: socket.socket, chunk: bytes,
              cursor: ChaosCursor) -> None:
        loris = next(
            (e for e in self.schedule.timing_events(
                cursor.conn_index, cursor.direction, self._elapsed())
             if e.kind == SLOW_LORIS), None)
        if loris is None:
            self._sendall(dst, chunk)
            return
        for start in range(0, len(chunk), loris.chunk_bytes):
            if self._stop.is_set():
                return
            self._sendall(dst, chunk[start:start + loris.chunk_bytes])
            time.sleep(loris.delay_s)
