"""Network chaos harness for the distributed layer.

Seeded, replayable wire-level fault injection
(:class:`~repro.chaos.schedule.ChaosSchedule` through the
:class:`~repro.chaos.proxy.ChaosProxy` TCP interposer) plus the
``bps chaos`` invariant runner that proves the hardened protocols keep
results bit-identical under it.  See DESIGN.md §15.
"""

from repro.chaos.proxy import ChaosProxy
from repro.chaos.runner import (
    default_grid_schedule,
    default_serve_schedule,
    run_chaos,
    run_grid_check,
    run_serve_check,
    synthetic_records,
)
from repro.chaos.schedule import (
    BANDWIDTH,
    CHAOS_KINDS,
    CORRUPT,
    ChaosCursor,
    ChaosEvent,
    ChaosSchedule,
    DUPLICATE,
    FRAME_KINDS,
    HALF_OPEN,
    LATENCY,
    PARTITION,
    REORDER,
    RESET,
    SLOW_LORIS,
    TIMING_KINDS,
    TRUNCATE,
    random_chaos_schedule,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "BANDWIDTH",
    "CHAOS_KINDS",
    "CORRUPT",
    "ChaosCursor",
    "ChaosEvent",
    "ChaosProxy",
    "ChaosSchedule",
    "DUPLICATE",
    "FRAME_KINDS",
    "HALF_OPEN",
    "LATENCY",
    "PARTITION",
    "REORDER",
    "RESET",
    "SLOW_LORIS",
    "TIMING_KINDS",
    "TRUNCATE",
    "default_grid_schedule",
    "default_serve_schedule",
    "random_chaos_schedule",
    "run_chaos",
    "run_grid_check",
    "run_serve_check",
    "schedule_from_dict",
    "schedule_to_dict",
    "synthetic_records",
]
