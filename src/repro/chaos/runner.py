"""The ``bps chaos`` invariant runner: chaos in, identical bits out.

The hardening in the wire and serve protocols makes one promise: a
hostile network can cost wall-clock and show up in the degradation
accounting, but it can never change a result.  This module turns that
promise into an executable check, end-to-end against real processes:

- **grid**: spawn real ``bps grid-worker`` daemons, put a seeded
  :class:`~repro.chaos.proxy.ChaosProxy` (``mode="frames"``) in front
  of each, run the Set 1 sweep through the socket dispatcher pointed
  at the proxies, and require the analysis to be **bit-identical** to
  the serial path — through corruption, duplication, reordering,
  resets, and partitions;
- **serve**: start a ``bps serve`` daemon, stream a record set through
  a ``mode="lines"`` proxy with a resume-capable client (sequence
  numbers, line checksums, sync/ack probes, welcome-token
  reattachment), and require the tenant's settled totals to be
  **bit-identical** to the batch pipeline over the same records — with
  zero lost and zero double-counted records.

Both checks return a JSON-able report carrying the schedule, the proxy
tallies of what the chaos actually did, and the runtime's degradation
counters (supervision report / tenant status) — degradation must be
*visible there* and *invisible in the totals*.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.chaos.proxy import ChaosProxy
from repro.chaos.schedule import (
    CORRUPT,
    DUPLICATE,
    PARTITION,
    REORDER,
    RESET,
    ChaosEvent,
    ChaosSchedule,
)
from repro.core.metrics import compute_metrics
from repro.core.records import IORecord, TraceCollection
from repro.errors import ChaosError, TraceFormatError
from repro.exec.supervisor import SupervisorPolicy
from repro.experiments.runner import ExperimentScale
from repro.experiments.set1 import run_set1
from repro.serve.protocol import (
    line_checksum,
    record_line,
    verify_checksum,
)
from repro.serve.registry import ServeConfig
from repro.serve.server import BpsServer
from repro.serve.tenant import ACTIVE

__all__ = [
    "default_grid_schedule",
    "default_serve_schedule",
    "run_chaos",
    "run_grid_check",
    "run_serve_check",
    "synthetic_records",
]

#: Degradation counters the grid report surfaces.
_SUPERVISION_KEYS = (
    "jobs", "pooled", "crashes", "timeouts", "worker_respawns",
    "duplicate_results", "quarantined_frames", "reconnects",
    "broken_circuits",
)


def default_grid_schedule(seed: int) -> ChaosSchedule:
    """The standard adversarial mix for the grid check.

    Frames 0-2 of every connection are spared so the handshake itself
    is not the only thing ever exercised; everything after that is
    fair game.  One hard reset hits the first connection mid-run, and
    a short partition stalls the whole wire while the dispatcher's
    circuit breaker is mid-reconnect.
    """
    return ChaosSchedule(seed=seed, mode="frames", events=(
        ChaosEvent(CORRUPT, frame_at=3, probability=0.06),
        ChaosEvent(DUPLICATE, frame_at=3, probability=0.25),
        ChaosEvent(REORDER, frame_at=3, probability=0.20),
        ChaosEvent(RESET, connections=(0,), frame_at=9),
        ChaosEvent(PARTITION, at=1.0, duration=0.6),
    ))


def default_serve_schedule(seed: int) -> ChaosSchedule:
    """The standard adversarial mix for the serve check.

    Line 0 of each connection (the hello) is spared so most sessions
    get as far as a welcome; resets kick the client mid-stream twice,
    forcing the resume protocol to actually resume.
    """
    return ChaosSchedule(seed=seed, mode="lines", events=(
        ChaosEvent(CORRUPT, frame_at=2, probability=0.02),
        ChaosEvent(DUPLICATE, direction="c2s", frame_at=2,
                   probability=0.05),
        ChaosEvent(REORDER, direction="c2s", frame_at=2,
                   probability=0.05),
        ChaosEvent(RESET, connections=(0,), frame_at=40),
        ChaosEvent(RESET, connections=(1,), frame_at=90),
        ChaosEvent(PARTITION, at=0.6, duration=0.4),
    ))


def _metric_tuples(sweep) -> list[tuple]:
    """Every metric of every repetition, in sweep order — the
    bit-identity fingerprint two runs are compared by."""
    return [
        (m.iops, m.bandwidth, m.arpt, m.bps, m.exec_time,
         m.union_io_time, m.app_ops, m.app_blocks, m.fs_bytes)
        for _label, reps in sweep._points
        for m in reps
    ]


# -- grid check -----------------------------------------------------------


def _spawn_grid_workers(count: int, *,
                        heartbeat: float | None = None,
                        liveness: float | None = None):
    """Real ``bps grid-worker`` subprocesses on ephemeral ports."""
    src = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    cmd = [sys.executable, "-m", "repro", "grid-worker",
           "--listen", "127.0.0.1:0"]
    if heartbeat is not None:
        cmd += ["--heartbeat", str(heartbeat)]
    if liveness is not None:
        cmd += ["--liveness", str(liveness)]
    procs, addrs = [], []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                cmd, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, text=True, env=env)
            procs.append(proc)
            banner = proc.stdout.readline().strip()
            if "grid-worker listening on" not in banner:
                raise ChaosError(
                    f"grid worker failed to start: {banner!r}")
            addrs.append(banner.rsplit(" ", 1)[-1])
    except BaseException:
        _kill_workers(procs)
        raise
    return procs, addrs


def _kill_workers(procs) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def run_grid_check(schedule: ChaosSchedule | None = None, *,
                   seed: int = 0,
                   workers: int = 2,
                   scale: ExperimentScale | None = None,
                   heartbeat: float = 0.5,
                   liveness: float = 2.5,
                   policy: SupervisorPolicy | None = None) -> dict:
    """Chaos-ed socket sweep vs. the serial path; identical or raise.

    Returns the check report (never raises for a failed *invariant* —
    ``report["passed"]`` carries the verdict so callers can aggregate;
    :class:`~repro.errors.ChaosError` is reserved for harness
    breakage like a worker that never comes up).
    """
    if schedule is None:
        schedule = default_grid_schedule(seed)
    if schedule.mode != "frames":
        raise ChaosError(
            f"grid check needs a mode='frames' schedule, "
            f"got mode={schedule.mode!r}")
    scale = scale or ExperimentScale(factor=0.25, repetitions=2)
    if policy is None:
        # Chaos costs retries and respawns by design; give the
        # supervisor budget to absorb the schedule, not mask bugs.
        policy = SupervisorPolicy(job_timeout=60.0, max_retries=4,
                                  max_worker_respawns=32,
                                  poll_interval=0.05)
    serial = run_set1(scale, parallel=False)
    expected = _metric_tuples(serial)

    procs, upstreams = _spawn_grid_workers(
        workers, heartbeat=heartbeat, liveness=liveness)
    proxies = [ChaosProxy(addr, schedule) for addr in upstreams]
    try:
        grid_addrs = []
        for proxy in proxies:
            host, port = proxy.start()
            grid_addrs.append(f"{host}:{port}")
        chaotic = run_set1(
            scale, backend="socket", grid_workers=grid_addrs,
            grid_heartbeat=heartbeat, grid_liveness=liveness,
            policy=policy)
    finally:
        for proxy in proxies:
            proxy.stop()
        _kill_workers(procs)
    actual = _metric_tuples(chaotic)
    supervision = {key: getattr(chaotic.supervision, key, 0)
                   for key in _SUPERVISION_KEYS}
    return {
        "check": "grid",
        "passed": actual == expected,
        "cells": len(expected),
        "mismatched_cells": sum(
            1 for a, b in zip(actual, expected) if a != b
        ) + abs(len(actual) - len(expected)),
        "workers": workers,
        "schedule": schedule.describe(),
        "supervision": supervision,
        "proxies": [proxy.stats() for proxy in proxies],
    }


# -- serve check ----------------------------------------------------------


def synthetic_records(n: int, *, gap: float = 0.004,
                      dur: float = 0.011,
                      nbytes: int = 4096) -> list[IORecord]:
    """A deterministic steady-rate record set for the serve check."""
    return [
        IORecord(pid=1, op="read" if i % 2 else "write",
                 nbytes=nbytes, start=i * gap, end=i * gap + dur)
        for i in range(n)
    ]


class _ServeHarness:
    """A real ``bps serve`` daemon on a background event-loop thread.

    The runner keeps an authoritative handle on the server object:
    client-side acks steer the resume protocol, but the final verdict
    reads the tenant's own settled counters through :meth:`call`, so a
    lying network cannot fake a pass *or* a fail.
    """

    def __init__(self, config: ServeConfig) -> None:
        import asyncio
        import threading
        self._asyncio = asyncio
        self.config = config
        self.server: BpsServer | None = None
        self.loop = None
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="chaos-serve", daemon=True)

    def start(self) -> tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise ChaosError("serve daemon failed to start in time")
        if self._error is not None:
            raise ChaosError(
                f"serve daemon failed to start: {self._error}")
        return self.address

    def _run(self) -> None:
        try:
            self._asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self.loop = self._asyncio.get_running_loop()
        self.server = BpsServer(self.config, tcp="127.0.0.1:0")
        await self.server.start()
        self.address = self.server.addresses["tcp"]
        self._ready.set()
        await self.server.serve_until_drained()

    def call(self, fn):
        """Run ``fn()`` on the daemon's loop thread (no data races)."""
        async def wrapped():
            return fn()
        future = self._asyncio.run_coroutine_threadsafe(
            wrapped(), self.loop)
        return future.result(timeout=15.0)

    def tenant_state(self, name: str):
        return self.call(
            lambda: getattr(self.server.registry.get(name),
                            "state", None))

    def tenant_status(self, name: str):
        return self.call(
            lambda: self.server.registry.get(name).status())

    def stop(self) -> None:
        if self.loop is not None and self.server is not None:
            future = self._asyncio.run_coroutine_threadsafe(
                self.server.drain("chaos check over"), self.loop)
            try:
                future.result(timeout=15.0)
            except Exception:  # noqa: BLE001 — already going down
                pass
        self._thread.join(timeout=10.0)


class _Retry(Exception):
    """This connection is spent; reconnect and resume."""


class _LineStream:
    """Blocking line reads with a timeout that means *reconnect*.

    ``socket.makefile`` with a timeout can lose buffered bytes across
    a timeout; this reader owns its buffer, and every timeout or EOF
    raises :class:`_Retry` — the client never reads on after one.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()

    def readline(self) -> bytes:
        while b"\n" not in self._buf:
            try:
                data = self._sock.recv(1 << 16)
            except (TimeoutError, socket.timeout) as exc:
                raise _Retry("read timed out") from exc
            except OSError as exc:
                raise _Retry(f"read failed: {exc}") from exc
            if not data:
                raise _Retry("connection closed")
            self._buf += data
        end = self._buf.index(b"\n") + 1
        line = bytes(self._buf[:end])
        del self._buf[:end]
        return line


def _client_control(**obj) -> bytes:
    obj["crc"] = line_checksum(obj)
    return (json.dumps(obj) + "\n").encode()


class _ResumeClient:
    """A chaos-tolerant exactly-once streaming client.

    Delivery loop: connect through the proxy, hello (with the resume
    token once one is known), rewind to the welcome's ``next_seq``,
    stream checksummed+sequenced records in small batches, and confirm
    each batch with a ``sync``/``ack`` probe.  Any timeout, reset,
    corrupt server line, or tenant mismatch burns the connection and
    the loop starts over — the sequence numbers make the retry safe.
    """

    def __init__(self, address: tuple[str, int], tenant: str,
                 records: list[IORecord], *, deadline: float,
                 io_timeout: float = 2.0, batch: int = 32) -> None:
        self.address = address
        self.tenant = tenant
        self.records = records
        self.deadline = deadline
        self.io_timeout = io_timeout
        self.batch = batch
        self.token: str | None = None
        self.counters = {"connects": 0, "failed_sessions": 0,
                         "rejected_server_lines": 0}

    def _check_deadline(self, doing: str) -> None:
        if time.monotonic() > self.deadline:
            raise ChaosError(
                f"serve chaos client ran out of time while {doing} "
                f"(tenant {self.tenant!r})")

    def _connect(self) -> tuple[socket.socket, _LineStream]:
        self.counters["connects"] += 1
        try:
            sock = socket.create_connection(
                self.address, timeout=self.io_timeout)
        except OSError as exc:  # partition: refused/reset
            raise _Retry(f"connect failed: {exc}") from exc
        sock.settimeout(self.io_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock, _LineStream(sock)

    def _sendall(self, sock: socket.socket, payload: bytes) -> None:
        try:
            sock.sendall(payload)
        except OSError as exc:
            raise _Retry(f"send failed: {exc}") from exc

    def _read_control(self, stream: _LineStream, want: str) -> dict:
        """The next believable control line of type ``want``.

        Lines that fail their checksum (corrupted s2c) or don't parse
        are rejected, never believed; other control types in between
        (periodic acks before a result, say) are skipped.
        """
        while True:
            self._check_deadline(f"waiting for {want!r}")
            line = stream.readline()
            try:
                obj = json.loads(line)
                if not isinstance(obj, dict):
                    raise TraceFormatError("not an object")
                obj = verify_checksum(obj)
            except (json.JSONDecodeError, UnicodeDecodeError,
                    TraceFormatError):
                self.counters["rejected_server_lines"] += 1
                continue
            kind = obj.get("type")
            if kind == want:
                if obj.get("tenant", self.tenant) != self.tenant:
                    raise _Retry(
                        f"bound to wrong tenant {obj.get('tenant')!r}")
                return obj
            if kind == "error":
                raise _Retry(f"server error: {obj.get('error')}")

    def _hello(self, sock: socket.socket,
               stream: _LineStream) -> dict:
        hello = {"type": "hello", "tenant": self.tenant}
        if self.token is not None:
            hello["resume"] = self.token
        self._sendall(sock, _client_control(**hello))
        welcome = self._read_control(stream, "welcome")
        self.token = welcome.get("resume", self.token)
        return welcome

    def _sync(self, sock: socket.socket, stream: _LineStream) -> dict:
        self._sendall(sock, _client_control(type="sync"))
        return self._read_control(stream, "ack")

    def deliver(self) -> dict:
        """Stream every record exactly once; returns the counters."""
        total = len(self.records)
        while True:
            self._check_deadline("delivering records")
            sock = None
            try:
                sock, stream = self._connect()
                welcome = self._hello(sock, stream)
                cursor = int(welcome.get("next_seq", 0))
                while cursor < total:
                    stop = min(total, cursor + self.batch)
                    payload = b"".join(
                        record_line(self.records[i], seq=i,
                                    checksum=True)
                        for i in range(cursor, stop))
                    self._sendall(sock, payload)
                    ack = self._sync(sock, stream)
                    cursor = int(ack["next_seq"])
                ack = self._sync(sock, stream)
                if int(ack["next_seq"]) >= total:
                    return dict(self.counters)
                cursor = int(ack["next_seq"])
            except _Retry:
                self.counters["failed_sessions"] += 1
                time.sleep(0.05)
            finally:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass

    def finalize(self, harness: _ServeHarness) -> None:
        """Drive the tenant to its settled terminal state.

        The ``end`` line (and its ``result`` answer) can be eaten by
        the same chaos as everything else, so success is judged by the
        authoritative server-side state, not by the reply.
        """
        while True:
            if harness.tenant_state(self.tenant) != ACTIVE:
                return
            self._check_deadline("finalizing the tenant")
            sock = None
            try:
                sock, stream = self._connect()
                self._hello(sock, stream)
                self._sendall(sock, _client_control(type="end"))
                self._read_control(stream, "result")
            except _Retry:
                self.counters["failed_sessions"] += 1
                time.sleep(0.05)
            finally:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass


def run_serve_check(schedule: ChaosSchedule | None = None, *,
                    seed: int = 0,
                    records: int = 400,
                    window: float = 0.1,
                    timeout: float = 120.0) -> dict:
    """Reconnecting chaos-ed stream vs. the batch pipeline.

    Same contract as :func:`run_grid_check`: the report's ``passed``
    carries the invariant verdict; :class:`~repro.errors.ChaosError`
    means the harness itself broke (or the deadline expired, which a
    schedule that censors everything forever can force).
    """
    if schedule is None:
        schedule = default_serve_schedule(seed)
    if schedule.mode != "lines":
        raise ChaosError(
            f"serve check needs a mode='lines' schedule, "
            f"got mode={schedule.mode!r}")
    record_set = synthetic_records(records)
    tenant = "chaos"
    deadline = time.monotonic() + timeout

    harness = _ServeHarness(ServeConfig(window=window,
                                        idle_timeout=None))
    proxy = None
    try:
        upstream = harness.start()
        proxy = ChaosProxy(upstream, schedule)
        address = proxy.start()
        client = _ResumeClient(address, tenant, record_set,
                               deadline=deadline)
        client_counters = client.deliver()
        client.finalize(harness)
        status = harness.tenant_status(tenant)
    finally:
        if proxy is not None:
            proxy.stop()
        harness.stop()

    final = status.get("final")
    passed = final is not None \
        and status["records_admitted"] == len(record_set) \
        and final["ops"] == len(record_set)
    if final is not None:
        batch = compute_metrics(TraceCollection(record_set),
                                exec_time=final["exec_time"])
        passed = passed and final["bps"] == batch.bps \
            and final["union_io_time"] == batch.union_io_time \
            and final["bandwidth"] == batch.bandwidth \
            and final["iops"] == batch.iops
    return {
        "check": "serve",
        "passed": passed,
        "records": len(record_set),
        "schedule": schedule.describe(),
        "client": client_counters,
        "tenant": {
            "state": status.get("state"),
            "records_admitted": status.get("records_admitted"),
            "duplicate_records": status.get("duplicate_records"),
            "resumed_sessions": status.get("resumed_sessions"),
            "quarantined_lines": status.get("quarantined_lines"),
        },
        "final": final,
        "proxy": proxy.stats(),
    }


# -- entry point ----------------------------------------------------------


def run_chaos(*, seed: int = 20130520,
              checks: tuple[str, ...] = ("grid", "serve"),
              workers: int = 2,
              scale: ExperimentScale | None = None,
              records: int = 400,
              grid_schedule: ChaosSchedule | None = None,
              serve_schedule: ChaosSchedule | None = None,
              timeout: float = 300.0) -> dict:
    """Run the selected invariant checks; the aggregate report.

    ``report["passed"]`` is True only when every check held its
    invariant — the CLI turns that into the exit code.
    """
    known = ("grid", "serve")
    for check in checks:
        if check not in known:
            raise ChaosError(
                f"unknown chaos check {check!r}; known: {known}")
    report = {"seed": seed, "passed": True, "checks": []}
    if "grid" in checks:
        result = run_grid_check(grid_schedule, seed=seed,
                                workers=workers, scale=scale)
        report["checks"].append(result)
        report["passed"] = report["passed"] and result["passed"]
    if "serve" in checks:
        result = run_serve_check(serve_schedule, seed=seed,
                                 records=records, timeout=timeout)
        report["checks"].append(result)
        report["passed"] = report["passed"] and result["passed"]
    return report
