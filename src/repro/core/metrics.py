"""The metrics under study: BPS (Eq. 1) and the conventional trio.

Definitions, all computed from a gathered :class:`TraceCollection`:

- ``BPS  = B / T`` — application-required blocks over the *union* of all
  I/O intervals (paper Eq. 1).  B counts what the application asked for,
  not what the file system moved.
- ``IOPS = N / T`` — application I/O operations over the same union time.
- ``bandwidth = fs_bytes / T`` — bytes moved at the *file-system
  boundary* over the union time.  The measurement point is the whole
  disagreement between bandwidth and BPS: with data sieving the file
  system moves more than the application asked for, and bandwidth
  credits the holes (the Set 4 flip).
- ``ARPT = mean(end - start)`` — arithmetic-mean response time of the
  application's requests (the paper's "average response time").

All four come bundled in a :class:`MetricSet` together with the run's
execution time, so sweep analysis can correlate each against overall
performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.intervals import union_time, union_time_paper
from repro.core.records import TraceCollection
from repro.errors import AnalysisError
from repro.util.units import BLOCK_SIZE


def union_io_time(trace, *, impl: str = "numpy") -> float:
    """T of the BPS equation for a gathered trace.

    ``impl`` picks the implementation: "numpy" (default) or "paper"
    (the pure-Python Fig. 3 port) — they agree; the knob exists for the
    cross-validation tests and the ablation bench.

    Accepts any :class:`TraceCollection` (including filtered views) —
    the result is memoised on the collection, keyed by ``impl``, so
    ``bps``/``iops``/``bandwidth``/``compute_metrics`` on the same trace
    share one union sweep.  Raw (n, 2) interval arrays are also accepted
    (uncached).
    """
    union = getattr(trace, "union_time", None)
    if callable(union):
        return union(impl=impl)
    if impl == "numpy":
        return union_time(trace)
    if impl == "paper":
        return union_time_paper(trace)
    raise AnalysisError(f"unknown union-time impl {impl!r}")


def bps(trace: TraceCollection, *, block_size: int = BLOCK_SIZE,
        impl: str = "numpy") -> float:
    """Blocks Per Second — the paper's equation (1).

    B counts every application-issued block (successful or not,
    concurrent or not); T is the overlap-collapsed I/O time.
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("BPS of an empty trace")
    t = union_io_time(app, impl=impl)
    if t <= 0.0:
        raise AnalysisError(
            f"BPS undefined: union I/O time is {t} "
            "(all records are zero-length?)"
        )
    return app.total_blocks(block_size) / t


def iops(trace: TraceCollection, *, impl: str = "numpy") -> float:
    """I/O operations per second of active I/O time."""
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("IOPS of an empty trace")
    t = union_io_time(app, impl=impl)
    if t <= 0.0:
        raise AnalysisError("IOPS undefined: union I/O time is zero")
    return len(app) / t


def bandwidth(trace: TraceCollection, *, fs_bytes: int | None = None,
              impl: str = "numpy") -> float:
    """File-system-boundary data rate in bytes/second.

    ``fs_bytes`` is the byte count actually moved below the middleware
    (device/page traffic, including sieving holes and read-ahead).  When
    not supplied, the application byte total is used — correct for
    optimisation-free stacks, and exactly the assumption that makes
    bandwidth mislead once optimisations appear.
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("bandwidth of an empty trace")
    t = union_io_time(app, impl=impl)
    if t <= 0.0:
        raise AnalysisError("bandwidth undefined: union I/O time is zero")
    moved = app.total_bytes() if fs_bytes is None else fs_bytes
    if moved < 0:
        raise AnalysisError(f"negative fs_bytes: {moved}")
    return moved / t


def arpt(trace: TraceCollection) -> float:
    """Average response time of the application's requests (seconds)."""
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("ARPT of an empty trace")
    return float(app.response_times().mean())


@dataclass(frozen=True)
class MetricSet:
    """All metrics of one run, plus the context needed to interpret them."""

    iops: float
    bandwidth: float
    arpt: float
    bps: float
    exec_time: float
    union_io_time: float
    app_ops: int
    app_bytes: int
    app_blocks: int
    fs_bytes: int
    block_size: int = BLOCK_SIZE
    label: str = ""
    extras: dict = field(default_factory=dict)

    def value_of(self, metric: str) -> float:
        """Look up a metric by its paper name (IOPS/BW/ARPT/BPS/...)."""
        key = metric.strip().lower()
        aliases = {
            "iops": self.iops,
            "bw": self.bandwidth,
            "bandwidth": self.bandwidth,
            "arpt": self.arpt,
            "bps": self.bps,
            "exec_time": self.exec_time,
            "execution_time": self.exec_time,
        }
        try:
            return aliases[key]
        except KeyError:
            raise AnalysisError(f"unknown metric {metric!r}") from None

    @property
    def fs_amplification(self) -> float:
        """fs_bytes / app_bytes; >1 means the stack moved extra data."""
        if self.app_bytes == 0:
            return 0.0
        return self.fs_bytes / self.app_bytes


@dataclass(frozen=True)
class LayeredComparison:
    """BPS computed at two measurement points of the same run.

    The paper's central claim is that *where* you measure decides what
    you learn: the application layer sees required blocks; the
    file-system layer sees moved blocks.  When the stack adds data
    movement (sieving holes, read-ahead, mirroring), ``fs_bps`` rises
    above ``app_bps`` — quantifying exactly the misdirection that makes
    bandwidth flip in Set 4.
    """

    app_bps: float
    fs_bps: float
    app_blocks: int
    fs_blocks: int
    app_union_time: float
    fs_union_time: float

    @property
    def block_amplification(self) -> float:
        """fs blocks / app blocks (1.0 = nothing extra moved)."""
        if self.app_blocks == 0:
            return 0.0
        return self.fs_blocks / self.app_blocks


def layered_comparison(trace: TraceCollection, *,
                       block_size: int = BLOCK_SIZE,
                       impl: str = "numpy") -> LayeredComparison:
    """BPS at the application layer vs at the file-system layer.

    Requires a trace recorded with per-access fs records
    (``TraceRecorder(keep_fs_records=True)`` /
    ``SystemConfig(keep_fs_records=True)``).
    """
    app = trace.app_records()
    fs = trace.fs_records()
    if len(app) == 0:
        raise AnalysisError("layered comparison of an empty app trace")
    if len(fs) == 0:
        raise AnalysisError(
            "no fs-layer records; record with keep_fs_records=True"
        )
    app_t = union_io_time(app, impl=impl)
    fs_t = union_io_time(fs, impl=impl)
    if app_t <= 0 or fs_t <= 0:
        raise AnalysisError("layered comparison with zero union time")
    app_blocks = app.total_blocks(block_size)
    fs_blocks = fs.total_blocks(block_size)
    return LayeredComparison(
        app_bps=app_blocks / app_t,
        fs_bps=fs_blocks / fs_t,
        app_blocks=app_blocks,
        fs_blocks=fs_blocks,
        app_union_time=app_t,
        fs_union_time=fs_t,
    )


def compute_metrics(
    trace: TraceCollection,
    *,
    exec_time: float,
    fs_bytes: int | None = None,
    block_size: int = BLOCK_SIZE,
    label: str = "",
    impl: str = "numpy",
    extras: dict | None = None,
) -> MetricSet:
    """Bundle all four metrics (plus context) for one run.

    ``exec_time`` is the application execution time — the paper's stand-in
    for overall computer performance (section IV.A).
    """
    if exec_time <= 0:
        raise AnalysisError(f"non-positive exec_time: {exec_time}")
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("cannot compute metrics for an empty trace")
    t = union_io_time(app, impl=impl)
    if t <= 0.0:
        raise AnalysisError("metrics undefined: union I/O time is zero")
    app_bytes = app.total_bytes()
    app_blocks = app.total_blocks(block_size)
    moved = app_bytes if fs_bytes is None else fs_bytes
    return MetricSet(
        iops=len(app) / t,
        bandwidth=moved / t,
        arpt=float(app.response_times().mean()),
        bps=app_blocks / t,
        exec_time=exec_time,
        union_io_time=t,
        app_ops=len(app),
        app_bytes=app_bytes,
        app_blocks=app_blocks,
        fs_bytes=moved,
        block_size=block_size,
        label=label,
        extras=dict(extras or {}),
    )
