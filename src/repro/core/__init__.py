"""The paper's contribution: BPS and its measurement methodology.

- :mod:`repro.core.records` — step 1: per-process I/O records.
- :mod:`repro.core.intervals` — step 3: overlapped I/O time (paper Fig. 3),
  in both paper-faithful and NumPy-vectorised forms.
- :mod:`repro.core.metrics` — BPS (Eq. 1) plus the conventional metrics it
  is compared against (IOPS, bandwidth, ARPT).
- :mod:`repro.core.correlation` — Pearson CC (Eq. 2), expected directions
  (Table 1), and the sign-normalisation convention of section IV.B.
- :mod:`repro.core.analysis` — per-run metric sets and sweep-level CC
  analysis, the machinery behind every evaluation figure.
"""

from repro.core.records import IORecord, TraceCollection
from repro.core.intervals import (
    union_time,
    union_time_paper,
    merge_intervals,
    concurrency_profile,
    max_concurrency,
)
from repro.core.metrics import (
    MetricSet,
    LayeredComparison,
    bps,
    iops,
    bandwidth,
    arpt,
    union_io_time,
    compute_metrics,
    layered_comparison,
)
from repro.core.correlation import (
    EXPECTED_DIRECTIONS,
    normalized_cc,
    correlation_table,
    CorrelationResult,
)
from repro.core.analysis import RunMeasurement, SweepAnalysis
from repro.core.timeline import (
    ProcessSummary,
    per_process_breakdown,
    overlap_surplus,
    binned_bps,
    overlap_matrix,
    render_gantt,
)
from repro.core.confidence import (
    ConfidenceInterval,
    fisher_ci,
    cc_significant,
    compare_cc,
)
from repro.core.sensitivity import (
    JackknifeResult,
    jackknife_cc,
    influence,
    sweep_direction_robust,
)

__all__ = [
    "ProcessSummary",
    "per_process_breakdown",
    "overlap_surplus",
    "binned_bps",
    "overlap_matrix",
    "render_gantt",
    "ConfidenceInterval",
    "fisher_ci",
    "cc_significant",
    "compare_cc",
    "JackknifeResult",
    "jackknife_cc",
    "influence",
    "sweep_direction_robust",
    "IORecord",
    "TraceCollection",
    "union_time",
    "union_time_paper",
    "merge_intervals",
    "concurrency_profile",
    "max_concurrency",
    "MetricSet",
    "LayeredComparison",
    "layered_comparison",
    "bps",
    "iops",
    "bandwidth",
    "arpt",
    "union_io_time",
    "compute_metrics",
    "EXPECTED_DIRECTIONS",
    "normalized_cc",
    "correlation_table",
    "CorrelationResult",
    "RunMeasurement",
    "SweepAnalysis",
]
