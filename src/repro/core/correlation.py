"""Correlation analysis — the paper's evaluation instrument (section IV.A-B).

For each sweep (e.g. record size 4 KB → 8 MB), every metric's series is
correlated against the application execution time series with the Pearson
coefficient (Eq. 2).  Table 1 fixes the direction a *well-behaved* metric
must show: throughput-like metrics (IOPS, bandwidth, BPS) should move
*against* execution time (negative CC), ARPT should move *with* it
(positive CC).

Section IV.B then normalises for presentation: a CC whose sign matches
the expected direction is recorded as ``+|CC|`` ("correct, this strong"),
a mismatched sign as ``-|CC|`` ("misleading, this strongly").  All the CC
bar figures (4-6, 9, 11, 12) plot these normalised values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.metrics import MetricSet
from repro.errors import AnalysisError
from repro.util.stats import pearson

#: Table 1 — expected CC direction of each metric against execution time.
EXPECTED_DIRECTIONS: dict[str, int] = {
    "IOPS": -1,
    "BW": -1,
    "ARPT": +1,
    "BPS": -1,
}

#: Canonical presentation order, as in every figure of the paper.
METRIC_ORDER: tuple[str, ...] = ("IOPS", "BW", "ARPT", "BPS")


@dataclass(frozen=True)
class CorrelationResult:
    """One metric's correlation against execution time over a sweep."""

    metric: str
    cc: float                 # raw Pearson coefficient
    expected_direction: int   # -1 or +1, from Table 1
    normalized: float         # +|cc| if direction matches, else -|cc|

    @property
    def direction_correct(self) -> bool:
        """Did the metric move the way Table 1 says it must?"""
        return self.normalized >= 0.0


def normalized_cc(metric: str, metric_values: Sequence[float],
                  exec_times: Sequence[float]) -> CorrelationResult:
    """Correlate one metric series with execution time and normalise.

    Raises :class:`AnalysisError` for unknown metrics or degenerate
    series (fewer than two points / zero variance) — a sweep that cannot
    distinguish metric behaviours is an experiment-design bug, not a
    value to paper over.
    """
    name = metric.strip().upper()
    if name == "BANDWIDTH":
        name = "BW"
    try:
        expected = EXPECTED_DIRECTIONS[name]
    except KeyError:
        known = ", ".join(METRIC_ORDER)
        raise AnalysisError(
            f"no expected direction for metric {metric!r} (known: {known})"
        ) from None
    cc = pearson(metric_values, exec_times)
    matches = (cc < 0) == (expected < 0) if cc != 0.0 else False
    normalized = abs(cc) if matches else -abs(cc)
    return CorrelationResult(name, cc, expected, normalized)


def correlation_table(
    runs: Sequence[MetricSet],
    *,
    metrics: Sequence[str] = METRIC_ORDER,
) -> dict[str, CorrelationResult]:
    """Normalised CC of every metric over a sweep of runs.

    ``runs`` holds one :class:`MetricSet` per sweep point (already
    averaged over repetitions).  Returns a mapping in ``metrics`` order.
    """
    if len(runs) < 2:
        raise AnalysisError(
            f"correlation needs at least two sweep points, got {len(runs)}"
        )
    exec_times = [r.exec_time for r in runs]
    table: dict[str, CorrelationResult] = {}
    for metric in metrics:
        values = [r.value_of(metric) for r in runs]
        table[metric.upper() if metric.upper() != "BANDWIDTH" else "BW"] = \
            normalized_cc(metric, values, exec_times)
    return table


def average_strength(table: Mapping[str, CorrelationResult]) -> float:
    """Mean |CC| across a table — the paper's "absolute average value"."""
    if not table:
        raise AnalysisError("average of an empty correlation table")
    return sum(abs(r.cc) for r in table.values()) / len(table)


def misleading_metrics(table: Mapping[str, CorrelationResult]) -> list[str]:
    """Metrics whose direction flipped (normalised CC < 0) in this sweep."""
    return [name for name, r in table.items() if not r.direction_correct]
