"""Sweep-level analysis: from raw runs to the paper's figures.

A *sweep* varies one knob (device, record size, process count, region
spacing) across several points; each point is run several times (the
paper uses 5 repetitions and averages).  :class:`SweepAnalysis` holds the
per-point, per-repetition :class:`MetricSet`s, averages repetitions, and
produces the normalised-CC table plus text renderings of the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.correlation import (
    METRIC_ORDER,
    CorrelationResult,
    correlation_table,
)
from repro.core.metrics import MetricSet, compute_metrics
from repro.core.records import TraceCollection
from repro.errors import AnalysisError
from repro.util.tables import TextTable, render_bar_chart, render_series


@dataclass(frozen=True)
class RunMeasurement:
    """Everything one simulated run yields for analysis."""

    trace: TraceCollection
    exec_time: float
    fs_bytes: int
    label: str = ""
    extras: dict = field(default_factory=dict)

    def metrics(self, *, block_size: int = 512,
                impl: str = "numpy") -> MetricSet:
        """Compute the full metric set for this run."""
        return compute_metrics(
            self.trace,
            exec_time=self.exec_time,
            fs_bytes=self.fs_bytes,
            block_size=block_size,
            label=self.label,
            impl=impl,
            extras=self.extras,
        )


def average_metric_sets(sets: Sequence[MetricSet]) -> MetricSet:
    """Mean of repeated runs of the same sweep point, field by field.

    Count fields (ops/bytes/blocks) are averaged too and rounded — they
    are normally identical across repetitions; a mismatch larger than
    rounding noise indicates a non-deterministic workload and is let
    through deliberately (fault injection makes counts vary).
    """
    if not sets:
        raise AnalysisError("average of zero metric sets")
    n = len(sets)
    first = sets[0]
    return replace(
        first,
        iops=sum(s.iops for s in sets) / n,
        bandwidth=sum(s.bandwidth for s in sets) / n,
        arpt=sum(s.arpt for s in sets) / n,
        bps=sum(s.bps for s in sets) / n,
        exec_time=sum(s.exec_time for s in sets) / n,
        union_io_time=sum(s.union_io_time for s in sets) / n,
        app_ops=round(sum(s.app_ops for s in sets) / n),
        app_bytes=round(sum(s.app_bytes for s in sets) / n),
        app_blocks=round(sum(s.app_blocks for s in sets) / n),
        fs_bytes=round(sum(s.fs_bytes for s in sets) / n),
    )


class SweepAnalysis:
    """Accumulates sweep points and answers the paper's questions.

    >>> sweep = SweepAnalysis("record size")
    >>> sweep.add_point("4KB", [metric_set_rep1, metric_set_rep2, ...])
    >>> table = sweep.correlations()
    """

    def __init__(self, knob: str, *, block_size: int = 512) -> None:
        self.knob = knob
        self.block_size = block_size
        self._points: list[tuple[str, list[MetricSet]]] = []

    def add_point(self, label: str, repetitions: Sequence[MetricSet]) -> None:
        """Add one sweep point with its repetition metric sets."""
        if not repetitions:
            raise AnalysisError(f"sweep point {label!r} has no repetitions")
        self._points.append((label, list(repetitions)))

    def add_runs(self, label: str,
                 runs: Sequence[RunMeasurement]) -> None:
        """Convenience: add a point from raw run measurements."""
        self.add_point(
            label,
            [r.metrics(block_size=self.block_size) for r in runs],
        )

    @property
    def labels(self) -> list[str]:
        """Sweep point labels, in insertion order."""
        return [label for label, _ in self._points]

    def averaged(self) -> list[MetricSet]:
        """One repetition-averaged MetricSet per sweep point."""
        if not self._points:
            raise AnalysisError(f"sweep {self.knob!r} has no points")
        return [
            replace(average_metric_sets(reps), label=label)
            for label, reps in self._points
        ]

    def correlations(
        self, metrics: Sequence[str] = METRIC_ORDER,
    ) -> dict[str, CorrelationResult]:
        """Normalised CC of each metric against execution time."""
        return correlation_table(self.averaged(), metrics=metrics)

    def series(self, metric: str) -> list[float]:
        """One metric's repetition-averaged values across the sweep."""
        return [m.value_of(metric) for m in self.averaged()]

    # -- renderings -----------------------------------------------------------

    def render_cc_figure(self, title: str) -> str:
        """The paper's CC bar chart (Figs. 4-6, 9, 11, 12) as text."""
        table = self.correlations()
        return render_bar_chart(
            list(table.keys()),
            [r.normalized for r in table.values()],
            title=title,
        )

    def render_cc_table(self) -> str:
        """Normalised CC values as a table."""
        table = self.correlations()
        text = TextTable(["metric", "CC (raw)", "CC (normalized)",
                          "direction"])
        for name, result in table.items():
            text.add_row([
                name,
                f"{result.cc:+.4f}",
                f"{result.normalized:+.4f}",
                "correct" if result.direction_correct else "MISLEADING",
            ])
        return text.render()

    def render_cc_table_with_ci(self, *, level: float = 0.95) -> str:
        """CC table with Fisher confidence intervals and significance.

        Extends the paper's point estimates with the statistical caveat
        a handful of sweep points deserves (see
        :mod:`repro.core.confidence`).  Needs >= 4 sweep points.
        """
        from repro.core.confidence import cc_significant, fisher_ci
        table = self.correlations()
        n = len(self._points)
        text = TextTable(["metric", f"CC [{level:.0%} CI]", "direction",
                          "significant?"])
        for name, result in table.items():
            interval = fisher_ci(result.cc, n, level=level)
            text.add_row([
                name,
                str(interval),
                "correct" if result.direction_correct else "MISLEADING",
                "yes" if cc_significant(result.cc, n, level=level)
                else "no",
            ])
        return text.render()

    def to_csv(self) -> str:
        """The sweep's averaged points as CSV (one row per point).

        Columns: the knob label, every metric, execution time, and the
        byte/op context — ready for external plotting tools.
        """
        import csv
        import io
        averaged = self.averaged()
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow([
            "point", "iops", "bandwidth_Bps", "arpt_s", "bps",
            "exec_time_s", "union_io_time_s", "app_ops", "app_bytes",
            "app_blocks", "fs_bytes",
        ])
        for metric_set in averaged:
            writer.writerow([
                metric_set.label,
                repr(metric_set.iops),
                repr(metric_set.bandwidth),
                repr(metric_set.arpt),
                repr(metric_set.bps),
                repr(metric_set.exec_time),
                repr(metric_set.union_io_time),
                metric_set.app_ops,
                metric_set.app_bytes,
                metric_set.app_blocks,
                metric_set.fs_bytes,
            ])
        return buffer.getvalue()

    def render_detail(self, metrics: Sequence[str]) -> str:
        """Per-point series table (the Fig. 7/8/10-style detail views)."""
        averaged = self.averaged()
        columns = {
            metric: [m.value_of(metric) for m in averaged]
            for metric in metrics
        }
        return render_series(self.knob, self.labels, columns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SweepAnalysis {self.knob!r} points={len(self._points)}>"
