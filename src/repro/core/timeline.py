"""Timeline analytics on gathered traces.

Beyond the single BPS number, the measurement methodology's records
support richer views the paper's future work gestures at ("more
performance measurements using BPS"):

- :func:`per_process_breakdown` — each process's own B, union T, and
  BPS, next to the global figures (how much does overlap buy?);
- :func:`binned_bps` — BPS over time: the block throughput of each
  wall-clock bin, for spotting phases and stragglers;
- :func:`overlap_matrix` — pairwise overlapped seconds between
  processes' I/O, the raw material of concurrency diagnostics;
- :func:`render_gantt` — a terminal Gantt chart of the I/O intervals,
  one row per process (also exposed as ``bps gantt``).

Everything operates on a :class:`~repro.core.records.TraceCollection`
and is NumPy-vectorised where it matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


from repro.core.records import TraceCollection
from repro.errors import AnalysisError
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class ProcessSummary:
    """One process's share of the trace."""

    pid: int
    ops: int
    blocks: int
    union_time: float
    bps: float
    mean_response: float


def per_process_breakdown(trace: TraceCollection,
                          *, block_size: int = BLOCK_SIZE
                          ) -> list[ProcessSummary]:
    """Per-process B, T, and BPS, sorted by pid.

    The sum of per-process union times generally *exceeds* the global
    union time — that surplus is exactly the cross-process overlap BPS
    credits and per-process views cannot see.
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("breakdown of an empty trace")
    summaries = []
    for pid in app.pids():
        own = app.for_pid(pid)
        t = own.union_time()
        blocks = own.total_blocks(block_size)
        summaries.append(ProcessSummary(
            pid=pid,
            ops=len(own),
            blocks=blocks,
            union_time=t,
            bps=blocks / t if t > 0 else float("nan"),
            mean_response=float(own.response_times().mean()),
        ))
    return summaries


def overlap_surplus(trace: TraceCollection) -> float:
    """Sum of per-process union times minus the global union time.

    Zero for perfectly serialised processes; grows with cross-process
    concurrency.  (Within-process overlap — async I/O — is already
    collapsed on both sides.)
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("overlap of an empty trace")
    per_process = sum(app.for_pid(pid).union_time()
                      for pid in app.pids())
    return per_process - app.union_time()


def binned_bps(trace: TraceCollection, *, bins: int = 20,
               block_size: int = BLOCK_SIZE
               ) -> tuple[np.ndarray, np.ndarray]:
    """BPS per wall-clock bin: (bin_edges, bps_per_bin).

    Each record's blocks are spread uniformly over its own interval,
    then accumulated into ``bins`` equal bins spanning the trace; each
    bin's value is blocks-landing-in-bin / bin width.  Zero-length
    records contribute their whole block count to the bin containing
    their instant.
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("binned BPS of an empty trace")
    if bins < 1:
        raise AnalysisError(f"bins must be >= 1, got {bins}")
    first, last = app.span()
    if last <= first:
        raise AnalysisError("trace has zero wall extent")
    edges = np.linspace(first, last, bins + 1)
    width = (last - first) / bins
    totals = np.zeros(bins, dtype=float)
    for record in app:
        blocks = record.blocks(block_size)
        if record.duration == 0.0:
            index = min(int((record.start - first) / width), bins - 1)
            totals[index] += blocks
            continue
        # Fractional overlap of the record with every bin.
        lo = np.clip(edges[:-1], record.start, record.end)
        hi = np.clip(edges[1:], record.start, record.end)
        fractions = np.maximum(hi - lo, 0.0) / record.duration
        totals += blocks * fractions
    return edges, totals / width


def overlap_matrix(trace: TraceCollection) -> tuple[list[int], np.ndarray]:
    """Pairwise overlapped I/O seconds between processes.

    Returns (pids, M) with ``M[i, j]`` = seconds during which process
    ``pids[i]`` and ``pids[j]`` both had I/O in flight; the diagonal is
    each process's own union time.
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("overlap matrix of an empty trace")
    pids = app.pids()
    merged = {pid: app.for_pid(pid).merged_intervals() for pid in pids}
    n = len(pids)
    matrix = np.zeros((n, n), dtype=float)
    for i, pid_a in enumerate(pids):
        for j, pid_b in enumerate(pids):
            if j < i:
                matrix[i, j] = matrix[j, i]
                continue
            matrix[i, j] = _merged_overlap(merged[pid_a], merged[pid_b])
    return pids, matrix


def _merged_overlap(a: np.ndarray, b: np.ndarray) -> float:
    """Total overlap between two sorted disjoint interval sets."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i, 0], b[j, 0])
        hi = min(a[i, 1], b[j, 1])
        if hi > lo:
            total += hi - lo
        if a[i, 1] <= b[j, 1]:
            i += 1
        else:
            j += 1
    return total


def concurrency_histogram(trace: TraceCollection
                          ) -> dict[int, float]:
    """Seconds spent at each I/O concurrency depth (depth >= 1).

    ``{1: 2.5, 3: 0.4}`` means 2.5 s with exactly one request in
    flight and 0.4 s with exactly three.  The values sum to the union
    I/O time; the depth-weighted sum equals the total request time.
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("histogram of an empty trace")
    times, depth = app.concurrency_profile()
    histogram: dict[int, float] = {}
    widths = np.diff(times)
    for width, level in zip(widths, depth[:-1]):
        if level > 0 and width > 0:
            histogram[int(level)] = histogram.get(int(level), 0.0) \
                + float(width)
    return histogram


def render_gantt(trace: TraceCollection, *, width: int = 72) -> str:
    """Terminal Gantt chart: one row per process, '#' where I/O runs.

    Overlapping records of one process deepen the mark ('#' → digits
    2-9 for stacked concurrency).  The time axis spans the trace.
    """
    app = trace.app_records()
    if len(app) == 0:
        raise AnalysisError("gantt of an empty trace")
    if width < 10:
        raise AnalysisError("gantt needs width >= 10")
    first, last = app.span()
    span = last - first
    if span <= 0:
        raise AnalysisError("trace has zero wall extent")
    lines = []
    for pid in app.pids():
        depth = np.zeros(width, dtype=int)
        for record in app.for_pid(pid):
            lo = int((record.start - first) / span * width)
            hi = int(np.ceil((record.end - first) / span * width))
            lo = min(lo, width - 1)
            hi = max(hi, lo + 1)
            depth[lo:min(hi, width)] += 1
        cells = []
        for d in depth:
            if d == 0:
                cells.append(".")
            elif d == 1:
                cells.append("#")
            else:
                cells.append(str(min(d, 9)))
        lines.append(f"pid {pid:>4} |{''.join(cells)}|")
    lines.append(f"{'':>9}t={first:.6g}{'':>{max(1, width - 18)}}"
                 f"t={last:.6g}")
    return "\n".join(lines)
