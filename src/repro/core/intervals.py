"""Overlapped I/O time — step 3 of the BPS measurement methodology.

The T in ``BPS = B / T`` is *not* the sum of per-request times and *not*
the wall span of the run: it is the total length of the union of all
I/O intervals (paper Fig. 2).  Idle gaps don't count; concurrent
overlapping accesses count once.

Two implementations:

- :func:`union_time_paper` — a faithful port of the paper's Fig. 3
  pseudocode (sort by start time, then a single merge sweep).  Note: the
  pseudocode as printed *assigns* ``T`` at each gap, which would return
  only the last merged segment's length; the accompanying text ("the
  total time of I/O access") makes the intent unambiguous, so this port
  accumulates (``T +=``) — the one deviation, flagged here and in
  EXPERIMENTS.md.
- :func:`union_time` — a NumPy-vectorised equivalent (argsort + running
  maximum of end times), used on hot paths per the hpc-parallel guides.
  Property-based tests assert both agree to float precision.

Both run in O(n log n), dominated by the sort — the complexity the paper
claims in section III.C.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import AnalysisError


def _as_interval_array(intervals) -> np.ndarray:
    """Validate and convert input to an (n, 2) float array."""
    arr = np.asarray(intervals, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise AnalysisError(
            f"intervals must be an (n, 2) array of (start, end); "
            f"got shape {arr.shape}"
        )
    if np.any(np.isnan(arr)):
        raise AnalysisError("intervals contain NaN")
    if np.any(arr[:, 1] < arr[:, 0]):
        bad = int(np.argmax(arr[:, 1] < arr[:, 0]))
        raise AnalysisError(
            f"interval {bad} ends before it starts: {arr[bad].tolist()}"
        )
    return arr


def union_time_paper(intervals) -> float:
    """Overlapped I/O time via the paper's Fig. 3 merge sweep.

    Pure-Python reference implementation; kept verbatim-close to the
    pseudocode (modulo the ``T +=`` fix described in the module
    docstring) so the reproduction can be audited line against line.
    """
    arr = _as_interval_array(intervals)
    if arr.shape[0] == 0:
        return 0.0
    # "sort all records in col_time according to the start time"
    col_time = sorted((float(s), float(e)) for s, e in arr)
    total = 0.0
    temp_start, temp_end = col_time[0]
    for next_start, next_end in col_time[1:]:
        if temp_end < next_start:
            # Gap: close out the current merged segment.
            total += temp_end - temp_start
            temp_start, temp_end = next_start, next_end
        else:
            # Overlap/adjacency: extend the merged segment.
            # (The pseudocode writes the merge into nextRecord; the
            # effect is identical.)
            if next_end > temp_end:
                temp_end = next_end
    total += temp_end - temp_start
    return total


def merge_sweep(arr: np.ndarray, *,
                assume_sorted: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """(segment_starts, segment_ends) of the merged union of ``arr``.

    The single merge-sweep kernel shared by :func:`union_time` and
    :func:`merge_intervals`, and reused by the streaming accumulator in
    :mod:`repro.live.union` to fold drained reorder-buffer batches: sort
    by start (skipped when the caller already holds start-sorted
    intervals, e.g. the memoised ``TraceCollection.sorted_intervals``
    cache), take the running maximum of end times, and cut segments
    where a start exceeds every prior end.  Touching intervals
    (``end == next start``) merge — the gap test is strict — which
    makes the output the *canonical* disjoint union: any implementation
    with the same touching-merges rule produces bit-identical segment
    bounds, the property the streaming/batch equality proof rests on.

    ``arr`` must already be validated (n, 2) float; callers go through
    :func:`_as_interval_array` or a :class:`TraceCollection` cache.
    """
    n = arr.shape[0]
    if assume_sorted:
        starts = arr[:, 0]
        ends_cummax = np.maximum.accumulate(arr[:, 1])
    else:
        order = np.argsort(arr[:, 0], kind="stable")
        starts = arr[order, 0]
        ends_cummax = np.maximum.accumulate(arr[order, 1])
    is_segment_start = np.empty(n, dtype=bool)
    is_segment_start[0] = True
    np.greater(starts[1:], ends_cummax[:-1], out=is_segment_start[1:])
    segment_starts = starts[is_segment_start]
    # The end of each segment is the running max at its last element,
    # i.e. just before the next segment begins (or at the very end).
    last_index = np.flatnonzero(is_segment_start) - 1  # predecessors
    segment_ends = np.concatenate(
        (ends_cummax[last_index[1:]], ends_cummax[-1:]))
    return segment_starts, segment_ends


def union_time(intervals, *, assume_sorted: bool = False) -> float:
    """Overlapped I/O time, NumPy-vectorised.

    Sorts by start, takes the running maximum of end times, and sums the
    merged segment lengths.  Agrees with :func:`union_time_paper` (see
    the property tests); preferred on large traces.  Pass
    ``assume_sorted=True`` when the intervals are already start-sorted
    to skip the O(n log n) argsort (the dominant cost).
    """
    arr = _as_interval_array(intervals)
    if arr.shape[0] == 0:
        return 0.0
    segment_starts, segment_ends = merge_sweep(
        arr, assume_sorted=assume_sorted)
    return float(np.sum(segment_ends - segment_starts))


def merge_intervals(intervals, *, assume_sorted: bool = False) -> np.ndarray:
    """The union as disjoint sorted intervals, shape (m, 2).

    ``union_time(x) == merge_intervals(x) lengths summed`` by
    construction; exposed for visualisation and for the concurrency
    profile tests.
    """
    arr = _as_interval_array(intervals)
    if arr.shape[0] == 0:
        return arr
    segment_starts, segment_ends = merge_sweep(
        arr, assume_sorted=assume_sorted)
    return np.column_stack((segment_starts, segment_ends))


def concurrency_profile(intervals) -> tuple[np.ndarray, np.ndarray]:
    """Step function of I/O concurrency over time.

    Returns ``(times, depth)`` where ``depth[i]`` requests are in flight
    during ``[times[i], times[i+1])``; the last depth entry is always 0.
    Zero-length intervals contribute no depth.
    """
    arr = _as_interval_array(intervals)
    if arr.shape[0] == 0:
        return np.empty(0, dtype=float), np.empty(0, dtype=int)
    events = np.concatenate((
        np.column_stack((arr[:, 0], np.ones(len(arr)))),
        np.column_stack((arr[:, 1], -np.ones(len(arr)))),
    ))
    # Sort by time; at equal times, process ends (-1) before starts (+1)
    # so zero-length intervals and touching intervals don't inflate depth.
    order = np.lexsort((events[:, 1], events[:, 0]))
    events = events[order]
    times, first_idx = np.unique(events[:, 0], return_index=True)
    deltas = np.add.reduceat(events[:, 1], first_idx)
    depth = np.cumsum(deltas).astype(int)
    return times, depth


def max_concurrency(intervals) -> int:
    """Largest number of simultaneously in-flight requests."""
    _times, depth = concurrency_profile(intervals)
    if depth.size == 0:
        return 0
    return int(depth.max())


def total_request_time(intervals) -> float:
    """Plain sum of per-request durations (the quantity BPS does *not* use).

    Exposed because the difference ``total_request_time - union_time``
    is exactly the double-counted overlap that breaks ARPT-style
    reasoning in concurrent workloads.
    """
    arr = _as_interval_array(intervals)
    if arr.shape[0] == 0:
        return 0.0
    return float(np.sum(arr[:, 1] - arr[:, 0]))


def idle_time(intervals) -> float:
    """Wall-span time with no I/O in flight (the excluded inactive time)."""
    arr = _as_interval_array(intervals)
    if arr.shape[0] == 0:
        return 0.0
    span = float(arr[:, 1].max() - arr[:, 0].min())
    return span - union_time(arr)
