"""Jackknife sensitivity of correlation conclusions.

A CC computed from 6-8 sweep points can hinge on a single point.  The
leave-one-out jackknife asks: does any point's removal change the
conclusion?

- :func:`jackknife_cc` — the CC with each point removed in turn;
- :func:`direction_robust` — does the *direction* (the paper's whole
  argument) survive every single-point removal?
- :func:`influence` — each point's influence on the coefficient.

Complements :mod:`repro.core.confidence` (sampling error) with
structural sensitivity (dependence on individual design points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError
from repro.util.stats import pearson


@dataclass(frozen=True)
class JackknifeResult:
    """Leave-one-out analysis of one correlation."""

    cc: float                       # full-sample coefficient
    loo: tuple[float, ...]          # cc with point i removed
    labels: tuple[str, ...]         # sweep point labels

    @property
    def min_cc(self) -> float:
        """Most pessimistic leave-one-out coefficient."""
        return min(self.loo)

    @property
    def max_cc(self) -> float:
        """Most optimistic leave-one-out coefficient."""
        return max(self.loo)

    def direction_robust(self) -> bool:
        """Does sign(cc) survive every single-point removal?"""
        if self.cc == 0.0:
            return False
        sign = self.cc > 0
        return all((value > 0) == sign and value != 0.0
                   for value in self.loo)

    def most_influential(self) -> tuple[str, float]:
        """(label, |cc_full - cc_without_it|) of the pivotal point."""
        deltas = [abs(self.cc - value) for value in self.loo]
        index = max(range(len(deltas)), key=deltas.__getitem__)
        return self.labels[index], deltas[index]


def jackknife_cc(x: Sequence[float], y: Sequence[float],
                 labels: Sequence[str] | None = None) -> JackknifeResult:
    """Leave-one-out Pearson coefficients.

    Needs at least 4 points (3 remain after each removal).  A removal
    that leaves a zero-variance series contributes cc=0.0 (flagged as
    non-robust by :meth:`JackknifeResult.direction_robust`).
    """
    if len(x) != len(y):
        raise AnalysisError("jackknife needs equal-length series")
    n = len(x)
    if n < 4:
        raise AnalysisError(f"jackknife needs >= 4 points, got {n}")
    if labels is None:
        labels = [str(i) for i in range(n)]
    if len(labels) != n:
        raise AnalysisError("labels length mismatch")
    full = pearson(x, y)
    loo = []
    for skip in range(n):
        xs = [v for i, v in enumerate(x) if i != skip]
        ys = [v for i, v in enumerate(y) if i != skip]
        try:
            loo.append(pearson(xs, ys))
        except AnalysisError:
            loo.append(0.0)
    return JackknifeResult(cc=full, loo=tuple(loo),
                           labels=tuple(labels))


def influence(x: Sequence[float], y: Sequence[float],
              labels: Sequence[str] | None = None
              ) -> list[tuple[str, float]]:
    """Per-point influence |cc_full - cc_loo|, sorted descending."""
    result = jackknife_cc(x, y, labels)
    pairs = [(label, abs(result.cc - value))
             for label, value in zip(result.labels, result.loo)]
    return sorted(pairs, key=lambda p: -p[1])


def sweep_direction_robust(sweep, metric: str) -> bool:
    """Convenience: is a SweepAnalysis metric's direction jackknife-robust?"""
    averaged = sweep.averaged()
    values = [m.value_of(metric) for m in averaged]
    exec_times = [m.exec_time for m in averaged]
    return jackknife_cc(values, exec_times,
                        sweep.labels).direction_robust()
