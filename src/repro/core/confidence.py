"""Statistical confidence for correlation results.

The paper reports point CC values from 6-8 sweep points; with so few
points a CC of 0.9 and one of 0.6 may not be meaningfully different.
This module adds the standard Fisher z machinery so sweep reports can
carry confidence intervals:

- :func:`fisher_ci` — CI for a single Pearson coefficient;
- :func:`cc_significant` — is the correlation significantly nonzero?
- :func:`compare_cc` — are two coefficients (from independent sweeps)
  significantly different?

Pure NumPy/scipy; used by the extended sweep report
(:meth:`repro.core.analysis.SweepAnalysis.render_cc_table_with_ci`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as _scipy_stats

from repro.errors import AnalysisError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided CI for a correlation coefficient."""

    cc: float
    low: float
    high: float
    n: int
    level: float

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the interval?"""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.cc:+.3f} "
                f"[{self.low:+.3f}, {self.high:+.3f}]@{self.level:.0%}")


def _fisher_z(cc: float) -> float:
    return math.atanh(cc)


def _inverse_fisher(z: float) -> float:
    return math.tanh(z)


def fisher_ci(cc: float, n: int, *, level: float = 0.95
              ) -> ConfidenceInterval:
    """Fisher-transform confidence interval for a Pearson CC.

    ``n`` is the number of (x, y) points the coefficient was computed
    from; requires ``n >= 4`` (the transform's variance is 1/(n-3)).
    """
    if not -1.0 <= cc <= 1.0:
        raise AnalysisError(f"CC out of range: {cc}")
    if n < 4:
        raise AnalysisError(
            f"Fisher CI needs n >= 4 sweep points, got {n}"
        )
    if not 0.0 < level < 1.0:
        raise AnalysisError(f"bad confidence level {level}")
    if abs(cc) == 1.0:
        # Degenerate: the transform diverges; the CI collapses.
        return ConfidenceInterval(cc, cc, cc, n, level)
    z = _fisher_z(cc)
    se = 1.0 / math.sqrt(n - 3)
    critical = float(_scipy_stats.norm.ppf(0.5 + level / 2.0))
    return ConfidenceInterval(
        cc=cc,
        low=_inverse_fisher(z - critical * se),
        high=_inverse_fisher(z + critical * se),
        n=n,
        level=level,
    )


def cc_significant(cc: float, n: int, *, level: float = 0.95) -> bool:
    """Is the correlation significantly different from zero?"""
    return not fisher_ci(cc, n, level=level).contains(0.0)


def compare_cc(cc_a: float, n_a: int, cc_b: float, n_b: int,
               *, level: float = 0.95) -> bool:
    """Are two independent coefficients significantly different?

    Standard two-sample Fisher z test.  True = the difference is
    significant at ``level``.
    """
    if n_a < 4 or n_b < 4:
        raise AnalysisError("comparison needs n >= 4 on both sides")
    if abs(cc_a) == 1.0 or abs(cc_b) == 1.0:
        return cc_a != cc_b
    z = abs(_fisher_z(cc_a) - _fisher_z(cc_b))
    se = math.sqrt(1.0 / (n_a - 3) + 1.0 / (n_b - 3))
    critical = float(_scipy_stats.norm.ppf(0.5 + level / 2.0))
    return z > critical * se
