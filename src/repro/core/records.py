"""I/O access records — step 1 of the BPS measurement methodology.

The paper (section III.B) captures one record per I/O access of a
process: process ID, I/O size, start time, end time.  Records are taken
at the I/O middleware layer (MPI-IO) or in the I/O function library
(POSIX), so applications need no modification; our middleware package
does exactly that via :class:`~repro.middleware.tracing.TraceRecorder`.

:class:`TraceCollection` is step 2: the global gather of all processes'
records, from which both ``B`` (total application blocks) and the time
pair collection (input to the union-time algorithm) are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import AnalysisError
from repro.util.units import BLOCK_SIZE, bytes_to_blocks

#: Layer tags a record can carry.  ``app`` records are what BPS counts;
#: ``fs`` records (bytes actually moved below the middleware) exist so
#: bandwidth can be measured at the file-system boundary.
LAYER_APP = "app"
LAYER_FS = "fs"


@dataclass(frozen=True)
class IORecord:
    """One I/O access of one process.

    The paper's record is (process ID, I/O size in blocks, start, end) —
    32 bytes.  We additionally keep the operation, file, and offset for
    the offline toolkit, and a ``success`` flag: failed accesses are
    still counted in ``B`` (section III.A counts "all successful
    accesses, non-successful ones, and all concurrent ones").
    """

    pid: int
    op: str
    nbytes: int
    start: float
    end: float
    file: str = ""
    offset: int = -1
    success: bool = True
    layer: str = LAYER_APP

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise AnalysisError(f"negative record size: {self.nbytes}")
        if self.end < self.start:
            raise AnalysisError(
                f"record ends before it starts: [{self.start}, {self.end}]"
            )

    def blocks(self, block_size: int = BLOCK_SIZE) -> int:
        """Blocks this access contributes to B (partial blocks round up)."""
        return bytes_to_blocks(self.nbytes, block_size)

    @property
    def duration(self) -> float:
        """Response time of this access."""
        return self.end - self.start

    def shifted(self, delta: float) -> "IORecord":
        """A copy with both timestamps moved by ``delta``."""
        return replace(self, start=self.start + delta, end=self.end + delta)


class TraceCollection:
    """A gathered set of I/O records (the paper's global collection).

    Supports incremental building (the middleware appends as accesses
    complete), merging per-process collections, and NumPy export of the
    (start, end) pairs for the union-time computation.
    """

    def __init__(self, records: Iterable[IORecord] = ()) -> None:
        self._records: list[IORecord] = list(records)

    # -- building ---------------------------------------------------------

    def add(self, record: IORecord) -> None:
        """Append one record."""
        self._records.append(record)

    def extend(self, records: Iterable[IORecord]) -> None:
        """Append many records."""
        self._records.extend(records)

    def merge(self, other: "TraceCollection") -> "TraceCollection":
        """New collection containing both sets of records (step 2 gather)."""
        merged = TraceCollection(self._records)
        merged.extend(other._records)
        return merged

    @classmethod
    def gather(cls, collections: Iterable["TraceCollection"]) -> "TraceCollection":
        """Gather many per-process collections into one global one."""
        result = cls()
        for collection in collections:
            result.extend(collection._records)
        return result

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IORecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> IORecord:
        return self._records[index]

    # -- views ---------------------------------------------------------------

    def filter(self, predicate: Callable[[IORecord], bool]) -> "TraceCollection":
        """Records satisfying ``predicate``, as a new collection."""
        return TraceCollection(r for r in self._records if predicate(r))

    def for_pid(self, pid: int) -> "TraceCollection":
        """Records of one process."""
        return self.filter(lambda r: r.pid == pid)

    def for_op(self, op: str) -> "TraceCollection":
        """Records of one operation type ('read' / 'write')."""
        return self.filter(lambda r: r.op == op)

    def app_records(self) -> "TraceCollection":
        """Application-layer records only (what BPS counts)."""
        return self.filter(lambda r: r.layer == LAYER_APP)

    def pids(self) -> list[int]:
        """Distinct process IDs, sorted."""
        return sorted({r.pid for r in self._records})

    # -- aggregates -------------------------------------------------------------

    def total_bytes(self) -> int:
        """Sum of record sizes in bytes."""
        return sum(r.nbytes for r in self._records)

    def total_blocks(self, block_size: int = BLOCK_SIZE) -> int:
        """B of the BPS equation: per-record blocks, summed.

        Per-record rounding (not one division of the byte total) matters:
        two 100-byte accesses are two blocks, not one.
        """
        return sum(r.blocks(block_size) for r in self._records)

    def intervals(self) -> np.ndarray:
        """(n, 2) float array of (start, end) pairs, in record order."""
        if not self._records:
            return np.empty((0, 2), dtype=float)
        out = np.empty((len(self._records), 2), dtype=float)
        for i, r in enumerate(self._records):
            out[i, 0] = r.start
            out[i, 1] = r.end
        return out

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end); raises on an empty collection."""
        if not self._records:
            raise AnalysisError("span of an empty trace")
        return (min(r.start for r in self._records),
                max(r.end for r in self._records))

    def response_times(self) -> np.ndarray:
        """Per-record durations, in record order."""
        return np.array([r.duration for r in self._records], dtype=float)

    def estimated_record_bytes(self) -> int:
        """Space-overhead estimate at the paper's 32 bytes per record.

        Section III.C: 65535 operations ≈ 3 MB (the paper's arithmetic
        is generous; 65535 × 32 B = 2 MiB — we report the 32 B/record
        figure it states).
        """
        return 32 * len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TraceCollection n={len(self._records)} "
            f"pids={len({r.pid for r in self._records})}>"
        )
