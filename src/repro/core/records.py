"""I/O access records — step 1 of the BPS measurement methodology.

The paper (section III.B) captures one record per I/O access of a
process: process ID, I/O size, start time, end time.  Records are taken
at the I/O middleware layer (MPI-IO) or in the I/O function library
(POSIX), so applications need no modification; our middleware package
does exactly that via :class:`~repro.middleware.tracing.TraceRecorder`.

:class:`TraceCollection` is step 2: the global gather of all processes'
records, from which both ``B`` (total application blocks) and the time
pair collection (input to the union-time algorithm) are derived.

Storage layout
--------------

The collection is *columnar* (structure-of-arrays): one NumPy array per
record field (``pid``/``nbytes``/``start``/``end``/``offset``/
``success``) plus interned categorical columns for ``op``/``file``/
``layer`` (int32 codes into a per-collection string table).  Incoming
records land on a plain-list tail so the recording hot path stays O(1);
the tail is folded into the arrays the first time a columnar operation
needs them.  :class:`IORecord` remains the row-level API — iteration and
indexing materialise rows lazily — so middleware recording and the
trace readers work unchanged.

Derived results (interval arrays, union time, block totals, filtered
views) are memoised per collection and invalidated on any append; see
DESIGN.md §7 for the contract.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.errors import AnalysisError
from repro.util.units import BLOCK_SIZE, bytes_to_blocks

#: Layer tags a record can carry.  ``app`` records are what BPS counts;
#: ``fs`` records (bytes actually moved below the middleware) exist so
#: bandwidth can be measured at the file-system boundary.
LAYER_APP = "app"
LAYER_FS = "fs"


@dataclass(frozen=True)
class IORecord:
    """One I/O access of one process.

    The paper's record is (process ID, I/O size in blocks, start, end) —
    32 bytes.  We additionally keep the operation, file, and offset for
    the offline toolkit, and a ``success`` flag: failed accesses are
    still counted in ``B`` (section III.A counts "all successful
    accesses, non-successful ones, and all concurrent ones").
    """

    pid: int
    op: str
    nbytes: int
    start: float
    end: float
    file: str = ""
    offset: int = -1
    success: bool = True
    layer: str = LAYER_APP
    #: Which retry attempt this record describes: 0 for the first issue
    #: of an operation, k for its k-th re-issue.  Middleware retry emits
    #: one record per attempt — each attempt occupies the I/O system, so
    #: each contributes to B and to the union time (section III.A counts
    #: non-successful accesses too).
    retries: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise AnalysisError(f"negative record size: {self.nbytes}")
        if self.end < self.start:
            raise AnalysisError(
                f"record ends before it starts: [{self.start}, {self.end}]"
            )
        if self.retries < 0:
            raise AnalysisError(f"negative retry count: {self.retries}")

    def blocks(self, block_size: int = BLOCK_SIZE) -> int:
        """Blocks this access contributes to B (partial blocks round up)."""
        return bytes_to_blocks(self.nbytes, block_size)

    @property
    def duration(self) -> float:
        """Response time of this access."""
        return self.end - self.start

    def shifted(self, delta: float) -> "IORecord":
        """A copy with both timestamps moved by ``delta``."""
        return replace(self, start=self.start + delta, end=self.end + delta)


class _Interner:
    """Append-only string <-> int32 code table for a categorical column."""

    __slots__ = ("values", "_index")

    def __init__(self, values: Iterable[str] = ()) -> None:
        self.values: list[str] = list(values)
        self._index: dict[str, int] = {
            value: code for code, value in enumerate(self.values)
        }

    def code(self, value: str) -> int:
        code = self._index.get(value)
        if code is None:
            code = len(self.values)
            self.values.append(value)
            self._index[value] = code
        return code

    def lookup(self, value: str) -> int | None:
        """Code of ``value`` without interning it; None if absent."""
        return self._index.get(value)

    def remap_from(self, other: "_Interner") -> np.ndarray:
        """Array mapping ``other``'s codes to this table's codes."""
        if not other.values:
            return np.empty(0, dtype=np.int32)
        return np.fromiter((self.code(v) for v in other.values),
                           dtype=np.int32, count=len(other.values))


#: Column name -> dtype of the consolidated arrays.  ``op``/``file``/
#: ``layer`` are int32 codes into the collection's interners.
_COLUMN_DTYPES = {
    "pid": np.int64,
    "nbytes": np.int64,
    "start": np.float64,
    "end": np.float64,
    "offset": np.int64,
    "success": np.bool_,
    "retries": np.int32,
    "op": np.int32,
    "file": np.int32,
    "layer": np.int32,
}


class TraceCollection:
    """A gathered set of I/O records (the paper's global collection).

    Supports incremental building (the middleware appends as accesses
    complete), merging per-process collections, NumPy export of the
    (start, end) pairs for the union-time computation, and vectorised
    filtering/aggregation over the columnar backend.
    """

    def __init__(self, records: Iterable[IORecord] = ()) -> None:
        #: Consolidated columns (None until the first consolidation).
        self._cols: dict[str, np.ndarray] | None = None
        #: Appended-but-not-consolidated rows (the recording hot path).
        self._tail: list[IORecord] = list(records)
        self._ops = _Interner()
        self._files = _Interner()
        self._layers = _Interner((LAYER_APP, LAYER_FS))
        #: Categorical columns still held as raw string arrays (bulk
        #: ingest defers interning until codes are actually needed, so
        #: metric pipelines never pay for columns they don't read).
        self._raw_cats: set[str] = set()
        #: Memoised derived results; cleared by :meth:`_invalidate`.
        self._cache: dict = {}
        #: Set on cached views: (weakref to parent, cache key), so a
        #: mutated view detaches itself from the parent's cache.
        self._parent_ref: tuple[weakref.ref, object] | None = None

    # -- columnar plumbing -------------------------------------------------

    @classmethod
    def _from_columns(cls, cols: dict[str, np.ndarray],
                      ops: _Interner, files: _Interner,
                      layers: _Interner,
                      raw_cats: set[str] = frozenset()) -> "TraceCollection":
        view = cls.__new__(cls)
        view._cols = cols
        view._tail = []
        # Interners are append-only, so views share them: codes written
        # before the view was taken can never change meaning.
        view._ops = ops
        view._files = files
        view._layers = layers
        view._raw_cats = set(raw_cats)
        view._cache = {}
        view._parent_ref = None
        return view

    def _interner_for(self, name: str) -> _Interner:
        return {"op": self._ops, "file": self._files,
                "layer": self._layers}[name]

    def _materialise_cat(self, name: str) -> None:
        """Replace a raw string column with interned int32 codes."""
        if name not in self._raw_cats:
            return
        arr = self._cols[name]
        interner = self._interner_for(name)
        # Vectorised interning: unique the column once, intern only the
        # (few) distinct values, then expand codes by inverse.
        uniques, inverse = np.unique(arr, return_inverse=True)
        unique_codes = np.fromiter(
            (interner.code(str(value)) for value in uniques),
            np.int32, count=len(uniques))
        self._cols[name] = unique_codes[inverse]
        self._raw_cats.discard(name)

    def _consolidate(self) -> None:
        """Fold the row tail into the column arrays."""
        tail = self._tail
        if not tail:
            return
        if self._cols is not None:
            # Tail rows arrive as interned codes; any raw bulk-ingested
            # categorical columns must be coded before concatenation.
            for name in tuple(self._raw_cats):
                self._materialise_cat(name)
        n = len(tail)
        fresh = {
            "pid": np.fromiter((r.pid for r in tail), np.int64, count=n),
            "nbytes": np.fromiter((r.nbytes for r in tail), np.int64,
                                  count=n),
            "start": np.fromiter((r.start for r in tail), np.float64,
                                 count=n),
            "end": np.fromiter((r.end for r in tail), np.float64, count=n),
            "offset": np.fromiter((r.offset for r in tail), np.int64,
                                  count=n),
            "success": np.fromiter((r.success for r in tail), np.bool_,
                                   count=n),
            "retries": np.fromiter((r.retries for r in tail), np.int32,
                                   count=n),
            "op": np.fromiter((self._ops.code(r.op) for r in tail),
                              np.int32, count=n),
            "file": np.fromiter((self._files.code(r.file) for r in tail),
                                np.int32, count=n),
            "layer": np.fromiter((self._layers.code(r.layer) for r in tail),
                                 np.int32, count=n),
        }
        if self._cols is None:
            self._cols = fresh
        else:
            self._cols = {
                name: np.concatenate((self._cols[name], fresh[name]))
                for name in _COLUMN_DTYPES
            }
        self._tail = []

    def _col(self, name: str) -> np.ndarray:
        self._consolidate()
        if self._cols is None:
            return np.empty(0, dtype=_COLUMN_DTYPES[name])
        return self._cols[name]

    def _invalidate(self) -> None:
        self._cache.clear()
        if self._parent_ref is not None:
            parent_ref, key = self._parent_ref
            parent = parent_ref()
            # Detach from the parent's view cache — but only if the
            # parent still caches *this* view (it may have been
            # invalidated and rebuilt since).
            if parent is not None and parent._cache.get(key) is self:
                del parent._cache[key]
            self._parent_ref = None

    def _memo(self, key, build):
        try:
            return self._cache[key]
        except KeyError:
            value = self._cache[key] = build()
            return value

    def _mask_view(self, mask: np.ndarray) -> "TraceCollection":
        self._consolidate()
        if self._cols is None:
            return TraceCollection()
        cols = {name: arr[mask] for name, arr in self._cols.items()}
        return TraceCollection._from_columns(
            cols, self._ops, self._files, self._layers, self._raw_cats)

    def _cached_mask_view(self, key, make_mask) -> "TraceCollection":
        def build():
            view = self._mask_view(make_mask())
            view._parent_ref = (weakref.ref(self), key)
            return view
        return self._memo(key, build)

    # -- building ---------------------------------------------------------

    def add(self, record: IORecord) -> None:
        """Append one record."""
        self._tail.append(record)
        self._invalidate()

    def extend(self, records: Iterable[IORecord]) -> None:
        """Append many records."""
        self._tail.extend(records)
        self._invalidate()

    def merge(self, other: "TraceCollection") -> "TraceCollection":
        """New collection containing both sets of records (step 2 gather)."""
        return TraceCollection.gather((self, other))

    @classmethod
    def gather(cls, collections: Iterable["TraceCollection"]) -> "TraceCollection":
        """Gather many per-process collections into one global one."""
        result = cls()
        for collection in collections:
            result._append_collection(collection)
        return result

    def _append_collection(self, other: "TraceCollection") -> None:
        other._consolidate()
        if other._cols is not None:
            for name in tuple(other._raw_cats):
                other._materialise_cat(name)
            cols = dict(other._cols)
            # Remap the other collection's categorical codes into this
            # collection's tables (cheap: tables are tiny).
            for name, interner, theirs in (
                ("op", self._ops, other._ops),
                ("file", self._files, other._files),
                ("layer", self._layers, other._layers),
            ):
                mapping = interner.remap_from(theirs)
                cols[name] = mapping[cols[name]]
            self._consolidate()  # flush own tail first to keep order
            if self._cols is None:
                self._cols = cols
            else:
                for name in tuple(self._raw_cats):
                    self._materialise_cat(name)
                self._cols = {
                    name: np.concatenate((self._cols[name], cols[name]))
                    for name in _COLUMN_DTYPES
                }
        self._invalidate()

    @classmethod
    def from_arrays(
        cls,
        *,
        pid,
        nbytes,
        start,
        end,
        op="read",
        file="",
        offset=-1,
        success=True,
        retries=0,
        layer=LAYER_APP,
    ) -> "TraceCollection":
        """Build a collection directly from columns (array-native ingest).

        Scalar ``op``/``file``/``layer``/``offset``/``success`` broadcast
        over all rows; sequences must match the length of ``pid``.  This
        is the fast path for synthetic traces and bulk loaders — no
        per-row :class:`IORecord` objects are created.
        """
        pid_arr = np.asarray(pid, dtype=np.int64)
        n = pid_arr.shape[0] if pid_arr.ndim else 0
        if pid_arr.ndim != 1:
            raise AnalysisError("from_arrays needs 1-D columns")

        def numeric(values, dtype):
            arr = np.asarray(values, dtype=dtype)
            if arr.ndim == 0:
                return np.full(n, arr[()], dtype=dtype)
            if arr.shape[0] != n:
                raise AnalysisError(
                    f"column length {arr.shape[0]} != {n}")
            return arr

        nbytes_arr = numeric(nbytes, np.int64)
        start_arr = numeric(start, np.float64)
        end_arr = numeric(end, np.float64)
        retries_arr = numeric(retries, np.int32)
        if np.any(nbytes_arr < 0):
            raise AnalysisError("negative record size in nbytes column")
        if np.any(retries_arr < 0):
            raise AnalysisError("negative retry count in retries column")
        if np.any(np.isnan(start_arr)) or np.any(np.isnan(end_arr)):
            raise AnalysisError("NaN timestamps in trace columns")
        if np.any(end_arr < start_arr):
            bad = int(np.argmax(end_arr < start_arr))
            raise AnalysisError(
                f"record {bad} ends before it starts: "
                f"[{start_arr[bad]}, {end_arr[bad]}]"
            )

        result = cls()

        def categorical(name, values, interner) -> np.ndarray:
            if isinstance(values, str):
                return np.full(n, interner.code(values), dtype=np.int32)
            # Sequence: keep the raw string array and defer interning
            # until codes are actually needed (queries that never read
            # this column never pay for it).
            arr = np.asarray(values)
            if arr.shape != (n,):
                raise AnalysisError(
                    f"column length {arr.shape} != ({n},)")
            result._raw_cats.add(name)
            return arr

        result._cols = {
            "pid": pid_arr,
            "nbytes": nbytes_arr,
            "start": start_arr,
            "end": end_arr,
            "offset": numeric(offset, np.int64),
            "success": numeric(success, np.bool_),
            "retries": retries_arr,
            "op": categorical("op", op, result._ops),
            "file": categorical("file", file, result._files),
            "layer": categorical("layer", layer, result._layers),
        }
        return result

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        n = 0 if self._cols is None else self._cols["pid"].shape[0]
        return n + len(self._tail)

    def _cat_at(self, name: str, index: int) -> str:
        if name in self._raw_cats:
            return str(self._cols[name][index])
        return self._interner_for(name).values[self._cols[name][index]]

    def _row(self, index: int) -> IORecord:
        cols = self._cols
        return IORecord(
            pid=int(cols["pid"][index]),
            op=self._cat_at("op", index),
            nbytes=int(cols["nbytes"][index]),
            start=float(cols["start"][index]),
            end=float(cols["end"][index]),
            file=self._cat_at("file", index),
            offset=int(cols["offset"][index]),
            success=bool(cols["success"][index]),
            layer=self._cat_at("layer", index),
            retries=int(cols["retries"][index]),
        )

    def __iter__(self) -> Iterator[IORecord]:
        self._consolidate()
        for index in range(len(self)):
            yield self._row(index)

    def __getitem__(self, index: int) -> IORecord:
        self._consolidate()
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self._row(index)

    # -- pickling (parallel sweep results cross process boundaries) ----------

    def __getstate__(self) -> dict:
        self._consolidate()
        return {
            "cols": self._cols,
            "ops": self._ops.values,
            "files": self._files.values,
            "layers": self._layers.values,
            "raw_cats": sorted(self._raw_cats),
        }

    def __setstate__(self, state: dict) -> None:
        self._cols = state["cols"]
        self._tail = []
        self._ops = _Interner(state["ops"])
        self._files = _Interner(state["files"])
        self._layers = _Interner(state["layers"])
        self._raw_cats = set(state["raw_cats"])
        self._cache = {}
        self._parent_ref = None

    # -- views ---------------------------------------------------------------

    def filter(self, predicate: Callable[[IORecord], bool]) -> "TraceCollection":
        """Records satisfying ``predicate``, as a new collection.

        The generic escape hatch: materialises each row.  Prefer the
        vectorised :meth:`for_pid` / :meth:`for_op` / :meth:`for_layer` /
        :meth:`for_pid_range` views on hot paths.
        """
        return TraceCollection(r for r in self if predicate(r))

    def for_pid(self, pid: int) -> "TraceCollection":
        """Records of one process (vectorised boolean-mask view)."""
        return self._cached_mask_view(
            ("view", "pid", pid), lambda: self._col("pid") == pid)

    def for_pid_range(self, pids: range) -> "TraceCollection":
        """Records whose pid falls in a contiguous ``range`` (step 1)."""
        if pids.step != 1:
            raise AnalysisError("for_pid_range needs a step-1 range")
        return self._cached_mask_view(
            ("view", "pid_range", pids.start, pids.stop),
            lambda: (self._col("pid") >= pids.start)
                    & (self._col("pid") < pids.stop))

    def _cat_mask(self, name: str, value: str) -> np.ndarray:
        column = self._col(name)  # consolidates, interning tail values
        if name in self._raw_cats:
            return column == value  # one C-level pass, no interning
        code = self._interner_for(name).lookup(value)
        if code is None:
            return np.zeros(column.shape[0], dtype=bool)
        return column == code

    def for_op(self, op: str) -> "TraceCollection":
        """Records of one operation type ('read' / 'write')."""
        return self._cached_mask_view(
            ("view", "op", op), lambda: self._cat_mask("op", op))

    def for_layer(self, layer: str) -> "TraceCollection":
        """Records of one measurement layer ('app' / 'fs')."""
        return self._cached_mask_view(
            ("view", "layer", layer), lambda: self._cat_mask("layer", layer))

    def app_records(self) -> "TraceCollection":
        """Application-layer records only (what BPS counts)."""
        return self.for_layer(LAYER_APP)

    def fs_records(self) -> "TraceCollection":
        """File-system-layer records only (what bandwidth sees)."""
        return self.for_layer(LAYER_FS)

    def pids(self) -> list[int]:
        """Distinct process IDs, sorted."""
        return self._memo(
            "pids", lambda: [int(p) for p in np.unique(self._col("pid"))])

    # -- aggregates -------------------------------------------------------------

    def total_bytes(self) -> int:
        """Sum of record sizes in bytes."""
        return self._memo(
            "total_bytes", lambda: int(self._col("nbytes").sum()))

    def total_blocks(self, block_size: int = BLOCK_SIZE) -> int:
        """B of the BPS equation: per-record blocks, summed.

        Per-record rounding (not one division of the byte total) matters:
        two 100-byte accesses are two blocks, not one.
        """
        if block_size <= 0:
            raise AnalysisError(
                f"block size must be positive, got {block_size}")
        def build():
            nbytes = self._col("nbytes")
            return int(np.sum(-(-nbytes // block_size)))
        return self._memo(("total_blocks", block_size), build)

    def total_retries(self) -> int:
        """Total re-issues across all records (sum of ``retries``).

        Recovery-traffic summary: 0 on a clean run; every middleware
        retry adds 1 (each retried attempt carries its attempt index, so
        the sum over per-attempt records is the re-issue count).
        """
        return self._memo(
            "total_retries", lambda: int(self._col("retries").sum()))

    def failed_records(self) -> int:
        """Number of records whose access did not succeed."""
        return self._memo(
            "failed_records",
            lambda: int(np.count_nonzero(~self._col("success"))))

    def column_array(self, name: str) -> np.ndarray:
        """One consolidated column as a NumPy array.

        Numeric columns come back as the stored arrays (treat as
        read-only); categorical columns (``op``/``file``/``layer``) come
        back *decoded* to their string values — the layout
        :class:`~repro.live.chunk.RecordChunk` consumes, so the chunked
        streaming path never materialises row objects.
        """
        if name not in _COLUMN_DTYPES:
            known = ", ".join(sorted(_COLUMN_DTYPES))
            raise AnalysisError(
                f"unknown column {name!r}; known: {known}")
        column = self._col(name)
        if name not in ("op", "file", "layer") or name in self._raw_cats:
            return column
        values = self._interner_for(name).values
        if not values:
            return np.empty(0, dtype=object)
        table = np.asarray(values, dtype=object)
        return table[column]

    def to_columns(self) -> dict[str, list]:
        """Plain-Python columns, the JSON-able inverse of
        :meth:`from_arrays`.

        Numeric columns come back as Python ints/floats/bools (exact —
        float64 → float survives a JSON round trip bit-for-bit);
        categorical columns come back as their string values.  The
        checkpoint journal stores traces this way: one list per column
        is far cheaper to serialise than one dict per record.
        """
        self._consolidate()
        if self._cols is None:
            return {name: [] for name in _COLUMN_DTYPES}
        columns = {
            name: self._cols[name].tolist()
            for name in ("pid", "nbytes", "start", "end", "offset",
                         "success", "retries")
        }
        for name in ("op", "file", "layer"):
            if name in self._raw_cats:
                columns[name] = [str(v) for v in self._cols[name]]
            else:
                values = self._interner_for(name).values
                columns[name] = [values[code]
                                 for code in self._cols[name].tolist()]
        return columns

    def intervals(self) -> np.ndarray:
        """(n, 2) float array of (start, end) pairs, in record order.

        The array is memoised and returned read-only; copy before
        mutating.
        """
        def build():
            arr = np.column_stack((self._col("start"), self._col("end")))
            arr = arr.reshape(-1, 2)  # keep (0, 2) shape when empty
            arr.setflags(write=False)
            return arr
        return self._memo("intervals", build)

    def sorted_intervals(self) -> np.ndarray:
        """Intervals stably sorted by start time (read-only, memoised).

        This is the shared input of :func:`~repro.core.intervals.union_time`
        and :func:`~repro.core.intervals.merge_intervals` — computing it
        once means repeated metric queries never re-sort.
        """
        def build():
            arr = self.intervals()
            order = np.argsort(arr[:, 0], kind="stable")
            out = arr[order]
            out.setflags(write=False)
            return out
        return self._memo("sorted_intervals", build)

    def union_time(self, *, impl: str = "numpy") -> float:
        """Memoised union I/O time of this collection's intervals.

        ``impl`` is "numpy" (vectorised, default) or "paper" (the pure-
        Python Fig. 3 port); results are cached per impl and invalidated
        on append.
        """
        from repro.core import intervals as _iv
        if impl == "numpy":
            return self._memo(
                ("union_time", "numpy"),
                lambda: _iv.union_time(self.sorted_intervals(),
                                       assume_sorted=True))
        if impl == "paper":
            return self._memo(
                ("union_time", "paper"),
                lambda: _iv.union_time_paper(self.intervals()))
        raise AnalysisError(f"unknown union-time impl {impl!r}")

    def merged_intervals(self) -> np.ndarray:
        """Memoised disjoint union of this collection's intervals."""
        from repro.core import intervals as _iv
        def build():
            merged = _iv.merge_intervals(self.sorted_intervals(),
                                         assume_sorted=True)
            merged.setflags(write=False)
            return merged
        return self._memo("merged_intervals", build)

    def concurrency_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """Memoised (times, depth) concurrency step function."""
        from repro.core import intervals as _iv
        return self._memo(
            "concurrency_profile",
            lambda: _iv.concurrency_profile(self.intervals()))

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end); raises on an empty collection."""
        def build():
            if len(self) == 0:
                raise AnalysisError("span of an empty trace")
            return (float(self._col("start").min()),
                    float(self._col("end").max()))
        return self._memo("span", build)

    def response_times(self) -> np.ndarray:
        """Per-record durations, in record order (read-only, memoised)."""
        def build():
            arr = self._col("end") - self._col("start")
            arr.setflags(write=False)
            return arr
        return self._memo("response_times", build)

    def estimated_record_bytes(self) -> int:
        """Space-overhead estimate at the paper's 32 bytes per record.

        Section III.C: 65535 operations ≈ 3 MB (the paper's arithmetic
        is generous; 65535 × 32 B = 2 MiB — we report the 32 B/record
        figure it states).
        """
        return 32 * len(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TraceCollection n={len(self)} "
            f"pids={len(self.pids())}>"
        )
