"""Command-line toolkit: ``bps`` (or ``python -m repro``).

Subcommands:

- ``analyze`` — compute BPS/IOPS/BW/ARPT from a recorded trace file
  (CSV, JSONL, blkparse text, or fio JSON) — the paper's promised
  easy-to-use toolkit.
- ``figures`` — regenerate a paper figure/table by id (fig4..fig12,
  table1, table2, summary).
- ``experiments`` — list the Table 2 experiment registry.
- ``simulate`` — run one workload on one simulated platform and print
  its metric set.
- ``watch`` — stream a trace through the live metrics engine
  (:mod:`repro.live`): per-window BPS as records "complete", anomaly
  flags, optional JSONL / Prometheus telemetry sinks; ``--attribute``
  adds ranked root-cause suspects to every flag.
- ``diagnose`` — post-hoc root-cause attribution over a recorded
  trace (:mod:`repro.diagnose`): same detector and attributor as
  ``watch --attribute``, rendered as a report.
- ``serve`` — the always-on multi-tenant daemon (:mod:`repro.serve`):
  concurrent JSONL trace streams over TCP / unix socket / HTTP, one
  isolated metric stream per tenant, budgets with load shedding, one
  aggregated Prometheus scrape plus a JSON query API.
- ``grid-worker`` — one host's sweep worker daemon for distributed
  sweeps (``bps sweep --backend socket``; :mod:`repro.exec.gridworker`).
- ``chaos`` — the network-chaos invariant runner (:mod:`repro.chaos`):
  real daemons behind a seeded fault-injecting proxy, results required
  bit-identical to the undisturbed paths.
- ``chaos-proxy`` — the seeded TCP interposer on its own, for putting
  chaos in front of any dispatcher/daemon pair by hand.

``analyze``, ``replay``, and ``watch`` accept ``-`` as the trace path
to read JSONL records from standard input.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.correlation import METRIC_ORDER
from repro.core.metrics import MetricSet, compute_metrics
from repro.errors import ReproError, SalvageError
from repro.experiments.figures import FIGURES, regenerate
from repro.experiments.registry import EXPERIMENT_SETS
from repro.experiments.runner import ExperimentScale
from repro.system import SystemConfig
from repro.trace_io import ErrorPolicy, TRACE_READERS, read_trace
from repro.util.tables import TextTable
from repro.util.units import format_rate, format_seconds, parse_size
from repro.workloads import HpioWorkload, IORWorkload, IOzoneWorkload


def _render_metrics(metrics: MetricSet) -> str:
    table = TextTable(["metric", "value"])
    table.add_row(["BPS (blocks/s)", f"{metrics.bps:,.1f}"])
    table.add_row(["IOPS (ops/s)", f"{metrics.iops:,.1f}"])
    table.add_row(["bandwidth", format_rate(metrics.bandwidth)])
    table.add_row(["ARPT", format_seconds(metrics.arpt)])
    table.add_row(["union I/O time", format_seconds(metrics.union_io_time)])
    table.add_row(["execution time", format_seconds(metrics.exec_time)])
    table.add_row(["application ops", f"{metrics.app_ops:,}"])
    table.add_row(["application blocks (B)", f"{metrics.app_blocks:,}"])
    table.add_row(["fs bytes moved", f"{metrics.fs_bytes:,}"])
    table.add_row(["fs amplification", f"{metrics.fs_amplification:.3f}x"])
    return table.render()


def _error_policy(args: argparse.Namespace) -> ErrorPolicy | None:
    """Build the trace-ingestion error policy from CLI flags."""
    if getattr(args, "on_error", "strict") == "strict":
        return None
    return ErrorPolicy(
        "salvage",
        max_error_ratio=args.max_error_ratio,
        quarantine_path=args.quarantine or None,
    )


def _print_salvage_report(policy: ErrorPolicy | None) -> None:
    report = policy.report if policy is not None else None
    if report is None or not report.entries:
        return
    print(report.summary())
    if policy.quarantine_path:
        print(f"quarantined lines written to {policy.quarantine_path}")


def _cmd_analyze(args: argparse.Namespace) -> int:
    policy = _error_policy(args)
    trace = read_trace(args.trace, fmt=args.format, errors=policy)
    _print_salvage_report(policy)
    first, last = trace.span()
    exec_time = args.exec_time if args.exec_time else (last - first)
    metrics = compute_metrics(trace, exec_time=exec_time,
                              block_size=args.block_size)
    print(f"trace: {args.trace} ({len(trace)} records, "
          f"{len(trace.pids())} processes)")
    print(_render_metrics(metrics))
    if args.bins:
        from repro.core.timeline import binned_bps
        edges, values = binned_bps(trace, bins=args.bins,
                                   block_size=args.block_size)
        print("\nBPS over time:")
        table = TextTable(["window", "BPS (blocks/s)"])
        for index, value in enumerate(values):
            table.add_row([
                f"[{edges[index]:.6g}, {edges[index + 1]:.6g})",
                f"{value:,.0f}",
            ])
        print(table.render())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.list or not args.figure_id:
        table = TextTable(["id", "title", "paper expectation"])
        for spec in FIGURES.values():
            table.add_row([spec.figure_id, spec.title,
                           spec.paper_expectation])
        print(table.render())
        return 0
    scale = ExperimentScale(factor=args.scale, repetitions=args.reps)
    print(regenerate(args.figure_id, scale))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    traces = {}
    for path in (args.trace_a, args.trace_b):
        # One policy per file so each quarantine report stays scoped.
        policy = _error_policy(args)
        traces[path] = read_trace(path, fmt=args.format, errors=policy)
        _print_salvage_report(policy)
    metrics = {}
    for path, trace in traces.items():
        first, last = trace.span()
        metrics[path] = compute_metrics(trace, exec_time=last - first,
                                        block_size=args.block_size)
    a, b = metrics[args.trace_a], metrics[args.trace_b]
    table = TextTable(["metric", "A", "B", "B/A"])

    def row(name, va, vb, render=lambda v: f"{v:,.1f}"):
        ratio = vb / va if va else float("inf")
        table.add_row([name, render(va), render(vb), f"{ratio:.3f}x"])

    row("BPS (blocks/s)", a.bps, b.bps)
    row("IOPS", a.iops, b.iops)
    row("bandwidth", a.bandwidth, b.bandwidth, format_rate)
    row("ARPT", a.arpt, b.arpt, format_seconds)
    row("union I/O time", a.union_io_time, b.union_io_time,
        format_seconds)
    row("execution time", a.exec_time, b.exec_time, format_seconds)
    print(f"A = {args.trace_a} ({len(traces[args.trace_a])} records)")
    print(f"B = {args.trace_b} ({len(traces[args.trace_b])} records)")
    print(table.render())
    faster = "B" if b.exec_time < a.exec_time else "A"
    print(f"\noverall: {faster} completed its I/O faster; BPS agrees: "
          f"{'yes' if (b.bps > a.bps) == (faster == 'B') else 'NO'}")
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from repro.core.timeline import (
        overlap_surplus,
        per_process_breakdown,
        render_gantt,
    )
    policy = _error_policy(args)
    trace = read_trace(args.trace, fmt=args.format, errors=policy)
    _print_salvage_report(policy)
    print(render_gantt(trace, width=args.width))
    print()
    table = TextTable(["pid", "ops", "blocks", "union T",
                       "BPS (blocks/s)", "mean response"])
    for summary in per_process_breakdown(trace):
        table.add_row([
            summary.pid, summary.ops, f"{summary.blocks:,}",
            format_seconds(summary.union_time),
            f"{summary.bps:,.0f}",
            format_seconds(summary.mean_response),
        ])
    print(table.render())
    print(f"\ncross-process overlap surplus: "
          f"{format_seconds(overlap_surplus(trace))} "
          f"(per-process T summed minus global union T)")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    table = TextTable(["set", "knob", "paper tool", "figures",
                       "misleading metrics"])
    for spec in EXPERIMENT_SETS.values():
        table.add_row([
            spec.set_id, spec.knob, spec.paper_tool,
            ",".join(spec.figures),
            ",".join(spec.expected_misleading) or "(none)",
        ])
    print(table.render())
    return 0


_SWEEPS = {
    "set1": lambda scale, **kw: _sweep_module().run_set1(scale, **kw),
    "set2-hdd": lambda scale, **kw:
        _sweep_module().run_set2("hdd", scale, **kw),
    "set2-ssd": lambda scale, **kw:
        _sweep_module().run_set2("ssd", scale, **kw),
    "set3-pure": lambda scale, **kw:
        _sweep_module().run_set3_pure(scale, **kw),
    "set3-ior": lambda scale, **kw:
        _sweep_module().run_set3_ior(scale, **kw),
    "set4": lambda scale, **kw: _sweep_module().run_set4(scale, **kw),
    "set5": lambda scale, **kw: _sweep_module().run_set5(scale, **kw),
    "set6": lambda scale, **kw: _sweep_module().run_set6(scale, **kw),
}


def _sweep_module():
    import repro.experiments as experiments
    return experiments


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.smoke:
        scale = ExperimentScale(factor=min(args.scale, 0.25),
                                repetitions=min(args.reps, 2))
    else:
        scale = ExperimentScale(factor=args.scale, repetitions=args.reps)
    run_kwargs = {}
    checkpoint = args.checkpoint
    if args.resume and not checkpoint:
        checkpoint = f".bps-sweep-{args.sweep}.ckpt.jsonl"
    if checkpoint:
        # --checkpoint alone journals a fresh run; --resume picks up
        # any completed jobs already recorded there.
        run_kwargs["checkpoint"] = checkpoint
        run_kwargs["resume"] = args.resume
    if args.job_timeout is not None:
        from repro.exec import SupervisorPolicy
        run_kwargs["policy"] = SupervisorPolicy(
            job_timeout=args.job_timeout)
    if args.backend:
        run_kwargs["backend"] = args.backend
    if args.grid_workers:
        run_kwargs["grid_workers"] = args.grid_workers
    if args.worker_heartbeat is not None:
        run_kwargs["grid_heartbeat"] = args.worker_heartbeat
    if args.worker_liveness is not None:
        run_kwargs["grid_liveness"] = args.worker_liveness
    sweep = _SWEEPS[args.sweep](scale, **run_kwargs)
    supervision = getattr(sweep, "supervision", None)
    if supervision is not None and (
            supervision.crashes or supervision.timeouts or
            supervision.job_errors or supervision.serial_fallback):
        print(f"supervision: {supervision.summary()}")
        print()
    if checkpoint:
        print(f"checkpoint journal: {checkpoint}")
        print()
    print(sweep.render_cc_figure(f"{args.sweep} — normalized CC"))
    print()
    if args.ci:
        print(sweep.render_cc_table_with_ci())
    else:
        print(sweep.render_cc_table())
    if args.detail:
        print()
        print(sweep.render_detail(["IOPS", "BW", "ARPT", "BPS",
                                   "exec_time"]))
    if args.jackknife:
        from repro.core.sensitivity import sweep_direction_robust
        print()
        table = TextTable(["metric", "direction robust to any "
                                     "single point's removal?"])
        for metric in ("IOPS", "BW", "ARPT", "BPS"):
            robust = sweep_direction_robust(sweep, metric)
            table.add_row([metric, "yes" if robust else "NO"])
        print(table.render())
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep.to_csv())
        print(f"\nwrote per-point series to {args.csv}")
    return 0


def _cmd_grid_worker(args: argparse.Namespace) -> int:
    import os

    from repro.exec import serve_grid_worker
    token = args.token or os.environ.get("REPRO_GRID_TOKEN") or None
    return serve_grid_worker(
        args.listen,
        token=token,
        once=args.once,
        exit_after_jobs=args.exit_after_jobs,
        heartbeat=args.heartbeat,
        liveness=args.liveness,
    )


def _load_schedule(args: argparse.Namespace, mode: str):
    """Build the chaos schedule a chaos subcommand was asked for."""
    import json as _json

    from repro.chaos import random_chaos_schedule, schedule_from_dict
    from repro.util.rng import RngStream
    if getattr(args, "schedule", ""):
        with open(args.schedule) as handle:
            return schedule_from_dict(_json.load(handle))
    return random_chaos_schedule(
        RngStream.from_seed(args.seed, "chaos-cli"),
        mode=mode, severity=args.severity,
        partitions=args.partitions, resets=args.resets)


def _cmd_chaos_proxy(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro.chaos import ChaosProxy, schedule_to_dict
    schedule = _load_schedule(args, args.mode)
    proxy = ChaosProxy(args.upstream, schedule, listen=args.listen)
    host, port = proxy.start()
    print(f"chaos-proxy listening on {host}:{port} -> {args.upstream}",
          flush=True)
    print(schedule.describe(), flush=True)
    try:
        while True:
            _time.sleep(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        proxy.stop()
        print(_json.dumps({"schedule": schedule_to_dict(schedule),
                           "stats": proxy.stats()}, sort_keys=True))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json

    from repro.chaos import random_chaos_schedule, run_chaos
    from repro.util.rng import RngStream
    checks = ("grid", "serve") if args.check == "all" else (args.check,)
    scale = ExperimentScale(factor=args.scale, repetitions=args.reps)
    grid_schedule = serve_schedule = None
    if args.schedule:
        # An explicit schedule applies to the check matching its mode;
        # the other check (if also selected) keeps its built-in mix.
        loaded = _load_schedule(args, "frames")
        if loaded.mode == "frames":
            grid_schedule = loaded
        else:
            serve_schedule = loaded
    elif (args.severity != 1.0 or args.partitions != 1
            or args.resets != 1):
        rng = RngStream.from_seed(args.seed, "chaos-cli")
        grid_schedule = random_chaos_schedule(
            rng, mode="frames", severity=args.severity,
            partitions=args.partitions, resets=args.resets)
        serve_schedule = random_chaos_schedule(
            rng, mode="lines", severity=args.severity,
            partitions=args.partitions, resets=args.resets)
    report = run_chaos(
        seed=args.seed, checks=checks, workers=args.workers,
        scale=scale, records=args.records, timeout=args.timeout,
        grid_schedule=grid_schedule, serve_schedule=serve_schedule)
    text = _json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote chaos report to {args.json}", file=sys.stderr)
    for check in report["checks"]:
        verdict = "identical" if check["passed"] else "DIVERGED"
        print(f"chaos {check['check']}: {verdict}", file=sys.stderr)
    return 0 if report["passed"] else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SystemConfig(
        kind=args.kind,
        device_spec=args.device,
        n_servers=args.servers,
        seed=args.seed,
    )
    if args.workload == "iozone":
        workload = IOzoneWorkload(
            file_size=parse_size(args.size),
            record_size=parse_size(args.record),
            nproc=args.nproc,
            mode="sequential" if args.nproc == 1 else "throughput",
        )
    elif args.workload == "ior":
        workload = IORWorkload(
            file_size=parse_size(args.size),
            transfer_size=parse_size(args.record),
            nproc=args.nproc,
        )
    else:
        workload = HpioWorkload(
            region_count=args.regions,
            region_spacing=parse_size(args.record),
            nproc=args.nproc,
        )
    measurement = workload.run(config)
    print(f"workload: {measurement.label} on {args.kind}/{args.device}")
    print(_render_metrics(measurement.metrics(block_size=args.block_size)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report
    scale = ExperimentScale(factor=args.scale, repetitions=args.reps)
    text = generate_report(scale)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out} ({len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.workloads.replay_trace import TraceReplayWorkload
    policy = _error_policy(args)
    trace = read_trace(args.trace, fmt=args.format, errors=policy)
    _print_salvage_report(policy)
    first, last = trace.span()
    original = compute_metrics(trace, exec_time=last - first,
                               block_size=args.block_size)
    config = SystemConfig(kind=args.kind, device_spec=args.device,
                          n_servers=args.servers, seed=args.seed)
    workload = TraceReplayWorkload(trace=trace, mode=args.mode)
    measurement = workload.run(config)
    replayed = measurement.metrics(block_size=args.block_size)
    table = TextTable(["metric", "original", f"replayed on {args.device}"])
    table.add_row(["BPS (blocks/s)", f"{original.bps:,.0f}",
                   f"{replayed.bps:,.0f}"])
    table.add_row(["IOPS", f"{original.iops:,.1f}",
                   f"{replayed.iops:,.1f}"])
    table.add_row(["ARPT", format_seconds(original.arpt),
                   format_seconds(replayed.arpt)])
    table.add_row(["union I/O time",
                   format_seconds(original.union_io_time),
                   format_seconds(replayed.union_io_time)])
    table.add_row(["execution time",
                   format_seconds(original.exec_time),
                   format_seconds(replayed.exec_time)])
    print(f"replayed {len(trace)} records ({args.mode} mode) on "
          f"{args.kind}/{args.device}")
    print(table.render())
    speedup = original.exec_time / replayed.exec_time
    print(f"\nprojected speedup on the simulated platform: "
          f"{speedup:.2f}x")
    return 0


def _parse_speed(value: str) -> float | None:
    """``--speed`` argument: a positive factor or ``max`` (no pacing)."""
    if value == "max":
        return None
    try:
        speed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"speed must be a positive number or 'max', got {value!r}")
    if speed <= 0:
        raise argparse.ArgumentTypeError(
            f"speed must be > 0, got {value}")
    return speed


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.live import (
        BpsAnomalyDetector,
        JsonlSink,
        PrometheusSink,
        apply_sink_policy,
        watch_trace,
    )
    policy = _error_policy(args)
    try:
        trace = read_trace(args.trace, fmt=args.format, errors=policy)
    except SalvageError as exc:
        # Salvage budget exhausted mid-stream: the quarantine summary
        # is the diagnosis, so print it before bowing out non-zero.
        _print_salvage_report(policy)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_salvage_report(policy)
    # Wrap here (not just inside watch_trace) so the summary lines
    # below can tell a healthy sink from one that dropped everything.
    named_sinks = {}
    if args.jsonl_out:
        named_sinks["jsonl_out"] = JsonlSink(args.jsonl_out)
    if args.prom_out:
        named_sinks["prom_out"] = PrometheusSink(args.prom_out)
    named_sinks = {
        name: apply_sink_policy([sink], args.sink_errors,
                                args.sink_max_failures)[0]
        for name, sink in named_sinks.items()}
    sinks = list(named_sinks.values())
    detector = None
    if not args.no_detector:
        detector = BpsAnomalyDetector(drop_factor=args.drop_factor,
                                      history=args.baseline_history)
    attribute = getattr(args, "attribute", False)
    server_of = None
    if attribute and args.servers:
        from repro.diagnose import stripe_server_of
        server_of = stripe_server_of(args.servers,
                                     parse_size(args.stripe_size))
    if attribute and args.no_detector:
        print("error: --attribute needs the anomaly detector "
              "(drop --no-detector)", file=sys.stderr)
        return 2

    table = TextTable(["window", "ops", "BPS (blocks/s)", "bandwidth",
                       "flag"])

    def on_event(event: dict) -> None:
        if event["type"] == "anomaly":
            # Anomaly events follow their window's row; mark them on a
            # row of their own so the stream stays append-only.
            table.add_row([
                f"[{event['t0']:.6g}, {event['t1']:.6g})", "", "", "",
                f"! BPS {event['bps']:,.0f} vs baseline "
                f"{event['baseline']:,.0f}",
            ])
            for suspect in event.get("suspects", ()):
                table.add_row([
                    "", "", "", "",
                    f"  -> {suspect['kind']} {suspect['target']}: "
                    f"{suspect['evidence']}",
                ])
            return
        table.add_row([
            f"[{event['t0']:.6g}, {event['t1']:.6g})",
            f"{event['ops']:,}",
            f"{event['bps']:,.0f}",
            format_rate(event["bandwidth"]),
            "",
        ])

    result = watch_trace(
        trace,
        window=args.window,
        bins=args.bins,
        block_size=args.block_size,
        speed=args.speed,
        chunk_size=args.chunk_size or None,
        workers=args.workers,
        sinks=sinks,
        sink_errors=args.sink_errors,
        sink_max_failures=args.sink_max_failures,
        detector=detector,
        attribute=attribute,
        server_of=server_of,
        exec_time=args.exec_time,
        on_window=on_event,
    )
    print(f"watched: {args.trace} ({len(trace)} records, "
          f"{len(result.windows)} windows, "
          f"{len(result.anomalies)} anomalies)")
    print(table.render())
    print("\ncumulative (streamed):")
    print(_render_metrics(result.metrics))
    for anomaly in result.anomalies:
        print(f"anomaly: window [{anomaly.window_start:.6g}, "
              f"{anomaly.window_end:.6g}) BPS {anomaly.bps:,.0f} vs "
              f"baseline {anomaly.baseline:,.0f} "
              f"({anomaly.severity:.1f}x drop)")
        for suspect in anomaly.suspects:
            print(f"  suspect: {suspect.kind} {suspect.target} "
                  f"(score {suspect.score:.1f}) — {suspect.evidence}")
    def sink_status(name: str, wrote: str) -> None:
        sink = named_sinks[name]
        dropped = getattr(sink, "dropped_events", 0)
        if not dropped:
            print(f"{wrote} {getattr(args, name)}")
        else:
            state = "disabled" if getattr(sink, "disabled", False) \
                else "failing"
            print(f"sink {getattr(args, name)}: {state}, "
                  f"{dropped} event(s) dropped")

    if args.jsonl_out:
        sink_status("jsonl_out", "wrote event stream to")
    if args.prom_out:
        sink_status("prom_out", "wrote Prometheus exposition to")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    import json

    from repro.diagnose import diagnose_trace, stripe_server_of
    from repro.live import BpsAnomalyDetector

    policy = _error_policy(args)
    try:
        trace = read_trace(args.trace, fmt=args.format, errors=policy)
    except SalvageError as exc:
        _print_salvage_report(policy)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _print_salvage_report(policy)
    detector = BpsAnomalyDetector(drop_factor=args.drop_factor,
                                  history=args.baseline_history)
    server_of = None
    if args.servers:
        server_of = stripe_server_of(args.servers,
                                     parse_size(args.stripe_size))
    diagnosis = diagnose_trace(
        trace,
        window=args.window,
        bins=args.bins,
        origin=args.origin,
        block_size=args.block_size,
        detector=detector,
        server_of=server_of,
    )
    if args.json:
        print(json.dumps(diagnosis.as_dict(), sort_keys=True))
        return 0
    result = diagnosis.result
    print(f"diagnosed: {args.trace} ({len(trace)} records, "
          f"{len(result.windows)} windows, "
          f"{len(result.anomalies)} anomalies)")
    if not result.anomalies:
        print("no anomalies — nothing to attribute")
        return 0
    for anomaly in result.anomalies:
        drop = "stalled" if anomaly.bps == 0 \
            else f"{anomaly.severity:.1f}x drop"
        print(f"anomaly: window [{anomaly.window_start:.6g}, "
              f"{anomaly.window_end:.6g}) BPS {anomaly.bps:,.0f} vs "
              f"baseline {anomaly.baseline:,.0f} ({drop})")
        for suspect in anomaly.suspects:
            print(f"  suspect: {suspect.kind} {suspect.target} "
                  f"(score {suspect.score:.1f}) — {suspect.evidence}")
    top = diagnosis.top_suspect
    if top is None:
        print("\nno suspects survived the baseline diff "
              "(warm-up window, or the drop has no concentrated cause)")
    else:
        print(f"\ntop suspect: {top.kind} {top.target} — {top.evidence}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        BpsServer,
        ServeConfig,
        TenantBudget,
        resolve_serve_ingest,
        run_server,
    )
    tcp, unix, http = args.tcp, args.unix, args.http
    if not (tcp or unix or http):
        tcp = "127.0.0.1:4040"
    chunk_size, workers = resolve_serve_ingest(
        args.chunk_size, args.workers)
    max_bytes = parse_size(args.max_bytes_per_sec) \
        if args.max_bytes_per_sec else None
    budget = TenantBudget(
        max_bytes_per_sec=max_bytes,
        max_records_per_sec=args.max_records_per_sec or None,
        max_pending=args.max_pending,
        burst_seconds=args.burst_seconds,
        shed_factor=args.shed_factor,
        evict_after_sheds=args.evict_after_sheds or None,
    )
    config = ServeConfig(
        window=args.window,
        block_size=args.block_size,
        budget=budget,
        error_mode=args.on_error,
        max_error_ratio=args.max_error_ratio,
        chunk_size=chunk_size,
        workers=workers,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        max_tenants=args.max_tenants,
        out_dir=args.out_dir or None,
        prom_out=args.prom_out or None,
        sink_errors=args.sink_errors,
        drop_factor=0.0 if args.no_detector else args.drop_factor,
        baseline_history=args.baseline_history,
        attribute=args.attribute,
        write_timeout=args.write_timeout,
        **({"max_body_bytes": parse_size(args.max_body_bytes)}
           if args.max_body_bytes else {}),
    )
    server = BpsServer(config, tcp=tcp or None, unix=unix or None,
                       http=http or None)
    return run_server(server)


def _add_trace_error_options(parser: argparse.ArgumentParser) -> None:
    """Shared ingestion-policy flags for trace-reading subcommands."""
    parser.add_argument("--on-error", choices=("strict", "salvage"),
                        default="strict",
                        help="'strict' fails on the first malformed "
                             "record; 'salvage' quarantines bad lines, "
                             "keeps the healthy ones, and reports what "
                             "was dropped")
    parser.add_argument("--max-error-ratio", type=float, default=0.25,
                        help="salvage gives up (exit 1) when more than "
                             "this fraction of lines is bad "
                             "(default 0.25)")
    parser.add_argument("--quarantine", default="",
                        help="salvage: also copy rejected lines to "
                             "this file for offline inspection")


def build_parser() -> argparse.ArgumentParser:
    """The toolkit's argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="bps",
        description="BPS I/O metric toolkit (IPDPSW'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser(
        "analyze", help="compute metrics from a recorded trace file")
    analyze.add_argument("trace",
                         help="path to the trace file, or - for stdin "
                              "(jsonl)")
    analyze.add_argument("--format", choices=sorted(TRACE_READERS),
                         help="trace format (default: guess from suffix)")
    analyze.add_argument("--block-size", type=int, default=512,
                         help="BPS block unit in bytes (default 512)")
    analyze.add_argument("--exec-time", type=float, default=None,
                         help="application execution time in seconds "
                              "(default: trace span)")
    analyze.add_argument("--bins", type=int, default=0,
                         help="also print BPS over time in N windows")
    _add_trace_error_options(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    figures = sub.add_parser(
        "figures", help="regenerate a paper figure or table")
    figures.add_argument("figure_id", nargs="?", default="",
                         help="fig4..fig12, table1, table2, summary")
    figures.add_argument("--list", action="store_true",
                         help="list available artifacts")
    figures.add_argument("--scale", type=float, default=1.0,
                         help="data-size scale factor (default 1.0)")
    figures.add_argument("--reps", type=int, default=5,
                         help="repetitions per sweep point (default 5)")
    figures.set_defaults(func=_cmd_figures)

    experiments = sub.add_parser(
        "experiments", help="list the Table 2 experiment registry")
    experiments.set_defaults(func=_cmd_experiments)

    compare = sub.add_parser(
        "compare", help="A/B comparison of two recorded traces")
    compare.add_argument("trace_a")
    compare.add_argument("trace_b")
    compare.add_argument("--format", choices=sorted(TRACE_READERS),
                         help="trace format for both (default: guess)")
    compare.add_argument("--block-size", type=int, default=512)
    _add_trace_error_options(compare)
    compare.set_defaults(func=_cmd_compare)

    gantt = sub.add_parser(
        "gantt", help="timeline view of a trace: per-process Gantt "
                      "chart, breakdowns, overlap surplus")
    gantt.add_argument("trace", help="path to the trace file")
    gantt.add_argument("--format", choices=sorted(TRACE_READERS),
                       help="trace format (default: guess from suffix)")
    gantt.add_argument("--width", type=int, default=72,
                       help="chart width in characters")
    _add_trace_error_options(gantt)
    gantt.set_defaults(func=_cmd_gantt)

    sweep = sub.add_parser(
        "sweep", help="run one experiment sweep and print its CC table")
    sweep.add_argument("sweep", choices=sorted(_SWEEPS))
    sweep.add_argument("--scale", type=float, default=1.0,
                       help="data-size scale factor (default 1.0)")
    sweep.add_argument("--reps", type=int, default=5,
                       help="repetitions per point (default 5)")
    sweep.add_argument("--ci", action="store_true",
                       help="add Fisher confidence intervals")
    sweep.add_argument("--detail", action="store_true",
                       help="also print the per-point metric series")
    sweep.add_argument("--csv", default="",
                       help="write the per-point series to this CSV file")
    sweep.add_argument("--jackknife", action="store_true",
                       help="check each direction's robustness to "
                            "single-point removal")
    sweep.add_argument("--smoke", action="store_true",
                       help="CI-sized run: caps scale at 0.25 and "
                            "repetitions at 2")
    sweep.add_argument("--checkpoint", default="",
                       help="journal completed jobs to this file "
                            "(crash-safe JSONL; enables --resume)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip jobs already completed in the "
                            "checkpoint journal (default journal: "
                            ".bps-sweep-<name>.ckpt.jsonl)")
    sweep.add_argument("--job-timeout", type=float, default=None,
                       help="kill and retry any sweep job running "
                            "longer than this many seconds")
    sweep.add_argument("--backend", choices=("fork", "async", "socket"),
                       default="",
                       help="executor backend: 'fork' supervised local "
                            "pool (default), 'async' in-process serial, "
                            "'socket' multi-host dispatch to bps "
                            "grid-worker daemons (env "
                            "REPRO_SWEEP_BACKEND)")
    sweep.add_argument("--grid-workers", default="", metavar="ADDRS",
                       help="socket backend: comma-separated "
                            "host:port list of bps grid-worker daemons")
    sweep.add_argument("--worker-heartbeat", type=float, default=None,
                       metavar="SECONDS",
                       help="socket backend: ping a silent worker "
                            "after this long (env "
                            "REPRO_GRID_HEARTBEAT; default 2.0; "
                            "non-positive values are clamped with a "
                            "warning)")
    sweep.add_argument("--worker-liveness", type=float, default=None,
                       metavar="SECONDS",
                       help="socket backend: declare an unresponsive "
                            "worker dead and requeue its cell after "
                            "this long (env REPRO_GRID_LIVENESS; "
                            "default 10.0; clamped to > heartbeat "
                            "with a warning)")
    sweep.set_defaults(func=_cmd_sweep)

    grid_worker = sub.add_parser(
        "grid-worker", help="run one host's sweep worker daemon for "
                            "the socket backend (bps sweep "
                            "--backend socket)")
    grid_worker.add_argument("--listen", default="127.0.0.1:0",
                             metavar="HOST:PORT",
                             help="TCP listen address; port 0 binds an "
                                  "ephemeral port (printed on the "
                                  "first output line; default "
                                  "127.0.0.1:0)")
    grid_worker.add_argument("--token", default="",
                             help="shared auth token dispatchers must "
                                  "present (default: REPRO_GRID_TOKEN "
                                  "env var). The wire protocol is "
                                  "pickle: trusted networks only")
    grid_worker.add_argument("--once", action="store_true",
                             help="exit after the first dispatcher "
                                  "session")
    grid_worker.add_argument("--exit-after-jobs", type=int, default=0,
                             metavar="N",
                             help="exit after completing N cells "
                                  "(chaos/rolling-restart testing)")
    grid_worker.add_argument("--heartbeat", type=float, default=None,
                             metavar="SECONDS",
                             help="ping a silent dispatcher after "
                                  "this long (env "
                                  "REPRO_GRID_HEARTBEAT; default 2.0)")
    grid_worker.add_argument("--liveness", type=float, default=None,
                             metavar="SECONDS",
                             help="drop a session whose dispatcher "
                                  "stays unresponsive this long — the "
                                  "half-open-connection guard (env "
                                  "REPRO_GRID_LIVENESS; default 10.0)")
    grid_worker.set_defaults(func=_cmd_grid_worker)

    simulate = sub.add_parser(
        "simulate", help="run one workload on a simulated platform")
    simulate.add_argument("--workload",
                          choices=("iozone", "ior", "hpio"),
                          default="iozone")
    simulate.add_argument("--kind", choices=("local", "pfs"),
                          default="local")
    simulate.add_argument("--device", default="sata-hdd-7200",
                          help="device spec name (see repro.devices)")
    simulate.add_argument("--servers", type=int, default=4,
                          help="PFS server count")
    simulate.add_argument("--size", default="16MiB",
                          help="total data size (e.g. 64MiB)")
    simulate.add_argument("--record", default="64KiB",
                          help="record/transfer size, or region spacing "
                               "for hpio")
    simulate.add_argument("--regions", type=int, default=1024,
                          help="hpio region count")
    simulate.add_argument("--nproc", type=int, default=1)
    simulate.add_argument("--block-size", type=int, default=512)
    simulate.add_argument("--seed", type=int, default=12345)
    simulate.set_defaults(func=_cmd_simulate)

    report = sub.add_parser(
        "report", help="run every artifact and write a full "
                       "reproduction report (minutes)")
    report.add_argument("--out", default="",
                        help="write Markdown here (default: stdout)")
    report.add_argument("--scale", type=float, default=1.0)
    report.add_argument("--reps", type=int, default=5)
    report.set_defaults(func=_cmd_report)

    replay = sub.add_parser(
        "replay", help="replay a recorded trace on a simulated "
                       "platform (what-if analysis)")
    replay.add_argument("trace",
                        help="path to the trace file, or - for stdin "
                             "(jsonl)")
    replay.add_argument("--format", choices=sorted(TRACE_READERS),
                        help="trace format (default: guess from suffix)")
    replay.add_argument("--kind", choices=("local", "pfs"),
                        default="local")
    replay.add_argument("--device", default="sata-hdd-7200")
    replay.add_argument("--servers", type=int, default=4)
    replay.add_argument("--mode", choices=("timed", "asap"),
                        default="timed",
                        help="'timed' keeps original think gaps; "
                             "'asap' drops them")
    replay.add_argument("--block-size", type=int, default=512)
    replay.add_argument("--seed", type=int, default=12345)
    _add_trace_error_options(replay)
    replay.set_defaults(func=_cmd_replay)

    watch = sub.add_parser(
        "watch", help="stream a trace through the live metrics engine "
                      "(windowed BPS, anomaly flags, telemetry sinks)")
    watch.add_argument("trace",
                       help="path to the trace file, or - for stdin "
                            "(jsonl)")
    watch.add_argument("--format", choices=sorted(TRACE_READERS),
                       help="trace format (default: guess from suffix; "
                            "jsonl for stdin)")
    watch.add_argument("--window", type=float, default=None,
                       help="metric window width in trace seconds "
                            "(default: span / --bins)")
    watch.add_argument("--bins", type=int, default=20,
                       help="window count when --window is not given "
                            "(default 20)")
    watch.add_argument("--speed", type=_parse_speed, default=None,
                       metavar="FACTOR|max",
                       help="pacing: 1 = real time, 10 = 10x faster, "
                            "max = no pacing (default max)")
    watch.add_argument("--chunk-size", type=int, default=0,
                       help="deliver records as columnar chunks of this "
                            "many rows (vectorised ingest, ~10x the "
                            "per-record rate); 0 = per-record")
    watch.add_argument("--workers", type=int, default=0,
                       help="shard chunked ingest across N worker "
                            "processes (implies --chunk-size 4096 "
                            "unless set); 0 or 1 = in-process")
    watch.add_argument("--block-size", type=int, default=512,
                       help="BPS block unit in bytes (default 512)")
    watch.add_argument("--exec-time", type=float, default=None,
                       help="application execution time in seconds "
                            "(default: trace span)")
    watch.add_argument("--jsonl-out", default="",
                       help="also write every stream event to this "
                            "JSONL file")
    watch.add_argument("--prom-out", default="",
                       help="maintain a Prometheus text exposition "
                            "file at this path")
    watch.add_argument("--no-detector", action="store_true",
                       help="disable the BPS anomaly detector")
    watch.add_argument("--drop-factor", type=float, default=3.0,
                       help="flag windows whose BPS falls below "
                            "baseline/FACTOR (default 3.0)")
    watch.add_argument("--baseline-history", type=int, default=8,
                       help="rolling-baseline window count (default 8)")
    watch.add_argument("--sink-errors",
                       choices=("raise", "warn", "disable"),
                       default="warn",
                       help="telemetry sink failure policy: 'raise' "
                            "aborts the watch, 'warn' drops the "
                            "event, 'disable' turns a sink off after "
                            "repeated failures (default warn)")
    watch.add_argument("--sink-max-failures", type=int, default=5,
                       help="consecutive failures before 'disable' "
                            "turns a sink off (default 5)")
    watch.add_argument("--attribute", action="store_true",
                       help="diff each flagged window's trace graph "
                            "against a rolling healthy baseline and "
                            "print ranked root-cause suspects")
    watch.add_argument("--servers", type=int, default=0,
                       help="with --attribute: server count for "
                            "stripe-based offset -> server attribution "
                            "(0 = no server-level suspects)")
    watch.add_argument("--stripe-size", default="64KiB",
                       help="with --servers: stripe width for server "
                            "attribution (default 64KiB)")
    _add_trace_error_options(watch)
    watch.set_defaults(func=_cmd_watch)

    diagnose = sub.add_parser(
        "diagnose", help="post-hoc root-cause attribution: find the "
                         "flagged BPS windows in a recorded trace and "
                         "rank typed suspects with evidence")
    diagnose.add_argument("trace",
                          help="trace file to diagnose ('-' = stdin "
                               "JSONL)")
    diagnose.add_argument("--format", choices=sorted(TRACE_READERS),
                          default=None,
                          help="trace format (default: sniff from "
                               "extension/content)")
    diagnose.add_argument("--window", type=float, default=None,
                          help="metric window width in trace seconds "
                               "(default: span / --bins)")
    diagnose.add_argument("--bins", type=int, default=20,
                          help="derive the window as span/bins when "
                               "--window is not given (default 20)")
    diagnose.add_argument("--origin", type=float, default=None,
                          help="trace time anchoring window 0 "
                               "(default: first record start)")
    diagnose.add_argument("--block-size", type=int, default=512,
                          help="BPS block unit in bytes (default 512)")
    diagnose.add_argument("--drop-factor", type=float, default=3.0,
                          help="flag a window when baseline/BPS "
                               "exceeds this (default 3.0)")
    diagnose.add_argument("--baseline-history", type=int, default=8,
                          help="rolling-baseline window count "
                               "(default 8)")
    diagnose.add_argument("--servers", type=int, default=0,
                          help="server count for stripe-based offset "
                               "-> server attribution (0 = pid/op "
                               "suspects only)")
    diagnose.add_argument("--stripe-size", default="64KiB",
                          help="stripe width for server attribution "
                               "(default 64KiB)")
    diagnose.add_argument("--json", action="store_true",
                          help="emit the full report as one JSON "
                               "object instead of text")
    _add_trace_error_options(diagnose)
    diagnose.set_defaults(func=_cmd_diagnose)

    serve = sub.add_parser(
        "serve", help="run the multi-tenant streaming daemon: "
                      "concurrent JSONL trace streams in, one "
                      "aggregated Prometheus scrape + JSON API out")
    serve.add_argument("--tcp", default="", metavar="HOST:PORT",
                       help="JSONL stream listener (default "
                            "127.0.0.1:4040 when no listener is given; "
                            "port 0 = ephemeral)")
    serve.add_argument("--unix", default="", metavar="PATH",
                       help="JSONL stream listener on a unix socket")
    serve.add_argument("--http", default="", metavar="HOST:PORT",
                       help="HTTP listener: GET /metrics (Prometheus), "
                            "GET /tenants[/NAME] (JSON), GET "
                            "/tenants/NAME/anomalies, POST "
                            "/ingest/NAME, POST /tenants/NAME/end")
    serve.add_argument("--window", type=float, default=1.0,
                       help="metric window width in trace seconds "
                            "(default 1.0)")
    serve.add_argument("--block-size", type=int, default=512,
                       help="BPS block unit in bytes (default 512)")
    serve.add_argument("--max-bytes-per-sec", default="",
                       metavar="SIZE",
                       help="per-tenant ingest budget in trace bytes/s "
                            "(accepts 64MiB-style suffixes; default "
                            "unlimited)")
    serve.add_argument("--max-records-per-sec", type=float, default=0,
                       help="per-tenant ingest budget in records/s "
                            "(default unlimited)")
    serve.add_argument("--max-pending", type=int, default=4096,
                       help="per-tenant reorder-heap bound; overflow "
                            "forces the watermark (exact totals, "
                            "degraded lateness tolerance; default 4096)")
    serve.add_argument("--burst-seconds", type=float, default=1.0,
                       help="token-bucket depth in seconds of budget "
                            "(default 1.0)")
    serve.add_argument("--shed-factor", type=float, default=4.0,
                       help="shed (drop-with-accounting) once throttle "
                            "arrears exceed this many bucket depths "
                            "(default 4.0)")
    serve.add_argument("--evict-after-sheds", type=int, default=0,
                       help="evict a tenant after this many shed "
                            "records (0 = never)")
    serve.add_argument("--idle-timeout", type=float, default=300.0,
                       help="evict tenants idle this many seconds, "
                            "flushing a final snapshot (0 = never; "
                            "default 300)")
    serve.add_argument("--max-tenants", type=int, default=1024,
                       help="refuse new tenants past this many active "
                            "(default 1024)")
    serve.add_argument("--out-dir", default="",
                       help="write per-tenant JSONL event files here")
    serve.add_argument("--prom-out", default="",
                       help="also maintain the aggregated Prometheus "
                            "exposition as a textfile at this path")
    serve.add_argument("--chunk-size", type=int, default=None,
                       help="buffer each tenant's records into columnar "
                            "chunks of this many rows (vectorised "
                            "ingest); 0 = per-record; bad values are "
                            "clamped with a warning (env "
                            "REPRO_SERVE_CHUNK_SIZE)")
    serve.add_argument("--workers", type=int, default=None,
                       help="shard each tenant's chunked ingest across "
                            "N worker processes; 0/1 = in-process; "
                            "clamped to the machine's cores with a "
                            "warning (env REPRO_SERVE_WORKERS)")
    serve.add_argument("--max-body-bytes", default="", metavar="SIZE",
                       help="cap one HTTP ingest body (413 past it; "
                            "accepts 64MiB-style suffixes; default "
                            "64MiB)")
    serve.add_argument("--write-timeout", type=float, default=10.0,
                       help="disconnect a client that cannot drain an "
                            "ack/response write within this many "
                            "seconds (default 10)")
    serve.add_argument("--no-detector", action="store_true",
                       help="disable the per-tenant BPS anomaly "
                            "detector")
    serve.add_argument("--drop-factor", type=float, default=3.0,
                       help="flag windows whose BPS falls below "
                            "baseline/FACTOR (default 3.0)")
    serve.add_argument("--baseline-history", type=int, default=8,
                       help="rolling-baseline window count (default 8)")
    serve.add_argument("--attribute", action="store_true",
                       help="attach ranked root-cause suspects to "
                            "every flagged window (queryable via GET "
                            "/tenants/NAME/anomalies; incompatible "
                            "with --workers >= 2)")
    serve.add_argument("--sink-errors",
                       choices=("raise", "warn", "disable"),
                       default="disable",
                       help="per-tenant telemetry sink failure policy "
                            "(default disable: a dead sink degrades "
                            "telemetry, never the stream)")
    _add_trace_error_options(serve)
    serve.set_defaults(func=_cmd_serve)

    def _add_schedule_options(sub_parser) -> None:
        sub_parser.add_argument(
            "--seed", type=int, default=20130520,
            help="chaos schedule seed (default 20130520)")
        sub_parser.add_argument(
            "--schedule", default="", metavar="PATH",
            help="JSON chaos schedule to replay (overrides the "
                 "seeded random one)")
        sub_parser.add_argument(
            "--severity", type=float, default=1.0,
            help="scale the random schedule's fault probabilities "
                 "(default 1.0)")
        sub_parser.add_argument(
            "--partitions", type=int, default=1,
            help="random schedule: short network partitions to "
                 "inject (default 1)")
        sub_parser.add_argument(
            "--resets", type=int, default=1,
            help="random schedule: hard connection resets to inject "
                 "(default 1)")

    chaos = sub.add_parser(
        "chaos", help="run the network-chaos invariant checks: real "
                      "daemons behind a seeded fault proxy, results "
                      "must be bit-identical to the clean paths")
    chaos.add_argument("--check", choices=("grid", "serve", "all"),
                       default="all",
                       help="which invariant to check (default all)")
    _add_schedule_options(chaos)
    chaos.add_argument("--workers", type=int, default=2,
                       help="grid check: worker daemons to spawn "
                            "(default 2)")
    chaos.add_argument("--records", type=int, default=400,
                       help="serve check: records to stream "
                            "(default 400)")
    chaos.add_argument("--scale", type=float, default=0.25,
                       help="grid check: sweep scale factor "
                            "(default 0.25)")
    chaos.add_argument("--reps", type=int, default=2,
                       help="grid check: repetitions per point "
                            "(default 2)")
    chaos.add_argument("--timeout", type=float, default=300.0,
                       help="serve check: hard deadline in seconds "
                            "(default 300)")
    chaos.add_argument("--json", default="", metavar="PATH",
                       help="also write the chaos report here")
    chaos.set_defaults(func=_cmd_chaos)

    chaos_proxy = sub.add_parser(
        "chaos-proxy", help="run the seeded fault-injecting TCP "
                            "interposer standalone (Ctrl-C stops it "
                            "and prints the stats)")
    chaos_proxy.add_argument("--upstream", required=True,
                             metavar="HOST:PORT",
                             help="the real daemon to sit in front of")
    chaos_proxy.add_argument("--listen", default="127.0.0.1:0",
                             metavar="HOST:PORT",
                             help="where clients should connect "
                                  "(default 127.0.0.1:0, printed on "
                                  "the first output line)")
    chaos_proxy.add_argument("--mode", choices=("frames", "lines"),
                             default="frames",
                             help="protocol framing: 'frames' for the "
                                  "grid wire protocol, 'lines' for "
                                  "serve JSONL streams (default "
                                  "frames)")
    _add_schedule_options(chaos_proxy)
    chaos_proxy.set_defaults(func=_cmd_chaos_proxy)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Toolkit entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
