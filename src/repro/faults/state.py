"""Mutable per-run fault state read by the middleware.

The straggler fault kind has no component hook to flip — it slows a
*process*, and processes live in the middleware.  :class:`FaultState`
is the bridge: the injector sets per-pid stretch factors when straggler
windows open and close; ``posix.py``/``mpiio.py`` consult the current
factor at the end of each I/O and stretch the call accordingly.
"""

from __future__ import annotations

from repro.errors import FaultPlanError


class FaultState:
    """Current middleware-visible fault effects (one per system)."""

    def __init__(self) -> None:
        self._process_factors: dict[int, float] = {}

    def set_process_factor(self, pid: int, factor: float) -> None:
        """Open a straggler window: stretch pid's I/O by ``factor``."""
        if factor < 1.0:
            raise FaultPlanError(
                f"straggler factor must be >= 1, got {factor}")
        self._process_factors[pid] = factor

    def clear_process_factor(self, pid: int) -> None:
        """Close a straggler window (no-op if none is open)."""
        self._process_factors.pop(pid, None)

    def process_factor(self, pid: int) -> float:
        """Stretch factor for ``pid`` right now (1.0 = healthy)."""
        return self._process_factors.get(pid, 1.0)

    @property
    def any_stragglers(self) -> bool:
        """Is any straggler window currently open?"""
        return bool(self._process_factors)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultState stragglers={self._process_factors}>"
