"""Arming a fault plan against a live system.

:class:`FaultPlanInjector` resolves every event of a
:class:`~repro.faults.plan.FaultPlan` to a component of a built
:class:`~repro.system.System` and schedules the window's open/close
transitions as engine callbacks.  Resolution and baseline capture happen
at *arm* time (before the run starts), so a malformed plan fails fast
and recovery always restores the component's healthy baseline.

Determinism: any randomness a window needs (the per-request draws of a
``device-faults`` window) comes from streams spawned off the system's
seeded root at arm time, in plan order — a faulted run is a pure
function of (code, config, plan, seed), which is what lets the parallel
sweep runner replay it bit-identically.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.devices.base import FaultInjector
from repro.errors import FaultPlanError
from repro.faults.plan import (
    DEVICE_DEGRADE,
    DEVICE_FAULTS,
    FaultEvent,
    FaultPlan,
    LINK_DOWN,
    LINK_LATENCY,
    SERVER_CRASH,
    SERVER_SLOWDOWN,
    STRAGGLER,
)


def _leaf_devices(device) -> list:
    """A device's fault-addressable leaves (RAID arrays -> members)."""
    members = getattr(device, "members", None)
    if members is not None:
        return list(members)
    return [device]


class FaultPlanInjector:
    """Schedules a plan's windows against one system's components."""

    def __init__(self, system, plan: FaultPlan) -> None:
        self.system = system
        self.plan = plan
        #: Chronological record of applied transitions (for reports).
        self.log: list[str] = []
        self.windows_opened = 0
        self.windows_closed = 0
        self._armed = False

    # -- resolution --------------------------------------------------------

    def _find_device_leaves(self, name: str) -> list:
        for device in self.system.devices:
            if device.name == name:
                return _leaf_devices(device)
            for leaf in _leaf_devices(device):
                if leaf.name == name:
                    return [leaf]
        known = ", ".join(d.name for d in self.system.devices)
        raise FaultPlanError(
            f"fault plan targets unknown device {name!r}; "
            f"system devices: {known}")

    def _find_server(self, name: str):
        pfs = getattr(self.system, "pfs", None)
        if pfs is None:
            raise FaultPlanError(
                f"fault plan targets server {name!r}, but the system "
                f"has no parallel file system")
        for server in pfs.servers:
            if server.name == name:
                return server
        known = ", ".join(s.name for s in pfs.servers)
        raise FaultPlanError(
            f"fault plan targets unknown server {name!r}; "
            f"system servers: {known}")

    def _find_nic(self, node_name: str):
        network = getattr(self.system, "network", None)
        if network is None:
            raise FaultPlanError(
                f"fault plan targets node {node_name!r}, but the system "
                f"has no network")
        return network.node(node_name).nic  # raises on unknown nodes

    def _fault_state(self):
        state = getattr(self.system, "fault_state", None)
        if state is None:
            raise FaultPlanError(
                "fault plan has straggler events, but the system "
                "carries no FaultState")
        return state

    def _ensure_injector(self, device) -> FaultInjector:
        """The device's fault injector, created (idle) if absent.

        Created at arm time with probability 0 so the per-request draw
        sequence is identical whether a window is currently open or not.
        """
        if device.fault_injector is None:
            device.fault_injector = FaultInjector(
                self.system.rng.spawn(f"fault-window.{device.name}"),
                probability=0.0)
        return device.fault_injector

    # -- transition building ------------------------------------------------

    def _transitions(
        self, event: FaultEvent,
    ) -> tuple[Callable[[], None], Callable[[], None]]:
        """(open, close) callbacks with baselines captured now."""
        kind = event.kind
        if kind == DEVICE_DEGRADE:
            leaves = self._find_device_leaves(event.target)
            baselines = [leaf.degrade for leaf in leaves]

            def open_() -> None:
                for leaf in leaves:
                    leaf.degrade = event.factor

            def close() -> None:
                for leaf, baseline in zip(leaves, baselines):
                    leaf.degrade = baseline
            return open_, close

        if kind == DEVICE_FAULTS:
            leaves = self._find_device_leaves(event.target)
            injectors = [self._ensure_injector(leaf) for leaf in leaves]
            baselines = [(inj.probability, inj.time_fraction,
                          inj.per_bytes) for inj in injectors]

            def open_() -> None:
                for injector in injectors:
                    injector.set_probability(event.probability)
                    injector.time_fraction = event.time_fraction
                    injector.per_bytes = event.per_bytes

            def close() -> None:
                for injector, (prob, frac, per) in zip(injectors,
                                                       baselines):
                    injector.set_probability(prob)
                    injector.time_fraction = frac
                    injector.per_bytes = per
            return open_, close

        if kind == SERVER_CRASH:
            server = self._find_server(event.target)
            return server.crash, server.restore

        if kind == SERVER_SLOWDOWN:
            server = self._find_server(event.target)
            baseline = server.slowdown

            def open_() -> None:
                server.slowdown = event.factor

            def close() -> None:
                server.slowdown = baseline
            return open_, close

        if kind == LINK_DOWN:
            nic = self._find_nic(event.target)
            return nic.take_down, nic.bring_up

        if kind == LINK_LATENCY:
            nic = self._find_nic(event.target)

            def open_() -> None:
                nic.set_latency_factor(event.factor)

            def close() -> None:
                nic.set_latency_factor(1.0)
            return open_, close

        if kind == STRAGGLER:
            state = self._fault_state()
            pid = int(event.target)

            def open_() -> None:
                state.set_process_factor(pid, event.factor)

            def close() -> None:
                state.clear_process_factor(pid)
            return open_, close

        raise FaultPlanError(f"unhandled fault kind {kind!r}")

    # -- arming --------------------------------------------------------------

    def arm(self) -> None:
        """Resolve all events and schedule their transitions.

        Must be called once, before the run, while the engine is still
        at the plan's time origin (events are absolute times).
        """
        if self._armed:
            raise FaultPlanError("fault plan is already armed")
        self._armed = True
        engine = self.system.engine
        for event in self.plan.events:
            open_, close = self._transitions(event)
            engine.call_at(event.at, self._fire, event, open_, "open")
            if math.isfinite(event.duration):
                engine.call_at(event.recovery_at, self._fire, event,
                               close, "close")

    def _fire(self, event: FaultEvent, action: Callable[[], None],
              phase: str) -> None:
        action()
        if phase == "open":
            self.windows_opened += 1
        else:
            self.windows_closed += 1
        self.log.append(
            f"t={self.system.engine.now:.6g} {phase} {event.kind} "
            f"on {event.target}")

    def summary(self) -> dict:
        """Counters for the workload result dict."""
        return {
            "events": len(self.plan),
            "windows_opened": self.windows_opened,
            "windows_closed": self.windows_closed,
        }


def arm_fault_plan(system, plan: FaultPlan) -> FaultPlanInjector:
    """Build an injector for ``plan`` and arm it against ``system``."""
    injector = FaultPlanInjector(system, plan)
    injector.arm()
    return injector
