"""Fault taxonomy and the declarative, replayable fault plan.

Seven fault kinds cover the layers of the simulated stack:

====================  =====================================================
kind                  effect during the window
====================  =====================================================
``device-degrade``    ``BlockDevice.degrade`` = ``factor`` (slow media)
``device-faults``     device ``FaultInjector`` probability = ``probability``
``server-crash``      ``IOServer`` refuses requests (fails fast)
``server-slowdown``   ``IOServer.slowdown`` = ``factor`` (busy daemon)
``link-down``         node NIC flapped down (messages stall at the wire)
``link-latency``      node NIC propagation latency × ``factor``
``straggler``         one process's I/O stretched by ``factor``
====================  =====================================================

Events are windows: they open at ``at`` and recover at
``at + duration``.  ``duration=inf`` means "never recovers" and is legal
for every kind except ``link-down`` (a permanently downed link stalls
its waiters forever, which the engine reports as a deadlock — a
malformed plan, caught at validation time instead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import FaultPlanError
from repro.util.rng import RngStream

DEVICE_DEGRADE = "device-degrade"
DEVICE_FAULTS = "device-faults"
SERVER_CRASH = "server-crash"
SERVER_SLOWDOWN = "server-slowdown"
LINK_DOWN = "link-down"
LINK_LATENCY = "link-latency"
STRAGGLER = "straggler"

FAULT_KINDS = frozenset((
    DEVICE_DEGRADE, DEVICE_FAULTS, SERVER_CRASH, SERVER_SLOWDOWN,
    LINK_DOWN, LINK_LATENCY, STRAGGLER,
))

#: Kinds whose effect is the multiplicative ``factor``.
_FACTOR_KINDS = frozenset((DEVICE_DEGRADE, SERVER_SLOWDOWN, LINK_LATENCY,
                           STRAGGLER))


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault window against one target.

    ``target`` names the component: a device name for ``device-*``, a
    server name for ``server-*``, a network node name for ``link-*``,
    and a pid (stringified integer) for ``straggler``.
    """

    kind: str
    target: str
    at: float
    duration: float = math.inf
    #: Multiplicative severity for the ``factor`` kinds (>= 1.0).
    factor: float = 1.0
    #: Per-draw failure probability for ``device-faults``.
    probability: float = 0.0
    #: Fraction of nominal service time a faulted request consumes.
    time_fraction: float = 0.5
    #: Granule for per-byte fault scaling (0 = per-request Bernoulli).
    per_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(sorted(FAULT_KINDS))
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; known kinds: {known}")
        if not self.target:
            raise FaultPlanError(f"{self.kind} event needs a target")
        if self.at < 0 or math.isnan(self.at):
            raise FaultPlanError(f"bad event time {self.at}")
        if self.duration <= 0 or math.isnan(self.duration):
            raise FaultPlanError(f"bad event duration {self.duration}")
        if self.kind == LINK_DOWN and math.isinf(self.duration):
            raise FaultPlanError(
                "link-down must have a finite duration: a link that "
                "never comes back deadlocks its waiters")
        if self.kind in _FACTOR_KINDS and self.factor < 1.0:
            raise FaultPlanError(
                f"{self.kind} factor must be >= 1, got {self.factor}")
        if self.kind == DEVICE_FAULTS:
            if not 0.0 <= self.probability <= 1.0:
                raise FaultPlanError(
                    f"probability out of range: {self.probability}")
            if not 0.0 < self.time_fraction <= 1.0:
                raise FaultPlanError(
                    f"time_fraction out of range: {self.time_fraction}")
            if self.per_bytes < 0:
                raise FaultPlanError(f"negative per_bytes {self.per_bytes}")
        if self.kind == STRAGGLER:
            try:
                int(self.target)
            except ValueError:
                raise FaultPlanError(
                    f"straggler target must be a pid, got {self.target!r}"
                ) from None

    @property
    def recovery_at(self) -> float:
        """Absolute time the window closes (inf = never)."""
        return self.at + self.duration

    def describe(self) -> str:
        """One-line human-readable summary."""
        until = ("forever" if math.isinf(self.duration)
                 else f"until t={self.recovery_at:.6g}")
        detail = ""
        if self.kind in _FACTOR_KINDS:
            detail = f" x{self.factor:g}"
        elif self.kind == DEVICE_FAULTS:
            detail = f" p={self.probability:g}"
        return (f"t={self.at:.6g}: {self.kind}{detail} on "
                f"{self.target} {until}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault windows for one run.

    Events are stored sorted by start time (stable, so equal-time events
    keep their authored order — the same determinism contract as the
    engine's FIFO tie-break).  Windows of the same kind on the same
    target must not overlap: recovery restores the component's healthy
    baseline, so nested windows would recover too early.
    """

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at))
        object.__setattr__(self, "events", ordered)
        open_until: dict[tuple[str, str], tuple[float, FaultEvent]] = {}
        for event in ordered:
            key = (event.kind, event.target)
            previous = open_until.get(key)
            if previous is not None and event.at < previous[0]:
                raise FaultPlanError(
                    f"overlapping {event.kind} windows on "
                    f"{event.target!r}: {previous[1].describe()} vs "
                    f"{event.describe()}")
            open_until[key] = (event.recovery_at, event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        """Multi-line summary of the whole plan."""
        if not self.events:
            return "(empty fault plan)"
        return "\n".join(event.describe() for event in self.events)

    def targets(self, kind: str | None = None) -> list[str]:
        """Distinct targets (optionally of one kind), in event order."""
        seen: dict[str, None] = {}
        for event in self.events:
            if kind is None or event.kind == kind:
                seen.setdefault(event.target, None)
        return list(seen)


def random_fault_plan(
    rng: RngStream,
    *,
    horizon_s: float,
    devices: tuple[str, ...] = (),
    servers: tuple[str, ...] = (),
    nodes: tuple[str, ...] = (),
    pids: tuple[int, ...] = (),
    events_per_target: int = 1,
    severity: float = 1.0,
    fault_probability: float = 0.0,
    time_fraction: float = 0.5,
    per_bytes: int = 0,
) -> FaultPlan:
    """Draw a seeded fault plan over the given targets.

    Each named target receives ``events_per_target`` windows of the
    kind matching its layer: devices get degradation windows (and, when
    ``fault_probability`` > 0, fault-rate windows), servers get
    slowdown windows, network nodes get latency spikes, pids become
    stragglers.  The horizon is split into ``events_per_target`` slots
    per target; each window starts in the first 60% of its slot and
    lasts 10-35% of it, which guarantees same-target windows never
    overlap (the :class:`FaultPlan` invariant) while still landing
    inside the run when the horizon is roughly right.  All draws come
    from ``rng``, in a fixed order, so the plan is a pure function of
    the stream.
    """
    if horizon_s <= 0:
        raise FaultPlanError(f"bad horizon {horizon_s}")
    if severity < 0:
        raise FaultPlanError(f"negative severity {severity}")
    if events_per_target < 1:
        raise FaultPlanError(
            f"bad events_per_target {events_per_target}")

    events: list[FaultEvent] = []
    span = horizon_s / events_per_target

    def window(slot: int) -> tuple[float, float]:
        at = slot * span + rng.uniform(0.0, 0.6 * span)
        duration = rng.uniform(0.1 * span, 0.35 * span)
        return at, duration

    def factor() -> float:
        return 1.0 + severity * rng.uniform(0.5, 3.0)

    for name in devices:
        for slot in range(events_per_target):
            at, duration = window(slot)
            events.append(FaultEvent(DEVICE_DEGRADE, name, at,
                                     duration, factor=factor()))
            if fault_probability > 0.0:
                at, duration = window(slot)
                events.append(FaultEvent(
                    DEVICE_FAULTS, name, at, duration,
                    probability=min(1.0, fault_probability * severity),
                    time_fraction=time_fraction,
                    per_bytes=per_bytes))
    for name in servers:
        for slot in range(events_per_target):
            at, duration = window(slot)
            events.append(FaultEvent(SERVER_SLOWDOWN, name, at,
                                     duration, factor=factor()))
    for name in nodes:
        for slot in range(events_per_target):
            at, duration = window(slot)
            events.append(FaultEvent(LINK_LATENCY, name, at, duration,
                                     factor=factor()))
    for pid in pids:
        for slot in range(events_per_target):
            at, duration = window(slot)
            events.append(FaultEvent(STRAGGLER, str(pid), at, duration,
                                     factor=factor()))
    return FaultPlan(tuple(events))
