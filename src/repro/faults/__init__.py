"""Declarative fault plans and their injection into built systems.

A :class:`~repro.faults.plan.FaultPlan` is a list of timed
:class:`~repro.faults.plan.FaultEvent` windows — device degradation and
fault-rate windows, I/O-server crash/slowdown, network-link flaps and
latency spikes, straggler processes.  Plans are plain data: they can be
written by hand, generated from a seeded
:class:`~repro.util.rng.RngStream`
(:func:`~repro.faults.plan.random_fault_plan`), stored in configs, and
replayed bit-identically.

:class:`~repro.faults.injector.FaultPlanInjector` arms a plan against a
live :class:`~repro.system.System`: every event becomes engine callbacks
at its start and recovery times, flipping the corresponding hook
(``BlockDevice.degrade`` / ``FaultInjector`` probability /
``IOServer.crash`` / ``NetworkLink`` flap / ``FaultState`` straggler
factors).
"""

from repro.faults.plan import (
    DEVICE_DEGRADE,
    DEVICE_FAULTS,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    LINK_DOWN,
    LINK_LATENCY,
    SERVER_CRASH,
    SERVER_SLOWDOWN,
    STRAGGLER,
    random_fault_plan,
)
from repro.faults.state import FaultState
from repro.faults.injector import FaultPlanInjector, arm_fault_plan

__all__ = [
    "DEVICE_DEGRADE",
    "DEVICE_FAULTS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanInjector",
    "FaultState",
    "LINK_DOWN",
    "LINK_LATENCY",
    "SERVER_CRASH",
    "SERVER_SLOWDOWN",
    "STRAGGLER",
    "arm_fault_plan",
    "random_fault_plan",
]
