"""Workload generators shaped after the paper's benchmark tools.

- :class:`IOzoneWorkload` — sequential and throughput-mode file access
  (paper Sets 1-3a).
- :class:`IORWorkload` — MPI-IO access to one shared striped file with
  fixed transfer sizes (paper Set 3b).
- :class:`HpioWorkload` — noncontiguous region reads with data sieving
  (paper Set 4).
- :mod:`repro.workloads.synthetic` — random/mixed patterns for tests,
  examples, and fault-injection scenarios.
"""

from repro.workloads.base import Workload, run_workload
from repro.workloads.hotspot import HotSpotWorkload
from repro.workloads.iozone import IOzoneWorkload
from repro.workloads.ior import IORWorkload
from repro.workloads.hpio import HpioWorkload
from repro.workloads.aio import AsyncReadWorkload
from repro.workloads.composite import CompositeWorkload
from repro.workloads.replay_trace import TraceReplayWorkload
from repro.workloads.smallfiles import SmallFilesWorkload
from repro.workloads.synthetic import (
    RandomAccessWorkload,
    MixedReadWriteWorkload,
    MixedSizeWorkload,
    ReplayWorkload,
    ReplayOp,
)

__all__ = [
    "Workload",
    "run_workload",
    "HotSpotWorkload",
    "IOzoneWorkload",
    "IORWorkload",
    "HpioWorkload",
    "AsyncReadWorkload",
    "CompositeWorkload",
    "TraceReplayWorkload",
    "SmallFilesWorkload",
    "RandomAccessWorkload",
    "MixedReadWriteWorkload",
    "MixedSizeWorkload",
    "ReplayWorkload",
    "ReplayOp",
]
