"""IOzone-shaped workload: sequential and throughput-mode file access.

The paper uses IOzone for:

- Set 1: single-process sequential read of a large file on different
  storage configurations;
- Set 2: single-process read with the record size swept 4 KB → 8 MB;
- Set 3a: "throughput test mode" — n processes, each with its own file,
  each file pinned to an individual I/O server so the concurrency is
  contention-free ("pure").

``mode="sequential"`` covers the first two; ``mode="throughput"`` the
third.  In throughput mode the *total* data volume is fixed and divided
among the processes (the paper reads 32 GB in total regardless of the
process count — that is why execution time falls as concurrency rises).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import WorkloadError
from repro.pfs.layout import StripeLayout
from repro.system import System
from repro.util.units import KiB, MiB
from repro.workloads.base import Workload

#: Operations IOzone supports that we model.
_OPS = ("read", "write")


@dataclass
class IOzoneWorkload(Workload):
    """Sequential / throughput-mode whole-file access.

    Parameters
    ----------
    file_size:
        Total bytes accessed across all processes.
    record_size:
        Per-call I/O size (IOzone's ``-r``).
    nproc:
        Process count (1 for sequential mode).
    op:
        "read" or "write".
    mode:
        "sequential" (one shared file read start-to-finish by each
        process... with nproc=1 this is the classic single-stream test)
        or "throughput" (each process gets its own file).
    pin_files_to_servers:
        Throughput mode on a PFS: pin file *i* to server ``i % n_servers``
        via a one-server stripe layout (the paper's "pure" concurrency).
    shared_client:
        Throughput mode: run every process from the same client node,
        as a real IOzone throughput test does (one host, many threads).
        False gives each process its own node.
    think_time_s:
        Simulated compute between consecutive I/O calls.
    """

    file_size: int = 64 * MiB
    record_size: int = 64 * KiB
    nproc: int = 1
    op: str = "read"
    mode: str = "sequential"
    pin_files_to_servers: bool = False
    shared_client: bool = True
    think_time_s: float = 0.0
    name: str = field(default="iozone", init=False)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise WorkloadError(f"unsupported op {self.op!r}")
        if self.mode not in ("sequential", "throughput"):
            raise WorkloadError(f"unknown mode {self.mode!r}")
        if self.nproc < 1:
            raise WorkloadError(f"bad nproc {self.nproc}")
        if self.record_size <= 0 or self.file_size <= 0:
            raise WorkloadError("sizes must be positive")
        if self.mode == "sequential" and self.nproc != 1:
            raise WorkloadError(
                "sequential mode is single-process; use mode='throughput'"
            )
        per_proc = self.file_size // self.nproc
        if per_proc < self.record_size:
            raise WorkloadError(
                f"per-process share {per_proc} smaller than one record "
                f"{self.record_size}"
            )

    # -- Workload interface ---------------------------------------------------

    def label(self) -> str:
        return (f"iozone[{self.mode},{self.op},n={self.nproc},"
                f"rec={self.record_size}]")

    def _per_proc_bytes(self) -> int:
        share = self.file_size // self.nproc
        # Whole records only, so every process does identical work.
        return (share // self.record_size) * self.record_size

    def _file_name(self, pid: int) -> str:
        if self.mode == "throughput":
            return f"iozone.{self.pid_base + pid}"
        return f"iozone.{self.pid_base}"

    def setup(self, system: System) -> None:
        if self.mode == "sequential":
            system.shared_mount().create(self._file_name(0),
                                         self.file_size)
            return
        per_proc = self._per_proc_bytes()
        for pid in range(self.nproc):
            mount = system.mount_for(self._client_pid(pid))
            if self.pin_files_to_servers:
                if system.pfs is None:
                    raise WorkloadError(
                        "pin_files_to_servers requires a PFS system"
                    )
                n_servers = len(system.pfs.servers)
                layout = StripeLayout(
                    stripe_size=system.config.stripe_size,
                    servers=(pid % n_servers,),
                )
                mount.create(self._file_name(pid), per_proc, layout)
            else:
                mount.create(self._file_name(pid), per_proc)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        per_proc = (self.file_size if self.mode == "sequential"
                    else self._per_proc_bytes())
        return [
            (self.pid_base + pid, self._proc(system, pid, per_proc))
            for pid in range(self.nproc)
        ]

    def _client_pid(self, pid: int) -> int:
        """Which mount/client node a process uses."""
        local = 0 if (self.mode == "throughput"
                      and self.shared_client) else pid
        return self.pid_base + local

    def _proc(self, system: System, pid: int, nbytes: int):
        lib = system.posix_for(self._client_pid(pid))
        handle = lib.open(self._file_name(pid), self.pid_base + pid)
        issued = 0
        while issued + self.record_size <= nbytes:
            if self.op == "read":
                yield handle.read(self.record_size)
            else:
                yield handle.write(self.record_size)
            issued += self.record_size
            if self.think_time_s > 0:
                yield system.engine.timeout(self.think_time_s)
        handle.close()
        return issued

    def extras(self, system: System) -> dict:
        return {
            "record_size": self.record_size,
            "nproc": self.nproc,
            "mode": self.mode,
            "op": self.op,
        }
