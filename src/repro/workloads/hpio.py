"""Hpio-shaped workload: noncontiguous region reads with data sieving.

The paper's Set 4: "we tested the noncontiguous file read operation on
PVFS2 ... Data sieving was enabled, so that I/O middleware (MPI-IO
library) would read a bunch of additional file holes located between the
adjacent file regions.  The region count was set to 4096000, and the
region size was set to 256 bytes.  We varied the region spacing from
8 bytes to 4096 bytes."

Hpio's file layout per process: ``region_count`` regions of
``region_size`` bytes, each separated by a ``region_spacing``-byte hole.
Each process owns a disjoint section of the shared file.  Regions are
read through :meth:`~repro.middleware.mpiio.MPIFile.read_regions` in
batches of ``regions_per_call`` (a real Hpio run issues one huge MPI
datatype read; batching bounds sieve-buffer footprint identically to
ROMIO's buffer-size cap and keeps per-call record counts sane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import WorkloadError
from repro.middleware.mpiio import MPIIOHints
from repro.middleware.sieving import SievingConfig
from repro.system import System
from repro.workloads.base import Workload


@dataclass
class HpioWorkload(Workload):
    """Noncontiguous strided read (region count / size / spacing)."""

    region_count: int = 4096
    region_size: int = 256
    region_spacing: int = 256
    nproc: int = 1
    sieving: SievingConfig = field(default_factory=SievingConfig)
    regions_per_call: int = 256
    think_time_s: float = 0.0
    name: str = field(default="hpio", init=False)

    def __post_init__(self) -> None:
        if self.region_count < 1:
            raise WorkloadError(f"bad region count {self.region_count}")
        if self.region_size <= 0:
            raise WorkloadError(f"bad region size {self.region_size}")
        if self.region_spacing < 0:
            raise WorkloadError(f"bad spacing {self.region_spacing}")
        if self.nproc < 1:
            raise WorkloadError(f"bad nproc {self.nproc}")
        if self.regions_per_call < 1:
            raise WorkloadError(f"bad batch size {self.regions_per_call}")

    def label(self) -> str:
        state = "on" if self.sieving.enabled else "off"
        return (f"hpio[n={self.nproc},count={self.region_count},"
                f"size={self.region_size},gap={self.region_spacing},"
                f"sieve={state}]")

    @property
    def section_bytes(self) -> int:
        """Bytes of one process's file section (regions + holes)."""
        stride = self.region_size + self.region_spacing
        # The trailing hole is part of the stride pattern Hpio writes.
        return self.region_count * stride

    def _file_name(self) -> str:
        return f"hpio.{self.pid_base}.data"

    def setup(self, system: System) -> None:
        total = self.section_bytes * self.nproc
        system.shared_mount().create(self._file_name(), total)
        self._mpi = system.mpiio(self.nproc, pid_base=self.pid_base)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + rank, self._proc(system, rank))
                for rank in range(self.nproc)]

    def _regions_for(self, rank: int) -> list[tuple[int, int]]:
        base = rank * self.section_bytes
        stride = self.region_size + self.region_spacing
        return [(base + i * stride, self.region_size)
                for i in range(self.region_count)]

    def _proc(self, system: System, rank: int):
        mount = system.mount_for(self.pid_base + rank)
        handle = self._mpi.open(
            mount, self._file_name(), rank,
            MPIIOHints(sieving=self.sieving),
        )
        regions = self._regions_for(rank)
        done = 0
        for start in range(0, len(regions), self.regions_per_call):
            batch = regions[start:start + self.regions_per_call]
            yield handle.read_regions(batch)
            done += len(batch)
            if self.think_time_s > 0:
                yield system.engine.timeout(self.think_time_s)
        return done

    def extras(self, system: System) -> dict:
        return {
            "region_count": self.region_count,
            "region_size": self.region_size,
            "region_spacing": self.region_spacing,
            "sieving_enabled": self.sieving.enabled,
            "nproc": self.nproc,
        }
