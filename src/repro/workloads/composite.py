"""Running several applications against one I/O system.

Paper §III.B, step 1: "If the I/O system services more than one
application concurrently, we record the I/O access information of all
the applications."  :class:`CompositeWorkload` does exactly that: it
runs member workloads side by side on one system with one shared
recorder.  Each member gets a disjoint pid space (member *i* has
``pid_base = i * pid_stride``), which every workload honours in its
trace records, mount choices, and file names — so the gathered trace
remains attributable per application via
:meth:`member_trace`/:meth:`member_pid_range`.

This is how interference studies are built: run a latency-sensitive
application next to a bandwidth hog and ask which metric reflects the
combined system (see ``tests/integration/test_multi_application.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Sequence

from repro.core.records import TraceCollection
from repro.errors import WorkloadError
from repro.system import System
from repro.workloads.base import Workload


@dataclass
class CompositeWorkload(Workload):
    """Co-schedule several workloads on one simulated system.

    ``delays`` optionally staggers member start times (seconds);
    default: everyone starts at t=0.
    """

    members: Sequence[Workload] = ()
    delays: Sequence[float] = ()
    pid_stride: int = 1000
    name: str = field(default="composite", init=False)

    def __post_init__(self) -> None:
        if not self.members:
            raise WorkloadError("composite needs at least one member")
        if self.delays and len(self.delays) != len(self.members):
            raise WorkloadError(
                f"{len(self.delays)} delays for {len(self.members)} members"
            )
        if any(d < 0 for d in self.delays):
            raise WorkloadError("negative start delay")
        if self.pid_stride < 1:
            raise WorkloadError(f"bad pid stride {self.pid_stride}")
        for index, member in enumerate(self.members):
            member.pid_base = index * self.pid_stride

    def label(self) -> str:
        inner = " + ".join(m.label() for m in self.members)
        return f"composite[{inner}]"

    def member_pid_range(self, index: int) -> range:
        """The pid space of member ``index``."""
        if not 0 <= index < len(self.members):
            raise WorkloadError(f"no member {index}")
        base = index * self.pid_stride
        return range(base, base + self.pid_stride)

    def member_trace(self, trace: TraceCollection,
                     index: int) -> TraceCollection:
        """The records belonging to member ``index``."""
        pid_range = self.member_pid_range(index)
        return trace.for_pid_range(pid_range)

    def setup(self, system: System) -> None:
        for member in self.members:
            member.setup(system)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        pairs: list[tuple[int, Generator]] = []
        for index, member in enumerate(self.members):
            delay = self.delays[index] if self.delays else 0.0
            for pid, generator in member.processes(system):
                if pid not in self.member_pid_range(index):
                    raise WorkloadError(
                        f"member {index} produced pid {pid} outside its "
                        f"pid space (stride {self.pid_stride}; does the "
                        f"workload honour pid_base?)"
                    )
                pairs.append((pid, self._wrap(system, generator, delay)))
        return pairs

    @staticmethod
    def _wrap(system: System, generator: Generator, delay: float):
        if delay > 0:
            yield system.engine.timeout(delay)
        result = yield system.engine.spawn(generator)
        return result

    def extras(self, system: System) -> dict:
        return {"members": [m.label() for m in self.members]}
