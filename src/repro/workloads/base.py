"""Workload protocol and the single-run executor.

A workload knows how to (a) create its files on a fresh
:class:`~repro.system.System` and (b) produce one application process
generator per simulated process.  :func:`run_workload` handles the
lifecycle the paper prescribes per run: build fresh system → create
files → flush caches → run all processes to completion → measure the
application execution time and gather the trace.
"""

from __future__ import annotations

import abc
from typing import Generator

from repro.core.analysis import RunMeasurement
from repro.errors import WorkloadError
from repro.system import System, SystemConfig, build_system


class Workload(abc.ABC):
    """Base class for all workload generators."""

    #: Human-readable workload name (appears in run labels).
    name: str = "workload"

    #: Offset added to every pid this workload uses (trace records,
    #: client mounts, file names).  Left at 0 for standalone runs;
    #: :class:`~repro.workloads.composite.CompositeWorkload` assigns
    #: each member a disjoint pid space before setup.
    pid_base: int = 0

    @abc.abstractmethod
    def setup(self, system: System) -> None:
        """Create files and any per-run state on the fresh system."""

    @abc.abstractmethod
    def processes(self, system: System) -> list[tuple[int, Generator]]:
        """(pid, generator) pairs — one per simulated application process."""

    def label(self) -> str:
        """Run label (workload name unless overridden)."""
        return self.name

    def extras(self, system: System) -> dict:
        """Extra key/values to attach to the RunMeasurement."""
        return {}

    def run(self, config: SystemConfig) -> RunMeasurement:
        """Build a system from ``config`` and run this workload on it."""
        return run_workload(self, config)


def _fault_report(system: System) -> dict:
    """Robustness extras: per-server health, recovery tallies, plan log."""
    report: dict = {"retry": system.retry_stats.as_dict()}
    if system.pfs is not None:
        report["servers"] = [
            {
                "name": server.name,
                "requests_handled": server.requests_handled,
                "requests_failed": server.requests_failed,
                "crashes": server.crash_count,
                "queue_length": server.queue_length,
                "storage_faults": server.storage.stats.faults,
                "storage_retries": server.storage.stats.device_retries,
            }
            for server in system.pfs.servers
        ]
        report["pfs_failovers"] = system.pfs.stats.failovers
    if system.localfs is not None:
        report["fs_faults"] = system.localfs.stats.faults
        report["fs_device_retries"] = system.localfs.stats.device_retries
    if system.fault_plan_injector is not None:
        report["fault_plan"] = system.fault_plan_injector.summary()
    return report


def run_workload(workload: Workload, config: SystemConfig, *,
                 on_system=None) -> RunMeasurement:
    """Execute one workload run and return its measurement.

    The application execution time is the wall time from the first
    process start to the last process completion — the paper's stand-in
    for overall computer performance.

    ``on_system`` is called with the freshly built :class:`System`
    after setup but before any process is spawned — the attachment
    point for passive observers such as
    :class:`~repro.live.tap.LiveTap`.
    """
    system = build_system(config)
    workload.setup(system)
    system.drop_caches()
    if on_system is not None:
        on_system(system)

    pairs = workload.processes(system)
    if not pairs:
        raise WorkloadError(f"workload {workload.name!r} has no processes")
    start = system.engine.now
    spawned = [
        system.engine.spawn(generator, name=f"{workload.name}.p{pid}")
        for pid, generator in pairs
    ]
    # Execution time ends at the last *process* completion, not at heap
    # exhaustion: a fault plan may hold recovery timers scheduled past
    # the application's finish, and those must not inflate exec time.
    finish = {"at": None}

    def _note_finish(_waitable) -> None:
        finish["at"] = system.engine.now
    system.engine.all_of(spawned).subscribe(_note_finish)
    system.engine.run()
    for process in spawned:
        # Surface any application-level failure as a hard error: a run
        # that silently lost a process would skew every metric.
        process.result()
    if finish["at"] is None:
        raise WorkloadError(
            f"workload {workload.name!r} never completed its processes")
    exec_time = finish["at"] - start
    if exec_time <= 0:
        raise WorkloadError(
            f"workload {workload.name!r} finished in zero time — "
            "it performed no simulated work"
        )
    device_report = [
        {
            "name": device.name,
            "utilization": device.utilization.utilization(),
            "bytes_moved": device.stats.bytes_moved,
            "ops": device.stats.ops,
            "faults": device.stats.faults,
        }
        for device in system.devices
    ]
    extras = {"config_kind": config.kind,
              "device_spec": config.device_spec,
              "devices": device_report,
              **workload.extras(system),
              **_fault_report(system)}
    return RunMeasurement(
        trace=system.recorder.trace,
        exec_time=exec_time,
        fs_bytes=system.recorder.fs_bytes_moved,
        label=workload.label(),
        extras=extras,
    )
