"""IOR-shaped workload: MPI-IO on one shared striped file.

The paper's Set 3b: "ran IOR with the MPI-IO interface to access a
shared PVFS2 file, which is striped across the underlying 8 I/O servers
with a default stripe layout.  Each of n MPI processes is responsible
for reading its own 1/n of a 32 GB file.  Each process continuously
issues requests of fixed transfer size (64 KB) with sequential offsets."

``collective=True`` switches the per-call primitive from independent
``read_at`` to two-phase ``read_at_all`` — an extension beyond the
paper used by the collective-I/O ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import WorkloadError
from repro.system import System
from repro.util.units import KiB, MiB
from repro.workloads.base import Workload


@dataclass
class IORWorkload(Workload):
    """Segmented shared-file access with fixed transfer size."""

    file_size: int = 64 * MiB
    transfer_size: int = 64 * KiB
    nproc: int = 4
    op: str = "read"
    collective: bool = False
    #: "segmented": rank r owns the r-th contiguous 1/n of the file
    #: (the paper's setting).  "strided": ranks interleave transfer-size
    #: blocks round-robin (IOR's -s/-b striding) — the pattern where
    #: two-phase collective aggregation pays off.
    access: str = "segmented"
    think_time_s: float = 0.0
    name: str = field(default="ior", init=False)

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise WorkloadError(f"unsupported op {self.op!r}")
        if self.nproc < 1:
            raise WorkloadError(f"bad nproc {self.nproc}")
        if self.transfer_size <= 0 or self.file_size <= 0:
            raise WorkloadError("sizes must be positive")
        if self.access not in ("segmented", "strided"):
            raise WorkloadError(f"unknown access pattern {self.access!r}")
        if self.file_size // self.nproc < self.transfer_size:
            raise WorkloadError(
                f"segment {self.file_size // self.nproc} smaller than one "
                f"transfer {self.transfer_size}"
            )
        if self.collective and self.op != "read":
            raise WorkloadError("collective mode models reads only")

    def label(self) -> str:
        kind = "coll" if self.collective else "indep"
        return (f"ior[{kind},{self.op},n={self.nproc},"
                f"xfer={self.transfer_size}]")

    def _segment_bytes(self) -> int:
        share = self.file_size // self.nproc
        return (share // self.transfer_size) * self.transfer_size

    def _file_name(self) -> str:
        return f"ior.{self.pid_base}.data"

    def setup(self, system: System) -> None:
        system.shared_mount().create(self._file_name(), self.file_size)
        self._mpi = system.mpiio(self.nproc, pid_base=self.pid_base)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + rank, self._proc(system, rank))
                for rank in range(self.nproc)]

    def _offset_for(self, rank: int, index: int) -> int:
        if self.access == "segmented":
            return rank * (self.file_size // self.nproc) \
                + index * self.transfer_size
        # strided: round-robin interleaving of transfer-size blocks
        return (index * self.nproc + rank) * self.transfer_size

    def _proc(self, system: System, rank: int):
        mount = system.mount_for(self.pid_base + rank)
        handle = self._mpi.open(mount, self._file_name(), rank)
        transfers = self._segment_bytes() // self.transfer_size
        issued = 0
        for index in range(transfers):
            offset = self._offset_for(rank, index)
            if self.collective:
                yield handle.read_at_all(offset, self.transfer_size)
            elif self.op == "read":
                yield handle.read_at(offset, self.transfer_size)
            else:
                yield handle.write_at(offset, self.transfer_size)
            issued += self.transfer_size
            if self.think_time_s > 0:
                yield system.engine.timeout(self.think_time_s)
        return issued

    def mpi_context(self):
        """The MPIIO context (available after setup)."""
        return self._mpi

    def extras(self, system: System) -> dict:
        return {
            "transfer_size": self.transfer_size,
            "nproc": self.nproc,
            "collective": self.collective,
            "op": self.op,
        }
