"""Hot-spot workload: a pinned small-op file plus striped bulk data.

A common HPC layout: one small, hot file (application log, progress
marker, shared counter) living on a single I/O server, next to bulk
data striped across the rest of the machine.  The two streams age very
differently when the hot server misbehaves — which makes this the
workload of choice for the fault-sweep experiment (set 6): faults on
the hot server multiply *small* accesses (many operations, few blocks),
while degradation on the bulk servers stretches *time*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import WorkloadError
from repro.pfs.layout import StripeLayout
from repro.system import System
from repro.util.units import KiB, MiB
from repro.workloads.base import Workload


@dataclass
class HotSpotWorkload(Workload):
    """Weighted mix of hot-file small ops and striped bulk ops.

    On a PFS the hot file is placed on ``hot_server`` alone and the bulk
    file is striped over all *other* servers; on a local system both
    live on the one device and the placement distinction disappears.
    """

    bulk_file_size: int = 48 * MiB
    hot_file_size: int = 48 * KiB
    hot_server: int = 0
    small_size: int = 4 * KiB
    large_size: int = 256 * KiB
    small_fraction: float = 0.8
    ops_per_proc: int = 64
    nproc: int = 4
    align: int = 4 * KiB
    name: str = field(default="hotspot", init=False)

    def __post_init__(self) -> None:
        if min(self.small_size, self.large_size, self.align) <= 0:
            raise WorkloadError("sizes must be positive")
        if self.small_size > self.hot_file_size:
            raise WorkloadError("small ops exceed the hot file")
        if self.large_size > self.bulk_file_size:
            raise WorkloadError("large ops exceed the bulk file")
        if not 0.0 <= self.small_fraction <= 1.0:
            raise WorkloadError(f"bad small fraction {self.small_fraction}")
        if self.ops_per_proc < 1 or self.nproc < 1:
            raise WorkloadError("counts must be >= 1")
        if self.hot_server < 0:
            raise WorkloadError(f"bad hot server {self.hot_server}")

    def label(self) -> str:
        return f"hotspot[n={self.nproc},ops={self.ops_per_proc}]"

    def _file_names(self) -> tuple[str, str]:
        return f"hotspot-hot.{self.pid_base}", f"hotspot-bulk.{self.pid_base}"

    def setup(self, system: System) -> None:
        hot_name, bulk_name = self._file_names()
        mount = system.shared_mount()
        if system.pfs is not None:
            n_servers = system.config.n_servers
            if self.hot_server >= n_servers:
                raise WorkloadError(
                    f"hot server {self.hot_server} outside "
                    f"0..{n_servers - 1}")
            bulk_servers = tuple(index for index in range(n_servers)
                                 if index != self.hot_server)
            if not bulk_servers:  # single-server PFS: everything is hot
                bulk_servers = (self.hot_server,)
            stripe = system.config.stripe_size
            mount.create(hot_name, self.hot_file_size,
                         layout=StripeLayout(stripe_size=stripe,
                                             servers=(self.hot_server,)))
            mount.create(bulk_name, self.bulk_file_size,
                         layout=StripeLayout(stripe_size=stripe,
                                             servers=bulk_servers))
        else:
            mount.create(hot_name, self.hot_file_size)
            mount.create(bulk_name, self.bulk_file_size)
        self._rngs = system.rng.spawn_many("hotspot-proc", self.nproc)

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + pid, self._proc(system, pid))
                for pid in range(self.nproc)]

    def _proc(self, system: System, pid: int):
        real_pid = self.pid_base + pid
        lib = system.posix_for(real_pid)
        hot_name, bulk_name = self._file_names()
        hot = lib.open(hot_name, real_pid)
        bulk = lib.open(bulk_name, real_pid)
        rng = self._rngs[pid]
        for _ in range(self.ops_per_proc):
            if rng.uniform() < self.small_fraction:
                max_slot = (self.hot_file_size - self.small_size) // self.align
                offset = rng.integers(0, max_slot + 1) * self.align
                yield hot.pread(offset, self.small_size)
            else:
                max_slot = (self.bulk_file_size - self.large_size) // self.align
                offset = rng.integers(0, max_slot + 1) * self.align
                yield bulk.pread(offset, self.large_size)
        return self.ops_per_proc
