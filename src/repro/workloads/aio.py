"""Asynchronous-I/O workload: one process, many in-flight requests.

Used by the Set 5 extension experiment: a single process issues
``total_ops`` reads through an :class:`~repro.middleware.async_io.AsyncIOContext`
with a configurable queue depth.  At depth 1 this degenerates to
blocking I/O; at higher depths request service overlaps — concurrency
without extra processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import WorkloadError
from repro.middleware.async_io import AsyncIOContext
from repro.system import System
from repro.util.units import KiB, MiB
from repro.workloads.base import Workload


@dataclass
class AsyncReadWorkload(Workload):
    """Single-process async reads at a fixed queue depth."""

    file_size: int = 32 * MiB
    io_size: int = 4 * KiB
    total_ops: int = 256
    queue_depth: int = 8
    pattern: str = "random"  # or "sequential"
    name: str = field(default="aio", init=False)

    def __post_init__(self) -> None:
        if self.io_size <= 0 or self.file_size <= 0:
            raise WorkloadError("sizes must be positive")
        if self.io_size > self.file_size:
            raise WorkloadError("io_size larger than the file")
        if self.total_ops < 1:
            raise WorkloadError("total_ops must be >= 1")
        if self.queue_depth < 1:
            raise WorkloadError("queue_depth must be >= 1")
        if self.pattern not in ("random", "sequential"):
            raise WorkloadError(f"unknown pattern {self.pattern!r}")
        if self.pattern == "sequential" \
                and self.total_ops * self.io_size > self.file_size:
            raise WorkloadError("sequential pattern overruns the file")

    def label(self) -> str:
        return (f"aio[{self.pattern},qd={self.queue_depth},"
                f"ops={self.total_ops}]")

    def _file_name(self) -> str:
        return f"aio.{self.pid_base}.data"

    def setup(self, system: System) -> None:
        system.shared_mount().create(self._file_name(),
                                     self.file_size)
        self._rng = system.rng.spawn("aio-offsets")

    def _offsets(self) -> list[int]:
        if self.pattern == "sequential":
            return [i * self.io_size for i in range(self.total_ops)]
        slots = self.file_size // self.io_size
        return [self._rng.integers(0, slots) * self.io_size
                for _ in range(self.total_ops)]

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base, self._proc(system))]

    def _proc(self, system: System):
        # Windowed submission, like fio's iodepth loop: keep exactly
        # queue_depth requests outstanding; generate the next request
        # only when one completes.  (Dumping every submission at t=0
        # would fold the whole backlog wait into each response time.)
        engine = system.engine
        ctx = AsyncIOContext(
            engine, system.mount_for(self.pid_base),
            self._file_name(), pid=self.pid_base,
            recorder=system.recorder, queue_depth=self.queue_depth,
        )
        outstanding: list = []
        for offset in self._offsets():
            while len(outstanding) >= self.queue_depth:
                yield engine.any_of(outstanding)
                outstanding = [c for c in outstanding if not c.fired]
            outstanding.append(ctx.submit_read(offset, self.io_size))
        yield ctx.drain()
        return ctx.completed

    def extras(self, system: System) -> dict:
        return {"queue_depth": self.queue_depth,
                "pattern": self.pattern,
                "total_ops": self.total_ops}
