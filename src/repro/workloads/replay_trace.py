"""Replaying a recorded trace through the simulator — the what-if engine.

Given a trace captured anywhere (our own CSV/JSONL, a blkparse capture,
a fio reconstruction), :class:`TraceReplayWorkload` re-issues the same
per-process operation streams against a *simulated* platform.  The
question it answers: "what would my application's I/O have done on an
SSD / on 8 PVFS servers / without the cache?" — compared via BPS on the
original vs the replayed trace (``bps replay``).

Replay semantics (the standard closed-loop approach):

- each process replays its records in original start order, one at a
  time (dependencies within a process are preserved);
- in ``timed`` mode the original *think gaps* (start minus previous
  end, when positive) are re-inserted, so compute phases survive the
  platform change;
- in ``asap`` mode gaps are dropped: pure I/O pressure.

Records carry the offsets to replay at; records without offsets
(``offset == -1``) are laid out sequentially per process.  Each
distinct file in the trace is recreated at the size its records reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.core.records import IORecord, TraceCollection
from repro.errors import WorkloadError
from repro.system import System
from repro.util.units import MiB, align_up
from repro.workloads.base import Workload

#: Default name for records that don't say which file they touched.
_ANON_FILE = "replayed"


@dataclass
class TraceReplayWorkload(Workload):
    """Re-issue a recorded trace against a simulated platform."""

    trace: TraceCollection = field(default_factory=TraceCollection)
    mode: str = "timed"  # or "asap"
    name: str = field(default="trace-replay", init=False)

    def __post_init__(self) -> None:
        if len(self.trace.app_records()) == 0:
            raise WorkloadError("nothing to replay: empty app trace")
        if self.mode not in ("timed", "asap"):
            raise WorkloadError(f"unknown replay mode {self.mode!r}")

    def label(self) -> str:
        return f"replay[{self.mode},{len(self.trace)} records]"

    # -- layout planning ------------------------------------------------------

    def _plan(self) -> tuple[dict[str, int], dict[int, list[IORecord]]]:
        """(file sizes, per-pid scripts with offsets resolved)."""
        app = self.trace.app_records()
        sizes: dict[str, int] = {}
        scripts: dict[int, list[IORecord]] = {}
        anon_cursor: dict[int, int] = {}
        for record in sorted(app, key=lambda r: (r.start, r.end)):
            file_name = record.file or _ANON_FILE
            if record.offset >= 0:
                offset = record.offset
            else:
                offset = anon_cursor.get(record.pid, 0)
                anon_cursor[record.pid] = offset + record.nbytes
            resolved = IORecord(
                pid=record.pid, op=record.op, nbytes=record.nbytes,
                start=record.start, end=record.end,
                file=file_name, offset=offset,
            )
            sizes[file_name] = max(sizes.get(file_name, 0),
                                   offset + record.nbytes)
            scripts.setdefault(record.pid, []).append(resolved)
        # Round sizes up so page-aligned stacks never overrun.
        sizes = {name: align_up(size, 4096) for name, size in sizes.items()}
        return sizes, scripts

    def setup(self, system: System) -> None:
        sizes, scripts = self._plan()
        self._scripts = scripts
        mount = system.shared_mount()
        for file_name, size in sorted(sizes.items()):
            mount.create(self._mangled(file_name), size)

    def _mangled(self, file_name: str) -> str:
        # Namespace replayed files so composites stay collision-free.
        return f"replay.{self.pid_base}.{file_name}"

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + pid, self._proc(system, pid, script))
                for pid, script in sorted(self._scripts.items())]

    def _proc(self, system: System, pid: int, script: list[IORecord]):
        real_pid = self.pid_base + pid
        lib = system.posix_for(real_pid)
        handles = {}
        previous_end: float | None = None
        for record in script:
            if self.mode == "timed" and previous_end is not None:
                gap = record.start - previous_end
                if gap > 0:
                    yield system.engine.timeout(gap)
            handle = handles.get(record.file)
            if handle is None:
                handle = lib.open(self._mangled(record.file), real_pid)
                handles[record.file] = handle
            if record.op == "write":
                yield handle.pwrite(record.offset, record.nbytes)
            else:
                yield handle.pread(record.offset, record.nbytes)
            previous_end = record.end
        return len(script)

    def extras(self, system: System) -> dict:
        return {"mode": self.mode, "records": len(self.trace)}
