"""Metadata-heavy workload: create-and-write many small files.

The classic metadata storm (untarring a source tree, writing
per-timestep output files): each process creates ``files_per_proc``
files of ``file_bytes`` each on a PFS with a metadata server, writes
them, and moves on.  Data volume is tiny; metadata round trips
dominate.

This workload exists to probe a *limitation* of BPS (see
``tests/integration/test_limitations.py`` and EXPERIMENTS.md): metadata
operations move no blocks, so the paper's B cannot see them.  Whether
BPS still tracks overall performance then hinges on whether the
middleware records metadata operations' intervals into T —
``record_metadata`` lets both conventions be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.errors import WorkloadError
from repro.pfs.layout import StripeLayout
from repro.system import System
from repro.util.units import KiB
from repro.workloads.base import Workload

#: Trace op tag for metadata operations.
META_OP = "create"


@dataclass
class SmallFilesWorkload(Workload):
    """Per-process create+write of many small files (PFS only)."""

    files_per_proc: int = 64
    file_bytes: int = 4 * KiB
    nproc: int = 2
    #: Extra stat (getattr) calls per file after writing it — the
    #: ``ls -l`` storm knob.  Pure metadata load: no blocks move.
    stats_per_file: int = 0
    #: Record metadata operations as zero-byte app records (they then
    #: contribute to T but never to B).
    record_metadata: bool = True
    name: str = field(default="smallfiles", init=False)

    def __post_init__(self) -> None:
        if self.files_per_proc < 1:
            raise WorkloadError("files_per_proc must be >= 1")
        if self.file_bytes <= 0:
            raise WorkloadError("file_bytes must be positive")
        if self.nproc < 1:
            raise WorkloadError("nproc must be >= 1")
        if self.stats_per_file < 0:
            raise WorkloadError("stats_per_file must be >= 0")

    def label(self) -> str:
        return (f"smallfiles[n={self.nproc},files={self.files_per_proc},"
                f"size={self.file_bytes}]")

    def setup(self, system: System) -> None:
        if system.pfs is None:
            raise WorkloadError("SmallFilesWorkload needs a PFS system")

    def processes(self, system: System) -> list[tuple[int, Generator]]:
        return [(self.pid_base + pid, self._proc(system, pid))
                for pid in range(self.nproc)]

    def _proc(self, system: System, pid: int):
        real_pid = self.pid_base + pid
        mount = system.mount_for(real_pid)
        lib = system.posix_for(real_pid)
        recorder = system.recorder
        engine = system.engine
        for index in range(self.files_per_proc):
            file_name = f"small.{real_pid}.{index}"
            # Metadata: create the file (MDS round trip + object creates).
            layout = StripeLayout(
                stripe_size=system.config.stripe_size,
                servers=((real_pid + index) % len(system.pfs.servers),),
            )
            _created, start, end = yield mount.create_async(
                file_name, self.file_bytes, layout)
            if self.record_metadata:
                recorder.record_app(real_pid, META_OP, file_name, 0, 0,
                                    start, end)
            # Data: one small write.
            handle = lib.open(file_name, real_pid)
            yield handle.pwrite(0, self.file_bytes)
            handle.close()
            # Metadata storm: repeated getattr on the fresh file.
            for _ in range(self.stats_per_file):
                _size, stat_start, stat_end = yield mount.stat_async(
                    file_name)
                if self.record_metadata:
                    recorder.record_app(real_pid, "stat", file_name,
                                        0, 0, stat_start, stat_end)
        return self.files_per_proc

    def extras(self, system: System) -> dict:
        return {
            "files_per_proc": self.files_per_proc,
            "file_bytes": self.file_bytes,
            "record_metadata": self.record_metadata,
            "metadata_ops": (system.pfs.metadata_ops
                             if system.pfs else 0),
        }
